"""The path-query service: request lifecycle, retries, degradation.

:class:`PathQueryService` is the robustness tentpole in one object — a
stdlib-``asyncio`` front end over the execution engines that never
returns an unverified answer. One admitted request flows::

    admission.acquire()              bounded queue or synchronous shed
      +-- retry loop ----------------------------------------------+
      |  ladder.rung_for()           engine / workers / lanes      |
      |  run in compute thread       minimum_cost_path / APSP      |
      |  oracle.verify_*()           Bellman-fixpoint proof        |
      |  fail -> record_failure, backoff (jittered), rung below    |
      +-------------------------------------------------------------+
    verified answer (possibly stamped ``degraded``) or
    ``deadline`` / ``error`` — never a wrong result

Deadlines cover the whole lifecycle including queueing. A compute that
outlives its deadline is *abandoned*: the client gets the ``deadline``
response immediately, while a reaper task holds the admission slot until
the thread actually finishes — concurrency accounting never lies, so
``max_inflight`` bounds real CPU work even under timeout storms.

The machine factory is injectable; the chaos harness uses it to hand the
service fault-plan-carrying machines (PR 3) and to trip worker chaos.
All service state (ladder, breaker, caches, counters) is touched only on
the event loop; compute threads receive immutable graphs and return
plain results.
"""

from __future__ import annotations

import asyncio
import functools
import hashlib
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.apsp import all_pairs_minimum_cost
from repro.core.batched import batched_minimum_cost_path
from repro.core.graph import normalize_weights
from repro.core.mcp import minimum_cost_path
from repro.engine.costs import cost_cache_size, cost_cache_stats
from repro.engine.select import fused_block_reason
from repro.errors import ConfigurationError, GraphError, ReproError
from repro.ppa.machine import PPAMachine
from repro.ppa.segments import plan_cache_sizes, plan_cache_stats
from repro.ppa.topology import PPAConfig
from repro.resilience import BackoffPolicy, ResilienceConfig, ResilientExecutor
from repro.verify.sanitizer import (
    HostSanitizer,
    LeakCensus,
    SanitizerViolation,
    sanitize_from_env,
)
from repro.serve.admission import AdmissionController, QueueFull
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.coalesce import ColumnCoalescer
from repro.serve.degrade import DegradationLadder, Rung, RUNGS
from repro.serve.delta import (
    apply_edge_delta,
    certify_warm_column,
    certify_warm_plane,
    column_is_dirty,
    decode_edges,
    dirty_destinations,
)
from repro.serve.oracle import verify_apsp, verify_mcp
from repro.serve.protocol import PROTOCOL_VERSION, MAX_LINE_BYTES, Request, \
    Response, decode_line, encode_message
from repro.telemetry.profile import RunProfile
from repro.telemetry.spans import Span

__all__ = ["ServiceConfig", "PathQueryService", "default_machine_factory"]


def default_machine_factory(n: int, word_bits: int) -> PPAMachine:
    """A clean (fault-free) machine of the requested geometry."""
    return PPAMachine(PPAConfig(n=n, word_bits=word_bits))


@dataclass
class ServiceConfig:
    """Tunables for one :class:`PathQueryService`."""

    #: requests computing concurrently (also the compute-thread count).
    max_inflight: int = 8
    #: admission wait-queue bound; beyond it requests are shed.
    max_queue: int = 256
    #: deadline applied when a request carries none (milliseconds).
    default_deadline_ms: float = 30_000.0
    #: worker processes for sharded APSP at the top ladder rung.
    workers: int = 2
    #: per-shard-attempt deadline forwarded to the worker pool.
    shard_timeout: float = 30.0
    #: retry schedule for failed attempts (shared with the shard layer).
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    #: breaker knobs for the worker pool.
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 2.0
    #: consecutive verified answers before the ladder steps back up.
    recovery_successes: int = 8
    #: LRU capacities (entries, not bytes).
    column_cache: int = 2048
    apsp_cache: int = 8
    #: coalesce concurrent column requests into lane-batched engine runs
    #: (:mod:`repro.serve.coalesce`). Off restores the one-request-per-
    #: engine-run PR 8 behaviour (the benchmark's control arm).
    coalesce: bool = True
    #: how long a coalescing batch collects before dispatching (ms).
    coalesce_window_ms: float = 2.0
    #: distinct destinations per batch; a full batch dispatches early.
    #: The degradation rung may chunk a batch into narrower engine runs
    #: (:meth:`repro.serve.degrade.Rung.coalesce_width`).
    max_lanes: int = 32
    #: spare PEs given to the resilient bottom rung (array n = problem
    #: n + spares, quarantine headroom for bus-fault recovery).
    resilient_spares: int = 2
    #: resilient-executor policy for the bottom rung.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    #: seed for the retry-jitter RNG (determinism in tests/chaos).
    seed: int = 0
    #: per-request telemetry spans kept for profile export.
    keep_request_spans: int = 256
    #: verify every computed answer against the Bellman fixpoint before
    #: serving. Leave on: this is the "0 silent-wrong" guarantee. The
    #: switch exists only so the SLO benchmark can price the check.
    verify: bool = True
    #: breaker/monotonic clock (injectable for tests).
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.default_deadline_ms <= 0:
            raise ConfigurationError(
                "default_deadline_ms must be > 0, got "
                f"{self.default_deadline_ms}"
            )
        if self.resilient_spares < 0:
            raise ConfigurationError(
                f"resilient_spares must be >= 0, got {self.resilient_spares}"
            )
        if self.coalesce_window_ms < 0:
            raise ConfigurationError(
                "coalesce_window_ms must be >= 0, got "
                f"{self.coalesce_window_ms}"
            )
        if self.max_lanes < 1:
            raise ConfigurationError(
                f"max_lanes must be >= 1, got {self.max_lanes}"
            )


@dataclass
class _Graph:
    """One registered named graph (immutable once stored)."""

    name: str
    W: np.ndarray  # normalised int64 grid with maxint sentinels
    n: int
    word_bits: int
    maxint: int
    version: int
    digest: str


class _AnswerRejected(ReproError):
    """A computed answer failed Bellman-fixpoint verification."""

    def __init__(self, problems: list[str]):
        super().__init__(
            "answer failed verification: " + "; ".join(problems[:3])
        )
        self.problems = problems


class _ComputeFailed(ReproError):
    """An attempt failed before producing an answer (crash, fault,
    resilience budget exhausted...)."""


class PathQueryService:
    """Fault-tolerant MCP query service over persistent named graphs."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        machine_factory: Callable[[int, int], PPAMachine] | None = None,
        sanitize: bool | None = None,
    ):
        self.config = config or ServiceConfig()
        self.machine_factory = machine_factory or default_machine_factory
        # Leak sanitizer (docs/static-analysis.md): explicit kwarg wins,
        # REPRO_SANITIZE=1 arms it everywhere (CI chaos smoke runs so).
        enable_sanitizer = sanitize if sanitize is not None \
            else sanitize_from_env()
        self.sanitizer: HostSanitizer | None = \
            HostSanitizer() if enable_sanitizer else None
        self.last_census: LeakCensus | None = None
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            clock=self.config.clock,
        )
        self.ladder = DegradationLadder(
            recovery_successes=self.config.recovery_successes,
        )
        self.graphs: dict[str, _Graph] = {}
        self._columns: OrderedDict = OrderedDict()
        self._apsp: OrderedDict = OrderedDict()
        #: certified warm-start seeds for dirtied columns,
        #: (name, version, dest) -> (n,) int64 upper-bound vector
        self._warm: OrderedDict = OrderedDict()
        #: partially-invalidated APSP planes awaiting incremental
        #: re-solve, (name, version) -> salvage record (see _put_delta)
        self._apsp_salvage: OrderedDict = OrderedDict()
        self._coalescer: ColumnCoalescer | None = None
        if self.config.coalesce:
            self._coalescer = ColumnCoalescer(
                self._dispatch_columns,
                window_ms=self.config.coalesce_window_ms,
                max_lanes=self.config.max_lanes,
            )
        self.counters: dict[str, int] = {
            "ok": 0, "shed": 0, "deadline": 0, "error": 0,
            "verify_rejections": 0, "retries": 0, "abandoned": 0,
            "cache_hits": 0, "cache_misses": 0, "degraded_responses": 0,
        }
        self._executor: ThreadPoolExecutor | None = None  # lazy
        self._epoch = self.config.clock()
        self._spans: deque = deque(maxlen=self.config.keep_request_spans)
        self._server: asyncio.AbstractServer | None = None
        self._reapers: set[asyncio.Task] = set()
        self._connections: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _arm_sanitizer(self) -> None:
        """Instrument the running loop, once, on first async entry."""
        if self.sanitizer is not None:
            self.sanitizer.arm(asyncio.get_running_loop())

    def _threads(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.max_inflight,
                thread_name_prefix="repro-serve",
            )
        return self._executor

    async def start(self, host: str = "127.0.0.1", port: int = 0
                    ) -> asyncio.AbstractServer:
        """Bind the JSON-lines TCP endpoint; returns the asyncio server
        (``server.sockets[0].getsockname()`` has the bound port)."""
        self._arm_sanitizer()
        self._server = await asyncio.start_server(
            self._on_connection, host, port, limit=MAX_LINE_BYTES + 1024,
        )
        return self._server

    async def stop(self) -> None:
        """Close the endpoint, drain reapers, shut the thread pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*list(self._connections),
                                 return_exceptions=True)
        if self._coalescer is not None:
            await self._coalescer.drain()
        if self._reapers:
            await asyncio.gather(*list(self._reapers),
                                 return_exceptions=True)
        if self._executor is not None:
            # shutdown(wait=True) joins worker threads: run the join on
            # the default executor so a slow in-flight solve cannot
            # freeze the loop during shutdown (host-blocking-io).
            executor, self._executor = self._executor, None
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, functools.partial(executor.shutdown, wait=True))
        if self.sanitizer is not None and self.sanitizer.armed:
            # Everything is drained: anything still alive is a leak.
            census = self.sanitizer.shutdown_census(
                admission=self.admission)
            self.last_census = census
            self.sanitizer.disarm()
            if not census.clean:
                raise SanitizerViolation(census)

    # ------------------------------------------------------------------
    # TCP plumbing
    # ------------------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        me = asyncio.current_task()
        if me is not None:
            self._connections.add(me)
        lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    async with lock:
                        writer.write(encode_message(Response(
                            id=None, status="error",
                            error="oversized protocol line",
                        )))
                        await writer.drain()
                    break
                if not line:
                    break
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # stop() cancelled us; finish the cleanup and end cleanly
        finally:
            if me is not None:
                self._connections.discard(me)
            if tasks:
                await asyncio.gather(*list(tasks), return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            except asyncio.CancelledError:
                pass  # teardown via stop(): the transport dies with us

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter,
                          lock: asyncio.Lock) -> None:
        try:
            data = decode_line(line)
        except ReproError as exc:
            response = Response(id=None, status="error", error=str(exc))
        else:
            response = await self.handle_request(data)
        async with lock:
            try:
                writer.write(encode_message(response))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------

    async def handle_request(self, data: "dict | Request") -> Response:
        """Serve one request end to end (also the in-process test entry)."""
        self._arm_sanitizer()
        t0 = self.config.clock()
        try:
            req = data if isinstance(data, Request) \
                else Request.from_dict(data)
        except ReproError as exc:
            rid = data.get("id") if isinstance(data, dict) else None
            return self._finish(Response(id=rid, status="error",
                                         error=str(exc)), t0)

        span = Span("serve.request", {"op": req.op, "id": str(req.id)})
        span.start = t0 - self._epoch
        try:
            response = await self._dispatch(req, t0, span)
        except ReproError as exc:
            response = Response(id=req.id, status="error", op=req.op,
                                error=str(exc))
        except Exception as exc:  # never leak a traceback to the wire
            response = Response(id=req.id, status="error", op=req.op,
                                error=f"internal error: {exc!r}")
        span.end = self.config.clock() - self._epoch
        span.attrs["status"] = response.status
        self._spans.append(span)
        return self._finish(response, t0)

    def _finish(self, response: Response, t0: float) -> Response:
        response.timing.setdefault(
            "total_ms", round((self.config.clock() - t0) * 1e3, 3)
        )
        self.counters[response.status] = \
            self.counters.get(response.status, 0) + 1
        if response.degraded is not None:
            self.counters["degraded_responses"] += 1
        return response

    async def _dispatch(self, req: Request, t0: float, span: Span
                        ) -> Response:
        if req.op == "ping":
            return Response(id=req.id, status="ok", op="ping",
                            result={"pong": True},
                            server={"protocol": PROTOCOL_VERSION})
        if req.op == "health":
            return self._health(req)
        if req.op == "stats":
            return Response(id=req.id, status="ok", op="stats",
                            result=self.stats(),
                            server={"protocol": PROTOCOL_VERSION})
        if req.op == "put_graph":
            return self._put_graph(req)
        if req.op == "del_graph":
            return self._del_graph(req)
        if req.op in ("point", "dest", "apsp"):
            return await self._query(req, t0, span)
        raise ReproError(f"unhandled op {req.op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Graph registry
    # ------------------------------------------------------------------

    def _put_graph(self, req: Request) -> Response:
        if not req.graph:
            raise ReproError("put_graph needs a graph name")
        if req.weights is not None and req.edges is not None:
            raise ReproError(
                "put_graph takes weights (full replace) or edges (delta), "
                "not both"
            )
        if req.edges is not None:
            return self._put_delta(req)
        if req.weights is None:
            raise ReproError("put_graph needs a weights matrix or an "
                             "edges delta")
        raw = np.asarray(
            [[np.inf if v is None else v for v in row]
             for row in req.weights],
            dtype=np.float64,
        )
        if raw.ndim != 2 or raw.shape[0] != raw.shape[1] or raw.shape[0] < 2:
            raise GraphError(
                f"weights must be a square matrix of side >= 2, got shape "
                f"{raw.shape}"
            )
        probe = PPAMachine(PPAConfig(n=int(raw.shape[0]),
                                     word_bits=req.word_bits))
        W = normalize_weights(raw, probe, zero_diagonal="set")
        version = (self.graphs[req.graph].version + 1
                   if req.graph in self.graphs else 1)
        digest = hashlib.blake2b(
            W.tobytes() + bytes([req.word_bits]), digest_size=16
        ).hexdigest()
        g = _Graph(name=req.graph, W=W, n=int(W.shape[0]),
                   word_bits=req.word_bits, maxint=probe.maxint,
                   version=version, digest=digest)
        self.graphs[req.graph] = g
        self.ladder.forget(req.graph)  # new content, fresh health record
        self._purge_salvage(req.graph)
        return Response(id=req.id, status="ok", op="put_graph", result={
            "graph": g.name, "n": g.n, "version": g.version,
            "digest": g.digest, "maxint": g.maxint,
        })

    def _put_delta(self, req: Request) -> Response:
        """Incremental ``put_graph``: apply a sparse edge delta.

        Bumps the graph version, then *migrates* instead of dropping
        cached work: columns the delta provably cannot have changed
        (:func:`repro.serve.delta.column_is_dirty`) are re-keyed to the
        new version verbatim; dirtied columns leave behind a certified
        warm-start seed so their re-solve starts from near-converged
        bounds. A cached APSP plane is split the same way —
        :func:`dirty_destinations` picks the columns to re-solve, and a
        salvage record lets the next ``apsp`` request recompute only
        those lanes (warm-started), splicing them into the kept plane.
        """
        g = self._graph(req)
        if req.base_version is not None and req.base_version != g.version:
            raise ReproError(
                f"version conflict: graph {g.name!r} is at version "
                f"{g.version}, delta targets {req.base_version}"
            )
        edges = decode_edges(req.edges, g.n, g.maxint)
        W_new = apply_edge_delta(g.W, edges, g.maxint)
        digest = hashlib.blake2b(
            W_new.tobytes() + bytes([g.word_bits]), digest_size=16
        ).hexdigest()
        new = _Graph(name=g.name, W=W_new, n=g.n, word_bits=g.word_bits,
                     maxint=g.maxint, version=g.version + 1, digest=digest)
        self.graphs[g.name] = new
        # unlike a full replace, graph health history stays: the content
        # is mostly the same machine-shaped problem

        kept = 0
        dirtied = 0
        for d in range(g.n):
            key = (g.name, g.version, d)
            entry = self._columns.pop(key, None)
            if entry is None:
                continue
            if not column_is_dirty(edges, entry["sow"], entry["ptn"],
                                   g.maxint):
                self._columns[(g.name, new.version, d)] = entry
                kept += 1
            else:
                self._warm[(g.name, new.version, d)] = certify_warm_column(
                    W_new, entry["sow"], entry["ptn"], d, g.maxint
                )
                dirtied += 1
        while len(self._warm) > self.config.column_cache:
            self._warm.popitem(last=False)

        apsp_dirty = None
        plane = self._apsp.pop((g.name, g.version), None)
        if plane is not None:
            dirty = dirty_destinations(edges, plane["dist"], plane["succ"],
                                       g.maxint)
            apsp_dirty = int(dirty.sum())
            if apsp_dirty == 0:
                self._apsp[(g.name, new.version)] = plane
            else:
                dirty_idx = np.flatnonzero(dirty)
                warm = certify_warm_plane(
                    W_new, plane["dist"][:, dirty_idx],
                    plane["succ"][:, dirty_idx], dirty_idx, g.maxint,
                )
                self._apsp_salvage[(g.name, new.version)] = {
                    "dist": plane["dist"], "succ": plane["succ"],
                    "iterations": plane["iterations"],
                    "dirty": dirty_idx, "warm": warm,
                }
                while len(self._apsp_salvage) > self.config.apsp_cache:
                    self._apsp_salvage.popitem(last=False)
                # the clean columns also serve point/dest directly
                for d in np.flatnonzero(~dirty):
                    d = int(d)
                    self._columns[(g.name, new.version, d)] = {
                        "sow": plane["dist"][:, d],
                        "ptn": plane["succ"][:, d],
                        "iterations": int(plane["iterations"][d]),
                        "engine": plane["engine"],
                        "degraded": plane.get("degraded"),
                    }
        while len(self._columns) > self.config.column_cache:
            self._columns.popitem(last=False)
        self._purge_salvage(g.name, keep_version=new.version)

        return Response(id=req.id, status="ok", op="put_graph", result={
            "graph": new.name, "n": new.n, "version": new.version,
            "digest": new.digest, "maxint": new.maxint,
            "delta": {
                "edges": len(edges),
                "columns_kept": kept,
                "columns_dirtied": dirtied,
                "apsp_dirty": apsp_dirty,
            },
        })

    def _purge_salvage(self, name: str, keep_version: int | None = None
                       ) -> None:
        """Drop warm seeds / salvage planes for *name* except, optionally,
        the current version's."""
        for key in [k for k in self._warm
                    if k[0] == name and k[1] != keep_version]:
            del self._warm[key]
        for key in [k for k in self._apsp_salvage
                    if k[0] == name and k[1] != keep_version]:
            del self._apsp_salvage[key]

    def _del_graph(self, req: Request) -> Response:
        if not req.graph:
            raise ReproError("del_graph needs a graph name")
        existed = self.graphs.pop(req.graph, None) is not None
        self.ladder.forget(req.graph)
        self._purge_salvage(req.graph)
        return Response(id=req.id, status="ok", op="del_graph",
                        result={"graph": req.graph, "deleted": existed})

    def _graph(self, req: Request) -> _Graph:
        if not req.graph:
            raise ReproError(f"{req.op} needs a graph name")
        try:
            return self.graphs[req.graph]
        except KeyError:
            raise ReproError(f"unknown graph {req.graph!r} "
                             "(register it with put_graph)") from None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    async def _query(self, req: Request, t0: float, span: Span) -> Response:
        g = self._graph(req)
        if req.op in ("point", "dest"):
            if req.dest is None or not 0 <= req.dest < g.n:
                raise ReproError(
                    f"dest must be in [0, {g.n}), got {req.dest}"
                )
        if req.op == "point":
            if req.source is None or not 0 <= req.source < g.n:
                raise ReproError(
                    f"source must be in [0, {g.n}), got {req.source}"
                )

        deadline_ms = req.deadline_ms or self.config.default_deadline_ms
        deadline_at = t0 + deadline_ms / 1e3

        # cached answers are served without consuming an admission slot
        cached = self._cache_lookup(req, g)
        if cached is not None:
            hit = Span("serve.cache_hit", {
                "graph": g.name, "version": g.version,
                "op": req.op,
                "dest": int(req.dest) if req.dest is not None else -1,
            })
            hit.start = self.config.clock() - self._epoch
            response = self._answer(req, g, cached, cached.get("degraded"))
            hit.end = self.config.clock() - self._epoch
            span.children.append(hit)
            response.timing["cached"] = True
            response.timing["queued_ms"] = 0.0
            return response

        if self._coalescer is not None and req.op in ("point", "dest"):
            return await self._query_coalesced(req, g, deadline_at, t0,
                                               span)

        # -- admission ------------------------------------------------
        try:
            remaining = deadline_at - self.config.clock()
            if remaining <= 0:
                raise asyncio.TimeoutError
            await asyncio.wait_for(self.admission.acquire(),
                                   timeout=remaining)
        except asyncio.TimeoutError:
            return Response(
                id=req.id, status="deadline", op=req.op,
                error="deadline expired while queued for admission",
                timing={"queued_ms": round(
                    (self.config.clock() - t0) * 1e3, 3)},
            )
        except QueueFull as exc:
            return Response(
                id=req.id, status="shed", op=req.op,
                error="admission queue full",
                retry_after_ms=round(exc.retry_after_ms, 3),
            )
        queued_ms = round((self.config.clock() - t0) * 1e3, 3)

        release_inline = True
        try:
            response, release_inline = await self._admitted(
                req, g, deadline_at, span
            )
            response.timing["queued_ms"] = queued_ms
            return response
        finally:
            if release_inline:
                self.admission.release()

    async def _query_coalesced(self, req: Request, g: _Graph,
                               deadline_at: float, t0: float,
                               span: Span) -> Response:
        """Column path through the micro-batching coalescer.

        The request parks on the shared per-destination future; the
        coalescer dispatches one lane-batched engine run per collection
        window (``_dispatch_columns``) and the outcome fans back here.
        Per-request deadlines stay per-request: an expired waiter gets
        its ``deadline`` response while the batch keeps computing for
        the others (and still warms the cache).
        """
        future, joined = self._coalescer.join(g, int(req.dest),
                                              deadline_at)
        wait = Span("serve.coalesce", {
            "graph": g.name, "version": g.version, "dest": int(req.dest),
            "single_flight": joined,
        })
        wait.start = self.config.clock() - self._epoch
        span.children.append(wait)
        try:
            remaining = deadline_at - self.config.clock()
            if remaining <= 0:
                raise asyncio.TimeoutError
            outcome = await asyncio.wait_for(asyncio.shield(future),
                                             timeout=remaining)
        except asyncio.TimeoutError:
            wait.end = self.config.clock() - self._epoch
            wait.attrs["outcome"] = "deadline"
            return Response(
                id=req.id, status="deadline", op=req.op,
                error="deadline expired awaiting coalesced batch",
                timing={"queued_ms": round(
                    (self.config.clock() - t0) * 1e3, 3)},
            )
        wait.end = self.config.clock() - self._epoch
        wait.attrs["outcome"] = outcome["status"]
        if outcome["status"] == "ok":
            payload = outcome["payload"]
            response = self._answer(req, g, payload,
                                    payload.get("degraded"))
            response.timing["queued_ms"] = payload.get("queued_ms", 0.0)
            response.timing["attempts"] = payload.get("attempts", 1)
            response.timing["batched_with"] = payload.get(
                "batched_with", 1)
            if joined:
                response.timing["single_flight"] = True
            return response
        if outcome["status"] == "shed":
            return Response(
                id=req.id, status="shed", op=req.op,
                error="admission queue full",
                retry_after_ms=outcome.get("retry_after_ms"),
            )
        if outcome["status"] == "deadline":
            return Response(
                id=req.id, status="deadline", op=req.op,
                error=outcome.get("message", "deadline expired"),
                timing={"attempts": outcome.get("attempts", 1)},
            )
        return Response(
            id=req.id, status="error", op=req.op,
            error=outcome.get("message", "coalesced batch failed"),
            timing={"attempts": outcome.get("attempts", 1)},
        )

    async def _dispatch_columns(self, g: _Graph,
                                waiters: "dict[int, asyncio.Future]",
                                deadline_at: float) -> None:
        """Admission + retry loop for one coalesced batch (the
        :class:`ColumnCoalescer`'s dispatch callback).

        The whole batch consumes **one** admission slot, weighted by its
        lane count in the admission statistics. Never raises — every
        waiter is resolved to an outcome dict no matter what."""
        t0 = self.config.clock()
        batch_span = Span("serve.batch", {
            "graph": g.name, "version": g.version, "lanes": len(waiters),
        })
        batch_span.start = t0 - self._epoch
        self._spans.append(batch_span)

        def _resolve_all(outcome: dict) -> None:
            for fut in waiters.values():
                if not fut.done():
                    fut.set_result(outcome)

        try:
            remaining = deadline_at - self.config.clock()
            if remaining <= 0:
                raise asyncio.TimeoutError
            await asyncio.wait_for(
                self.admission.acquire(weight=len(waiters)),
                timeout=remaining,
            )
        except asyncio.TimeoutError:
            batch_span.end = self.config.clock() - self._epoch
            batch_span.attrs["status"] = "deadline"
            _resolve_all({"status": "deadline", "message":
                          "deadline expired while queued for admission"})
            return
        except QueueFull as exc:
            batch_span.end = self.config.clock() - self._epoch
            batch_span.attrs["status"] = "shed"
            _resolve_all({"status": "shed",
                          "retry_after_ms": round(exc.retry_after_ms, 3)})
            return
        queued_ms = round((self.config.clock() - t0) * 1e3, 3)

        release_inline = True
        try:
            release_inline = await self._batch_admitted(
                g, waiters, deadline_at, queued_ms, batch_span
            )
        except Exception as exc:  # never leave a waiter hanging
            _resolve_all({"status": "error",
                          "message": f"internal error: {exc!r}"})
        finally:
            batch_span.end = self.config.clock() - self._epoch
            if release_inline:
                self.admission.release()

    async def _batch_admitted(self, g: _Graph,
                              waiters: "dict[int, asyncio.Future]",
                              deadline_at: float, queued_ms: float,
                              batch_span: Span) -> bool:
        """The retry/degradation loop for one admitted coalesced batch.

        Mirrors :meth:`_admitted` lane-wise: same ladder, backoff and
        abandonment semantics, one batched engine run per attempt.
        Returns ``release_inline`` — False when an abandoned compute
        thread still owns the batch's admission slot."""
        loop = asyncio.get_running_loop()
        dests = sorted(waiters)
        rng = np.random.default_rng(
            self.config.seed
            ^ (hash(("batch", g.name, g.version, tuple(dests)))
               & 0xFFFF_FFFF)
        )
        # snapshot certified warm seeds on the event loop; compute
        # threads must not touch service state
        seeds = {d: self._warm.get((g.name, g.version, d)) for d in dests}
        floor: Rung | None = None
        attempt = 0
        last_failure = "no attempt ran"

        def _resolve_all(outcome: dict) -> None:
            for fut in waiters.values():
                if not fut.done():
                    fut.set_result(outcome)

        while True:
            rung, reasons = self.ladder.rung_for(
                g.name,
                pressure=self.admission.pressure,
                breaker_open=self.breaker.state is BreakerState.OPEN,
            )
            if floor is not None and floor.index > rung.index:
                rung = floor
                reasons.append(f"in-request retry after: {last_failure}")
            notes: list[str] = []
            width = rung.coalesce_width(g.n, self.config.max_lanes)

            attempt_span = Span("serve.attempt", {
                "rung": rung.index, "engine": rung.engine,
                "workers": 1, "attempt": attempt,
                "lanes": len(dests), "width": width,
            })
            attempt_span.start = self.config.clock() - self._epoch
            batch_span.children.append(attempt_span)

            work = functools.partial(self._compute_columns, g, dests,
                                     rung, notes, seeds, width)
            future = loop.run_in_executor(self._threads(), work)
            remaining = deadline_at - self.config.clock()
            failure: str | None = None
            payloads = None
            try:
                if remaining <= 0:
                    raise asyncio.TimeoutError
                payloads = await asyncio.wait_for(asyncio.shield(future),
                                                  timeout=remaining)
            except asyncio.TimeoutError:
                attempt_span.end = self.config.clock() - self._epoch
                attempt_span.attrs["outcome"] = "deadline"
                batch_span.attrs["status"] = "deadline"
                release_inline = future.done()
                if not release_inline:
                    self.counters["abandoned"] += 1
                    reaper = asyncio.ensure_future(self._reap(future))
                    self._reapers.add(reaper)
                    reaper.add_done_callback(self._reapers.discard)
                _resolve_all({"status": "deadline",
                              "message": "deadline expired during compute",
                              "attempts": attempt + 1})
                return release_inline
            except _AnswerRejected as exc:
                self.counters["verify_rejections"] += 1
                failure = f"verification rejected the answer: {exc}"
            except (ReproError, RuntimeError, ValueError) as exc:
                failure = f"{type(exc).__name__}: {exc}"
            attempt_span.end = self.config.clock() - self._epoch

            if failure is None:
                attempt_span.attrs["outcome"] = "ok"
                batch_span.attrs["status"] = "ok"
                self.ladder.record_success(g.name)
                degraded = None
                if rung.index > 0 or reasons or notes:
                    degraded = rung.record(reasons + notes, 1)
                for d in dests:
                    self._store_column(g, d, payloads[d], degraded)
                    payload = dict(payloads[d])
                    payload["degraded"] = degraded
                    payload["batched_with"] = len(dests)
                    payload["attempts"] = attempt + 1
                    payload["queued_ms"] = queued_ms
                    fut = waiters[d]
                    if not fut.done():
                        fut.set_result({"status": "ok",
                                        "payload": payload})
                return True

            # -- failed attempt ---------------------------------------
            attempt_span.attrs["outcome"] = failure
            last_failure = failure
            self.ladder.record_failure(g.name, rung, failure)
            floor = self.ladder.rung_below(rung)
            attempt += 1
            exhausted = attempt >= (self.config.backoff.max_attempts
                                    + len(RUNGS))
            if exhausted or (floor is None
                             and attempt > self.config.backoff.max_attempts):
                batch_span.attrs["status"] = "error"
                _resolve_all({
                    "status": "error",
                    "message": ("degradation ladder exhausted; last "
                                "failure: " + failure),
                    "attempts": attempt,
                })
                return True
            self.counters["retries"] += 1
            delay = self.config.backoff.delay(attempt, rng)
            if self.config.clock() + delay >= deadline_at:
                batch_span.attrs["status"] = "deadline"
                _resolve_all({
                    "status": "deadline",
                    "message": ("deadline would expire during retry "
                                "backoff; last failure: " + failure),
                    "attempts": attempt,
                })
                return True
            if delay > 0:
                await asyncio.sleep(delay)

    async def _admitted(self, req: Request, g: _Graph, deadline_at: float,
                        span: Span) -> tuple[Response, bool]:
        """The retry/degradation loop for one admitted request.

        Returns ``(response, release_inline)`` — ``release_inline`` is
        False when an abandoned compute thread still owns the admission
        slot (a reaper task releases it when the thread finishes).
        """
        loop = asyncio.get_running_loop()
        rng = np.random.default_rng(self.config.seed
                                    ^ (hash(str(req.id)) & 0xFFFF_FFFF))
        floor: Rung | None = None
        attempt = 0
        last_failure = "no attempt ran"
        while True:
            rung, reasons = self.ladder.rung_for(
                g.name,
                pressure=self.admission.pressure,
                breaker_open=self.breaker.state is BreakerState.OPEN,
            )
            if floor is not None and floor.index > rung.index:
                rung = floor
                reasons.append(f"in-request retry after: {last_failure}")
            notes: list[str] = []

            # snapshot any salvage plane on the event loop; the compute
            # thread must not read mutable service state. An available
            # incremental re-solve beats spinning up the worker pool.
            salvage = None
            if req.op == "apsp" and not rung.resilient:
                salvage = self._apsp_salvage.get((g.name, g.version))
            workers = 1
            probing = False
            if (req.op == "apsp" and salvage is None and rung.use_workers
                    and self.config.workers > 1):
                if self.breaker.allow():
                    workers = self.config.workers
                    probing = self.breaker.state is BreakerState.HALF_OPEN
                else:
                    notes.append("worker-pool breaker open (inline sweep)")

            attempt_span = Span("serve.attempt", {
                "rung": rung.index, "engine": rung.engine,
                "workers": workers, "attempt": attempt,
            })
            attempt_span.start = self.config.clock() - self._epoch
            span.children.append(attempt_span)

            if req.op == "apsp":
                work = functools.partial(self._compute_apsp, g, rung,
                                         workers, notes, salvage)
            else:
                work = functools.partial(self._compute_column, g,
                                         int(req.dest), rung, notes)
            future = loop.run_in_executor(self._threads(), work)
            remaining = deadline_at - self.config.clock()
            failure: str | None = None
            payload = None
            try:
                if remaining <= 0:
                    raise asyncio.TimeoutError
                payload = await asyncio.wait_for(asyncio.shield(future),
                                                 timeout=remaining)
            except asyncio.TimeoutError:
                attempt_span.end = self.config.clock() - self._epoch
                attempt_span.attrs["outcome"] = "deadline"
                release_inline = future.done()
                if not release_inline:
                    self.counters["abandoned"] += 1
                    reaper = asyncio.ensure_future(self._reap(future))
                    self._reapers.add(reaper)
                    reaper.add_done_callback(self._reapers.discard)
                return Response(
                    id=req.id, status="deadline", op=req.op,
                    error="deadline expired during compute",
                    timing={"attempts": attempt + 1},
                ), release_inline
            except _AnswerRejected as exc:
                self.counters["verify_rejections"] += 1
                failure = f"verification rejected the answer: {exc}"
            except (ReproError, RuntimeError, ValueError) as exc:
                failure = f"{type(exc).__name__}: {exc}"
            attempt_span.end = self.config.clock() - self._epoch

            if probing or (workers > 1 and payload is not None):
                shard_failures = (payload or {}).get("shard_failures", 0)
                if failure is not None or shard_failures:
                    self.breaker.record_failure(
                        failure or f"{shard_failures} shard failure(s)"
                    )
                    if shard_failures:
                        notes.append(
                            f"worker pool absorbed {shard_failures} "
                            "shard failure(s)"
                        )
                else:
                    self.breaker.record_success()

            if failure is None:
                attempt_span.attrs["outcome"] = "ok"
                self.ladder.record_success(g.name)
                degraded = None
                if rung.index > 0 or reasons or notes:
                    degraded = rung.record(reasons + notes, workers)
                self._cache_store(req, g, payload, degraded)
                response = self._answer(req, g, payload, degraded)
                response.timing["attempts"] = attempt + 1
                return response, True

            # -- failed attempt ---------------------------------------
            attempt_span.attrs["outcome"] = failure
            last_failure = failure
            self.ladder.record_failure(g.name, rung, failure)
            floor = self.ladder.rung_below(rung)
            attempt += 1
            # the ladder has finite depth and the backoff a finite retry
            # budget: together they bound the attempts of any request
            exhausted = attempt >= (self.config.backoff.max_attempts
                                    + len(RUNGS))
            if exhausted or (floor is None
                             and attempt > self.config.backoff.max_attempts):
                return Response(
                    id=req.id, status="error", op=req.op,
                    error=("degradation ladder exhausted; last failure: "
                           + failure),
                    timing={"attempts": attempt},
                ), True
            self.counters["retries"] += 1
            delay = self.config.backoff.delay(attempt, rng)
            if self.config.clock() + delay >= deadline_at:
                return Response(
                    id=req.id, status="deadline", op=req.op,
                    error=("deadline would expire during retry backoff; "
                           "last failure: " + failure),
                    timing={"attempts": attempt},
                ), True
            if delay > 0:
                await asyncio.sleep(delay)
        # unreachable; loop exits only via return
        raise ReproError("retry loop left without a response")

    async def _reap(self, future: "asyncio.Future") -> None:
        """Hold an abandoned compute's admission slot until the thread
        actually finishes, then release it."""
        try:
            await future
        except BaseException:
            pass
        finally:
            self.admission.release()

    # ------------------------------------------------------------------
    # Compute (runs in worker threads — no service state access)
    # ------------------------------------------------------------------

    def _compute_column(self, g: _Graph, dest: int, rung: Rung,
                        notes: list) -> dict:
        if rung.resilient:
            machine = self.machine_factory(
                g.n + self.config.resilient_spares, g.word_bits
            )
            executor = ResilientExecutor(machine, self.config.resilience)
            res = executor.run(g.W, dest, raise_on_failure=False)
            if not res.trustworthy:
                raise _ComputeFailed(
                    "resilient executor exhausted its recovery budget"
                )
            lane = res.lane(0)
            payload = {"sow": lane.sow, "ptn": lane.ptn,
                       "iterations": int(lane.iterations),
                       "engine": "cycle+resilient"}
        else:
            machine = self.machine_factory(g.n, g.word_bits)
            engine = rung.engine
            blocked = fused_block_reason(machine)
            if engine != "cycle" and blocked is not None:
                notes.append(f"engine auto-downgrade to cycle: {blocked}")
                engine = "cycle"
            res = minimum_cost_path(machine, g.W, dest, engine=engine)
            payload = {"sow": res.sow, "ptn": res.ptn,
                       "iterations": int(res.iterations), "engine": engine}
        if self.config.verify:
            problems = verify_mcp(g.W, payload["sow"], payload["ptn"],
                                  dest, g.maxint)
            if problems:
                raise _AnswerRejected(problems)
        return payload

    def _compute_columns(self, g: _Graph, dests: list, rung: Rung,
                         notes: list, seeds: dict, width: int) -> dict:
        """Lane-batched column compute for one coalesced batch.

        ``seeds`` maps dest -> certified warm-start bound vector (or
        None); seeds ride only on the analytic engines — the cycle
        simulator and the resilient executor always run cold (they are
        the ground-truth/recovery paths). ``width`` is the rung-aware
        lane cap: degraded rungs chunk the batch into narrower engine
        runs. Returns dest -> payload."""
        out: dict[int, dict] = {}
        if rung.resilient:
            machine = self.machine_factory(
                g.n + self.config.resilient_spares, g.word_bits
            )
            executor = ResilientExecutor(machine, self.config.resilience)
            for base in range(0, len(dests), width):
                chunk = np.asarray(dests[base:base + width],
                                   dtype=np.int64)
                res = executor.run_batched(g.W, chunk,
                                           raise_on_failure=False)
                if not res.trustworthy:
                    raise _ComputeFailed(
                        "resilient executor exhausted its recovery budget"
                    )
                for b, d in enumerate(chunk):
                    lane = res.lane(b)
                    out[int(d)] = {"sow": lane.sow, "ptn": lane.ptn,
                                   "iterations": int(lane.iterations),
                                   "engine": "cycle+resilient"}
        else:
            machine = self.machine_factory(g.n, g.word_bits)
            engine = rung.engine
            blocked = fused_block_reason(machine)
            if engine != "cycle" and blocked is not None:
                notes.append(f"engine auto-downgrade to cycle: {blocked}")
                engine = "cycle"
            for base in range(0, len(dests), width):
                chunk = np.asarray(dests[base:base + width],
                                   dtype=np.int64)
                warm = None
                if engine != "cycle":
                    rows = [seeds.get(int(d)) for d in chunk]
                    if any(r is not None for r in rows):
                        warm = np.full((chunk.size, g.n), g.maxint,
                                       dtype=np.int64)
                        for b, r in enumerate(rows):
                            if r is not None:
                                warm[b] = r
                view = machine.lanes(int(chunk.size))
                res = batched_minimum_cost_path(
                    view, g.W, chunk, engine=engine, warm_sow=warm
                )
                for b, d in enumerate(chunk):
                    d = int(d)
                    out[d] = {
                        "sow": res.sow[b].copy(),
                        "ptn": res.ptn[b].copy(),
                        "iterations": int(res.iterations[b]),
                        "engine": engine,
                        "warm_started": bool(
                            warm is not None and seeds.get(d) is not None
                        ),
                    }
        if self.config.verify:
            for d, payload in out.items():
                problems = verify_mcp(g.W, payload["sow"], payload["ptn"],
                                      d, g.maxint)
                if problems:
                    raise _AnswerRejected(problems)
        return out

    def _compute_apsp(self, g: _Graph, rung: Rung, workers: int,
                      notes: list, salvage: dict | None = None) -> dict:
        lanes = max(1, g.n // rung.lane_div)
        incremental = None
        if rung.resilient:
            machine = self.machine_factory(
                g.n + self.config.resilient_spares, g.word_bits
            )
            executor = ResilientExecutor(machine, self.config.resilience)
            dist = np.empty((g.n, g.n), dtype=np.int64)
            succ = np.empty((g.n, g.n), dtype=np.int64)
            iterations = np.empty(g.n, dtype=np.int64)
            for base in range(0, g.n, lanes):
                dests = np.arange(base, min(base + lanes, g.n),
                                  dtype=np.int64)
                res = executor.run_batched(g.W, dests,
                                           raise_on_failure=False)
                if not res.trustworthy:
                    raise _ComputeFailed(
                        "resilient executor exhausted its recovery budget"
                    )
                for b, d in enumerate(dests):
                    lane = res.lane(b)
                    dist[:, d] = lane.sow
                    succ[:, d] = lane.ptn
                    iterations[d] = lane.iterations
            engine = "cycle+resilient"
            shard_failures = 0
        elif salvage is not None and workers <= 1:
            # incremental re-solve: only the delta-dirtied columns are
            # recomputed (warm-started from certified bounds on analytic
            # engines), spliced into the surviving plane, then the whole
            # plane is oracle-verified like any other answer
            machine = self.machine_factory(g.n, g.word_bits)
            engine = rung.engine
            blocked = fused_block_reason(machine)
            if engine != "cycle" and blocked is not None:
                notes.append(f"engine auto-downgrade to cycle: {blocked}")
                engine = "cycle"
            dist = np.array(salvage["dist"], copy=True)
            succ = np.array(salvage["succ"], copy=True)
            iterations = np.array(salvage["iterations"], copy=True)
            dirty = np.asarray(salvage["dirty"], dtype=np.int64)
            warm = salvage["warm"]
            for base in range(0, int(dirty.size), lanes):
                chunk = dirty[base:base + lanes]
                seed = None
                if engine != "cycle":
                    seed = np.ascontiguousarray(
                        warm[:, base:base + int(chunk.size)].T
                    )
                view = machine.lanes(int(chunk.size))
                res = batched_minimum_cost_path(
                    view, g.W, chunk, engine=engine, warm_sow=seed
                )
                dist[:, chunk] = res.sow.T
                succ[:, chunk] = res.ptn.T
                iterations[chunk] = res.iterations
            shard_failures = 0
            incremental = int(dirty.size)
        else:
            machine = self.machine_factory(g.n, g.word_bits)
            engine = rung.engine
            blocked = fused_block_reason(machine)
            if engine != "cycle" and blocked is not None:
                notes.append(f"engine auto-downgrade to cycle: {blocked}")
                engine = "cycle"
            res = all_pairs_minimum_cost(
                machine, g.W, engine=engine, lanes=lanes,
                workers=workers if workers > 1 else None,
                shard_timeout=self.config.shard_timeout,
            )
            dist, succ, iterations = res.dist, res.succ, res.iterations
            shard_failures = len(res.shard_report.get("failures", ()))
        if self.config.verify:
            problems = verify_apsp(g.W, dist, succ, g.maxint)
            if problems:
                raise _AnswerRejected(problems)
        digest = hashlib.blake2b(
            dist.tobytes() + succ.tobytes(), digest_size=16
        ).hexdigest()
        return {"dist": dist, "succ": succ,
                "iterations": np.asarray(iterations),
                "digest": digest, "engine": engine, "workers": workers,
                "shard_failures": shard_failures,
                "incremental": incremental}

    # ------------------------------------------------------------------
    # Caching
    # ------------------------------------------------------------------

    def _cache_lookup(self, req: Request, g: _Graph) -> dict | None:
        if req.op == "apsp":
            entry = self._apsp.get((g.name, g.version))
            if entry is not None:
                self._apsp.move_to_end((g.name, g.version))
                self.counters["cache_hits"] += 1
                return entry
        else:
            key = (g.name, g.version, int(req.dest))
            entry = self._columns.get(key)
            if entry is not None:
                self._columns.move_to_end(key)
                self.counters["cache_hits"] += 1
                return entry
            apsp = self._apsp.get((g.name, g.version))
            if apsp is not None:
                d = int(req.dest)
                self.counters["cache_hits"] += 1
                return {"sow": apsp["dist"][:, d], "ptn": apsp["succ"][:, d],
                        "iterations": int(apsp["iterations"][d]),
                        "engine": apsp["engine"],
                        "degraded": apsp.get("degraded")}
        self.counters["cache_misses"] += 1
        return None

    def _cache_store(self, req: Request, g: _Graph, payload: dict,
                     degraded: dict | None) -> None:
        if req.op == "apsp":
            self._store_apsp(g, payload, degraded)
        else:
            self._store_column(g, int(req.dest), payload, degraded)

    def _store_column(self, g: _Graph, dest: int, payload: dict,
                      degraded: dict | None) -> None:
        entry = dict(payload)
        entry["degraded"] = degraded
        self._columns[(g.name, g.version, int(dest))] = entry
        self._warm.pop((g.name, g.version, int(dest)), None)
        while len(self._columns) > self.config.column_cache:
            self._columns.popitem(last=False)

    def _store_apsp(self, g: _Graph, payload: dict,
                    degraded: dict | None) -> None:
        entry = dict(payload)
        entry["degraded"] = degraded
        self._apsp[(g.name, g.version)] = entry
        while len(self._apsp) > self.config.apsp_cache:
            self._apsp.popitem(last=False)
        self._apsp_salvage.pop((g.name, g.version), None)
        # a verified plane answers every per-destination column: seed
        # the column LRU so later point/dest hits skip the apsp slice
        dist, succ = entry["dist"], entry["succ"]
        iterations = entry["iterations"]
        for d in range(g.n):
            self._columns[(g.name, g.version, d)] = {
                "sow": dist[:, d], "ptn": succ[:, d],
                "iterations": int(iterations[d]),
                "engine": entry["engine"], "degraded": degraded,
            }
            self._warm.pop((g.name, g.version, d), None)
        while len(self._columns) > self.config.column_cache:
            self._columns.popitem(last=False)

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------

    def _answer(self, req: Request, g: _Graph, payload: dict,
                degraded: dict | None) -> Response:
        if req.op == "apsp":
            dist = payload["dist"]
            reachable = int((dist < g.maxint).sum())
            result = {
                "n": g.n, "version": g.version,
                "reachable_pairs": reachable,
                "iterations_max": int(np.max(payload["iterations"])),
                "digest": payload["digest"],
                "engine": payload["engine"],
                "workers": payload.get("workers", 1),
                "incremental": payload.get("incremental"),
            }
            return Response(id=req.id, status="ok", op="apsp",
                            result=result, degraded=degraded)
        sow, ptn = payload["sow"], payload["ptn"]
        if req.op == "dest":
            result = {
                "graph": g.name, "version": g.version, "dest": int(req.dest),
                "sow": [int(v) for v in sow],
                "ptn": [int(v) for v in ptn],
                "maxint": g.maxint,
                "iterations": payload["iterations"],
                "engine": payload["engine"],
            }
            return Response(id=req.id, status="ok", op="dest",
                            result=result, degraded=degraded)
        # point
        source, dest = int(req.source), int(req.dest)
        cost = int(sow[source])
        reachable = cost < g.maxint
        result = {
            "graph": g.name, "version": g.version,
            "source": source, "dest": dest,
            "reachable": reachable,
            "cost": cost if reachable else None,
            "next": int(ptn[source]) if reachable and source != dest
            else None,
            "engine": payload["engine"],
        }
        if req.want_path and reachable:
            result["path"] = self._walk_path(sow, ptn, source, dest,
                                             g.maxint)
        return Response(id=req.id, status="ok", op="point", result=result,
                        degraded=degraded)

    @staticmethod
    def _walk_path(sow, ptn, source: int, dest: int, maxint: int
                   ) -> list[int]:
        path = [source]
        v = source
        for _ in range(sow.shape[0]):
            if v == dest:
                return path
            v = int(ptn[v])
            path.append(v)
        raise ReproError("successor chain does not reach the destination")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _health(self, req: Request) -> Response:
        levels = self.ladder.snapshot()["levels"]
        degraded = bool(levels) or self.breaker.state is not \
            BreakerState.CLOSED
        return Response(id=req.id, status="ok", op="health", result={
            "status": "degraded" if degraded else "healthy",
            "breaker": self.breaker.state.value,
            "ladder_levels": levels,
            "graphs": len(self.graphs),
            "inflight": self.admission.inflight,
            "queue_depth": self.admission.queue_depth,
        }, server={"protocol": PROTOCOL_VERSION})

    def stats(self) -> dict:
        """The full service snapshot (the ``stats`` op's result body)."""
        return {
            "protocol": PROTOCOL_VERSION,
            "graphs": {
                name: {"n": g.n, "version": g.version, "digest": g.digest}
                for name, g in self.graphs.items()
            },
            "admission": self.admission.snapshot(),
            "breaker": self.breaker.snapshot(),
            "ladder": self.ladder.snapshot(),
            "counters": dict(self.counters),
            "caches": {"columns": len(self._columns),
                       "apsp": len(self._apsp),
                       "warm_seeds": len(self._warm),
                       "apsp_salvage": len(self._apsp_salvage)},
            "coalescer": (self._coalescer.snapshot()
                          if self._coalescer is not None else None),
            "engine": {
                "plan_cache": plan_cache_stats().snapshot(),
                "plan_cache_sizes": plan_cache_sizes(),
                "cost_cache": cost_cache_stats(),
                "cost_cache_size": cost_cache_size(),
            },
            "sanitizer": (
                None if self.sanitizer is None else {
                    "armed": self.sanitizer.armed,
                    "last_census": (self.last_census.to_dict()
                                    if self.last_census else None),
                }
            ),
        }

    def profile(self) -> RunProfile:
        """Recent per-request spans as a standard telemetry profile."""
        return RunProfile(
            meta={"source": "repro.serve", "protocol": PROTOCOL_VERSION},
            spans=list(self._spans),
        )
