"""Wire protocol: newline-delimited JSON messages.

One request or response per line, UTF-8 JSON, ``\\n``-terminated.
Responses may arrive out of order — clients correlate on ``id`` — which
is what lets a single TCP connection carry thousands of in-flight
queries (the load generator drives 10k+ concurrent requests over a few
dozen connections this way).

Operations
----------
``point``
    Minimum-cost path ``source -> dest`` on a named graph: returns
    ``cost``, ``next`` (the successor of ``source``) and optionally the
    full ``path``.
``dest``
    The single-destination problem the paper solves: all costs/successors
    into ``dest`` (one column of the APSP matrices).
``apsp``
    Solve (and cache) the full all-pairs problem; returns summary
    statistics and a result digest rather than the O(n^2) matrices.
``put_graph``
    Register (or replace) a named weight matrix — or, with ``edges``
    instead of ``weights``, apply a **sparse edge delta** to the
    registered graph: ``edges`` is ``[[u, v, w], ...]`` (``w = null``
    removes the edge), optionally guarded by ``base_version`` (the
    update is rejected with a version-conflict error unless it applies
    to exactly that version). Deltas bump the graph version but keep
    every cached column the change provably cannot affect, and
    warm-start the re-solve of the ones it can
    (:mod:`repro.serve.delta`).
``stats`` / ``health``
    Server introspection: admission/breaker/ladder/cache state.

Statuses
--------
``ok``
    Verified answer. May carry ``degraded`` — the machine-readable
    downgrade record (rung, reasons) when the service answered below
    full capability. Column answers carry batching accounting in
    ``timing``: ``batched_with`` (how many distinct destinations shared
    the engine run — 1 means the request rode alone) and
    ``single_flight`` (the answer was joined to an identical in-flight
    computation).
``shed``
    Load-shedding refusal from admission control; carries
    ``retry_after_ms`` (the backpressure signal).
``deadline``
    The request's deadline expired before a verified answer existed.
``error``
    The request failed (bad input, unknown graph, or the full
    retry/degradation ladder was exhausted). Never a wrong answer:
    results that fail verification are retried or reported here,
    by design.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "STATUSES",
    "Request",
    "Response",
    "encode_message",
    "decode_line",
]

PROTOCOL_VERSION = "repro-serve-v1"

OPS = ("point", "dest", "apsp", "put_graph", "del_graph", "stats", "health",
       "ping")
STATUSES = ("ok", "shed", "deadline", "error")

#: Hard cap on one encoded line (16 MiB) — a malformed or hostile client
#: cannot balloon server memory through a single unbounded line.
MAX_LINE_BYTES = 16 * 1024 * 1024


@dataclass
class Request:
    """One decoded client request."""

    id: Any
    op: str
    graph: str | None = None
    source: int | None = None
    dest: int | None = None
    deadline_ms: float | None = None
    want_path: bool = False
    #: ``put_graph`` payload: nested-list weight matrix (``null`` = no
    #: edge) and word width.
    weights: list | None = None
    word_bits: int = 16
    #: ``put_graph`` sparse-delta payload: ``[[u, v, w], ...]`` edge
    #: updates (``w = null`` removes the edge). Mutually exclusive with
    #: ``weights``.
    edges: list | None = None
    #: optional optimistic-concurrency guard for delta updates: the
    #: delta only applies if the graph is at exactly this version.
    base_version: int | None = None

    @classmethod
    def from_dict(cls, data: dict) -> "Request":
        if not isinstance(data, dict):
            raise ReproError("request must be a JSON object")
        op = data.get("op")
        if op not in OPS:
            raise ReproError(f"unknown op {op!r}; choose one of {OPS}")
        if "id" not in data:
            raise ReproError("request has no id")
        return cls(
            id=data["id"],
            op=op,
            graph=data.get("graph"),
            source=_opt_int(data, "source"),
            dest=_opt_int(data, "dest"),
            deadline_ms=_opt_float(data, "deadline_ms"),
            want_path=bool(data.get("want_path", False)),
            weights=data.get("weights"),
            word_bits=int(data.get("word_bits", 16)),
            edges=data.get("edges"),
            base_version=_opt_int(data, "base_version"),
        )

    def to_dict(self) -> dict:
        out: dict = {"id": self.id, "op": self.op}
        for key in ("graph", "source", "dest", "deadline_ms", "weights",
                    "edges", "base_version"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.want_path:
            out["want_path"] = True
        if self.word_bits != 16:
            out["word_bits"] = self.word_bits
        return out


@dataclass
class Response:
    """One server response (see module docstring for the status grammar)."""

    id: Any
    status: str
    op: str | None = None
    #: answer payload (op-specific): cost/next/path, sow/ptn lists, apsp
    #: summary, stats/health body...
    result: dict = field(default_factory=dict)
    error: str | None = None
    #: machine-readable downgrade record: ``{"rung": int, "label": str,
    #: "engine": str, "workers": int, "lane_div": int,
    #: "reasons": [str, ...]}`` — absent when served at full capability.
    degraded: dict | None = None
    #: backpressure signal on ``shed`` responses (milliseconds).
    retry_after_ms: float | None = None
    #: per-request accounting: queue wait, compute, verify, attempts.
    timing: dict = field(default_factory=dict)
    server: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out: dict = {"id": self.id, "status": self.status}
        if self.op is not None:
            out["op"] = self.op
        if self.result:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.degraded is not None:
            out["degraded"] = self.degraded
        if self.retry_after_ms is not None:
            out["retry_after_ms"] = self.retry_after_ms
        if self.timing:
            out["timing"] = self.timing
        if self.server:
            out["server"] = self.server
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Response":
        if not isinstance(data, dict) or "id" not in data:
            raise ReproError("response must be a JSON object with an id")
        status = data.get("status")
        if status not in STATUSES:
            raise ReproError(f"unknown status {status!r}")
        return cls(
            id=data["id"],
            status=status,
            op=data.get("op"),
            result=dict(data.get("result", {})),
            error=data.get("error"),
            degraded=data.get("degraded"),
            retry_after_ms=data.get("retry_after_ms"),
            timing=dict(data.get("timing", {})),
            server=dict(data.get("server", {})),
        )


def _opt_int(data: dict, key: str) -> int | None:
    value = data.get(key)
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise ReproError(f"{key} must be an integer, got {value!r}") from exc


def _opt_float(data: dict, key: str) -> float | None:
    value = data.get(key)
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise ReproError(f"{key} must be a number, got {value!r}") from exc


def encode_message(message: "Request | Response | dict") -> bytes:
    """Serialise one message to a newline-terminated JSON line."""
    if hasattr(message, "to_dict"):
        message = message.to_dict()
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one received line into a plain dict (validation happens in
    :meth:`Request.from_dict` / :meth:`Response.from_dict`)."""
    if len(line) > MAX_LINE_BYTES:
        raise ReproError(
            f"line of {len(line)} bytes exceeds the {MAX_LINE_BYTES}-byte "
            "protocol cap"
        )
    try:
        return json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ReproError(f"malformed protocol line: {exc}") from exc
