"""Circuit breaker around the sharded APSP worker pool.

The worker pool already absorbs individual failures (respawn + inline
fallback, :mod:`repro.engine.shard`) — but *absorbing* a crash still
costs a deadline wait plus an inline recompute. When crashes repeat, the
cheapest correct behaviour is to stop asking the pool at all for a
cooldown and run inline directly; that is exactly the classic breaker:

``CLOSED``
    Normal operation. Consecutive failures are counted; reaching
    ``failure_threshold`` trips to OPEN.
``OPEN``
    The protected call is refused (``allow()`` is ``False``) — callers
    take the degraded path — until ``cooldown_s`` has elapsed, then one
    probe is admitted (HALF_OPEN).
``HALF_OPEN``
    Up to ``half_open_probes`` trial calls run; one success closes the
    breaker, one failure re-opens it (restarting the cooldown).

The clock is injectable so tests and the deterministic chaos harness can
drive state transitions without sleeping. Transition history is bounded
and exported through the service ``stats`` op.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing."""

    failure_threshold: int = 3
    cooldown_s: float = 5.0
    half_open_probes: int = 1
    clock: Callable[[], float] = time.monotonic
    #: bounded transition log ``(t, from, to, reason)``.
    max_history: int = 32

    state: BreakerState = field(default=BreakerState.CLOSED, init=False)
    _consecutive_failures: int = field(default=0, init=False)
    _opened_at: float = field(default=0.0, init=False)
    _probes_inflight: int = field(default=0, init=False)
    history: list = field(default_factory=list, init=False)
    stats: dict = field(
        default_factory=lambda: {"successes": 0, "failures": 0,
                                 "rejections": 0, "trips": 0},
        init=False,
    )

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got "
                f"{self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise ConfigurationError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        if self.half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )

    # -- queries ---------------------------------------------------------

    def allow(self) -> bool:
        """May the protected call run now?  (Counts a rejection when not.)

        OPEN transitions to HALF_OPEN lazily once the cooldown elapses;
        HALF_OPEN admits at most ``half_open_probes`` concurrent trials.
        """
        if self.state is BreakerState.OPEN:
            if self.clock() - self._opened_at >= self.cooldown_s:
                self._transition(BreakerState.HALF_OPEN, "cooldown elapsed")
            else:
                self.stats["rejections"] += 1
                return False
        if self.state is BreakerState.HALF_OPEN:
            if self._probes_inflight >= self.half_open_probes:
                self.stats["rejections"] += 1
                return False
            self._probes_inflight += 1
        return True

    # -- outcomes --------------------------------------------------------

    def record_success(self) -> None:
        self.stats["successes"] += 1
        if self.state is BreakerState.HALF_OPEN:
            self._probes_inflight = 0
            self._transition(BreakerState.CLOSED, "probe succeeded")
        self._consecutive_failures = 0

    def record_failure(self, reason: str = "") -> None:
        self.stats["failures"] += 1
        if self.state is BreakerState.HALF_OPEN:
            self._probes_inflight = 0
            self._trip(f"probe failed: {reason}" if reason else
                       "probe failed")
            return
        self._consecutive_failures += 1
        if (self.state is BreakerState.CLOSED
                and self._consecutive_failures >= self.failure_threshold):
            self._trip(reason or
                       f"{self._consecutive_failures} consecutive failures")

    # -- internals -------------------------------------------------------

    def _trip(self, reason: str) -> None:
        self.stats["trips"] += 1
        self._consecutive_failures = 0
        self._opened_at = self.clock()
        self._transition(BreakerState.OPEN, reason)

    def _transition(self, to: BreakerState, reason: str) -> None:
        self.history.append(
            (self.clock(), self.state.value, to.value, reason)
        )
        del self.history[: max(0, len(self.history) - self.max_history)]
        self.state = to

    def snapshot(self) -> dict:
        return {
            "state": self.state.value,
            "consecutive_failures": self._consecutive_failures,
            **self.stats,
        }
