"""Seeded load generator with independent answer validation.

Drives a running service over TCP with a reproducible request stream
(point / dest / apsp mix over one or more seeded random graphs) and
measures what the SLO benchmark and the chaos campaign both need:

* latency percentiles (p50/p90/p99/max) over completed requests,
* a status breakdown (ok / shed / deadline / error) + degraded count,
* **independent validation**: sampled ``ok`` answers are re-checked
  against a local plain-numpy Bellman solution
  (:func:`repro.serve.oracle.bellman_reference`) — the generator trusts
  neither the service's engines nor its verifier, so a non-zero
  ``wrong`` count would catch even a broken *oracle*.

Concurrency is a closed loop bounded by ``concurrency`` in-flight
requests multiplexed over ``connections`` sockets; with
``concurrency=10_000`` the service sees 10k simultaneous queries while
the generator holds a few dozen file descriptors.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.client import ServeClient
from repro.serve.oracle import bellman_reference

__all__ = ["LoadGenResult", "random_graph", "run_loadgen"]


def random_graph(n: int, density: float, rng: np.random.Generator,
                 *, max_weight: int = 9) -> list[list[int | None]]:
    """A seeded random weighted digraph in wire form (``None`` = no edge)."""
    present = rng.random((n, n)) < density
    weights = rng.integers(1, max_weight + 1, size=(n, n))
    out: list[list[int | None]] = []
    for i in range(n):
        row: list[int | None] = []
        for j in range(n):
            if i == j:
                row.append(0)
            elif present[i, j]:
                row.append(int(weights[i, j]))
            else:
                row.append(None)
        out.append(row)
    return out


@dataclass
class LoadGenResult:
    """One load-generation run's measurements."""

    requests: int = 0
    by_status: dict = field(default_factory=dict)
    degraded: int = 0
    #: graph-delta updates issued mid-stream (``update_every``).
    updates: int = 0
    validated: int = 0
    #: independently-validated answers that disagreed — MUST be 0.
    wrong: int = 0
    wall_s: float = 0.0
    latency_ms: dict = field(default_factory=dict)
    #: completed requests (any status) per wall second.
    throughput_rps: float = 0.0
    #: verified-ok requests per wall second.
    goodput_rps: float = 0.0
    peak_inflight: int = 0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "by_status": dict(self.by_status),
            "degraded": self.degraded,
            "updates": self.updates,
            "validated": self.validated,
            "wrong": self.wrong,
            "wall_s": round(self.wall_s, 4),
            "latency_ms": {k: round(v, 3)
                           for k, v in self.latency_ms.items()},
            "throughput_rps": round(self.throughput_rps, 1),
            "goodput_rps": round(self.goodput_rps, 1),
            "peak_inflight": self.peak_inflight,
        }


def _percentiles(samples_ms: list[float]) -> dict:
    if not samples_ms:
        return {}
    arr = np.asarray(samples_ms)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


async def run_loadgen(
    host: str,
    port: int,
    *,
    requests: int = 2000,
    concurrency: int = 256,
    connections: int = 8,
    graph: str = "loadgen",
    n: int = 24,
    density: float = 0.35,
    word_bits: int = 16,
    deadline_ms: float = 5_000.0,
    apsp_every: int = 500,
    dest_every: int = 25,
    validate_every: int = 17,
    seed: int = 0,
    register_graph: bool = True,
    zipf: float | None = None,
    update_every: int = 0,
) -> LoadGenResult:
    """Drive the service at ``host:port`` and measure SLOs.

    The request stream, the graph and the validation sample are all
    functions of ``seed`` alone. ``concurrency`` bounds in-flight
    requests (closed loop); ``requests`` is the total issued.

    ``zipf`` skews destination choice to a Zipf(``zipf``) law over a
    seeded destination ranking — the hot-key shape request coalescing
    and single-flight dedup are built for (``zipf=None`` keeps the
    uniform draw). ``update_every`` > 0 splits the stream into segments
    of that many requests; between segments the generator drains all
    in-flight work, applies a seeded sparse edge delta via the
    incremental ``put_graph`` path, and from then on validates answers
    against the *new* local reference **and** asserts each answer
    carries the current graph version — a served stale column counts as
    ``wrong``.
    """
    rng = np.random.default_rng(seed)
    wire = random_graph(n, density, rng)
    W = np.asarray(
        [[np.inf if v is None else v for v in row] for row in wire],
        dtype=np.float64,
    )
    maxint = (1 << word_bits) - 1
    grid = np.where(np.isinf(W), maxint, W).astype(np.int64)
    #: (version, dest) -> reference column for the grid at that version
    reference_columns: dict[tuple[int, int], np.ndarray] = {}
    state = {"version": 1}
    check_version = bool(update_every) and register_graph

    clients = [ServeClient(host, port)
               for _ in range(max(1, min(connections, requests)))]
    for client in clients:
        await client.connect()

    result = LoadGenResult(requests=requests)
    latencies: list[float] = []
    gate = asyncio.Semaphore(concurrency)
    inflight = 0

    async def reference(dest: int) -> np.ndarray:
        # Oracle columns are O(n^2) numpy sweeps: compute them off-loop
        # so validation does not stall the in-flight burst
        # (host-blocking-compute).
        key = (state["version"], dest)
        if key not in reference_columns:
            loop = asyncio.get_running_loop()
            reference_columns[key] = await loop.run_in_executor(
                None, bellman_reference, grid, dest, maxint)
        return reference_columns[key]

    async def one(i: int, op: str, source: int, dest: int,
                  validate: bool) -> None:
        nonlocal inflight
        async with gate:
            inflight += 1
            result.peak_inflight = max(result.peak_inflight, inflight)
            client = clients[i % len(clients)]
            t0 = time.monotonic()
            try:
                if op == "apsp":
                    resp = await client.apsp(graph, deadline_ms=deadline_ms)
                elif op == "dest":
                    resp = await client.dest(graph, dest,
                                             deadline_ms=deadline_ms)
                else:
                    resp = await client.point(graph, source, dest,
                                              deadline_ms=deadline_ms)
            except Exception:
                result.by_status["transport_error"] = \
                    result.by_status.get("transport_error", 0) + 1
                inflight -= 1
                return
            latencies.append((time.monotonic() - t0) * 1e3)
            inflight -= 1
            result.by_status[resp.status] = \
                result.by_status.get(resp.status, 0) + 1
            if resp.degraded is not None:
                result.degraded += 1
            if resp.status != "ok" or not validate:
                return
            result.validated += 1
            if (check_version and op in ("point", "dest")
                    and resp.result.get("version") != state["version"]):
                result.wrong += 1  # a stale version IS a wrong answer
                return
            if op == "point":
                expect = int((await reference(dest))[source])
                got = resp.result.get("cost")
                expected = None if expect >= maxint else expect
                if got != expected:
                    result.wrong += 1
            elif op == "dest":
                if resp.result.get("sow") != [
                        int(v) for v in await reference(dest)]:
                    result.wrong += 1

    if register_graph:
        put = await clients[0].put_graph(graph, wire, word_bits=word_bits)
        if put.status != "ok":
            for client in clients:
                await client.close()
            raise RuntimeError(f"put_graph failed: {put.error}")

    zipf_rng = np.random.default_rng(seed ^ 0x5A1F) if zipf else None
    zipf_rank = zipf_probs = None
    if zipf_rng is not None:
        zipf_rank = zipf_rng.permutation(n)
        zipf_probs = 1.0 / np.arange(1, n + 1) ** float(zipf)
        zipf_probs /= zipf_probs.sum()

    plan = []
    for i in range(requests):
        if apsp_every and i % apsp_every == apsp_every - 1:
            op = "apsp"
        elif dest_every and i % dest_every == dest_every - 1:
            op = "dest"
        else:
            op = "point"
        source = int(rng.integers(0, n))
        dest = int(rng.integers(0, n))
        if zipf_rng is not None and op != "apsp":
            dest = int(zipf_rank[zipf_rng.choice(n, p=zipf_probs)])
        validate = validate_every > 0 and i % validate_every == 0
        plan.append((i, op, source, dest, validate))

    update_rng = np.random.default_rng(seed ^ 0xDE17A)

    def make_delta() -> list:
        edges: list = []
        for _ in range(max(1, n // 8)):
            u = int(update_rng.integers(0, n))
            v = int(update_rng.integers(0, n - 1))
            if v >= u:
                v += 1
            w = None if update_rng.random() < 0.2 \
                else int(update_rng.integers(1, 10))
            edges.append([u, v, w])
        return edges

    t_start = time.monotonic()
    if update_every and update_every > 0:
        # segments drain fully before each delta, so every in-flight
        # answer has exactly one correct version to be validated against
        for start in range(0, requests, update_every):
            specs = plan[start:start + update_every]
            await asyncio.gather(*(one(*spec) for spec in specs))
            if start + update_every >= requests:
                break
            edges = make_delta()
            resp = await clients[0].put_delta(
                graph, edges,
                base_version=state["version"] if check_version else None,
            )
            if resp.status != "ok":
                for client in clients:
                    await client.close()
                raise RuntimeError(f"put_delta failed: {resp.error}")
            for u, v, w in edges:
                grid[u, v] = maxint if w is None else w
            state["version"] += 1
            result.updates += 1
    else:
        await asyncio.gather(*(one(*spec) for spec in plan))
    result.wall_s = time.monotonic() - t_start

    for client in clients:
        await client.close()

    completed = sum(v for k, v in result.by_status.items()
                    if k != "transport_error")
    result.latency_ms = _percentiles(latencies)
    if result.wall_s > 0:
        result.throughput_rps = completed / result.wall_s
        result.goodput_rps = result.by_status.get("ok", 0) / result.wall_s
    return result
