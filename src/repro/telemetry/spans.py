"""Structured span tracing with per-span counter attribution.

A :class:`Tracer` hands out nested *spans* — named, attributed intervals —
and snapshots the attached :class:`~repro.ppa.counters.CycleCounters` at
span entry and exit (via :meth:`CycleCounters.checkpoint`), so every span
carries the exact instruction/bus/bit-cycle counts accumulated inside it.
Nesting follows the reproduction's natural cost hierarchy::

    mcp                                 one algorithm run
      mcp.init                          initial transposition
      mcp.iteration (k = 1, 2, ...)     one DP round
        mcp.broadcast                   statement 10
        mcp.min                         statement 11 (bit-serial min)
          min.bit_slice (j = h-1 .. 0)  one wired-OR elimination step
        mcp.selected_min                statement 12
        mcp.writeback                   statements 14-19
        mcp.convergence                 statement 20 (global OR)

Because a span only *reads* counters, tracing can never perturb the
numbers it attributes: counter totals are bit-identical with tracing on,
off, or the module never imported (asserted by the zero-overhead guard in
``tests/telemetry/test_attribution.py``). When disabled — the default —
``Tracer.span`` returns a shared no-op context manager: no allocation, no
snapshot, no clock read.

Exactness invariant (asserted in tests): for every span,

    span.counters == span.self_counters + sum(child.counters)

and the root spans' counters sum to the machine's counter deltas for the
run — per-phase attribution is a *partition* of the totals, not an
estimate.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.ppa.counters import CycleCounters

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class _NullSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Span:
    """One traced interval: name, attributes, wall-time, counter deltas.

    Attributes
    ----------
    name
        Phase identifier (dotted, e.g. ``"mcp.iteration"``).
    attrs
        JSON-able key/value annotations (iteration number, destination...).
    start, end
        Seconds relative to the tracer's epoch (first span entry).
    counters
        Counter deltas accumulated between entry and exit — **inclusive**
        of child spans (the counters are cumulative machine totals).
    children
        Nested spans, in entry order.
    opcodes
        Per-opcode execution histogram; populated by the ISA executor when
        it runs inside this span (empty otherwise).
    """

    __slots__ = ("name", "attrs", "start", "end", "counters", "children",
                 "opcodes")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs: dict = attrs or {}
        self.start: float = 0.0
        self.end: float = 0.0
        self.counters: dict[str, int] = {}
        self.children: list[Span] = []
        self.opcodes: dict[str, int] = {}

    # -- derived views ---------------------------------------------------

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent inside the span (children included)."""
        return self.end - self.start

    @property
    def self_counters(self) -> dict[str, int]:
        """Exclusive counter deltas: this span minus all child spans.

        Summing ``self_counters`` over a whole tree reproduces the root's
        inclusive totals exactly (no double counting).
        """
        out = dict(self.counters)
        for child in self.children:
            for k, v in child.counters.items():
                out[k] = out.get(k, 0) - v
        return out

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (self included) with the given name."""
        return [s for s in self.walk() if s.name == name]

    # -- serialisation ---------------------------------------------------

    def to_jsonable(self) -> dict:
        """Plain-dict tree form (inverse: :meth:`from_jsonable`)."""
        out: dict = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "counters": dict(self.counters),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.opcodes:
            out["opcodes"] = dict(self.opcodes)
        if self.children:
            out["children"] = [c.to_jsonable() for c in self.children]
        return out

    @classmethod
    def from_jsonable(cls, data: dict) -> "Span":
        span = cls(data["name"], dict(data.get("attrs", {})))
        span.start = float(data["start"])
        span.end = float(data["end"])
        span.counters = {k: int(v) for k, v in data.get("counters", {}).items()}
        span.opcodes = {k: int(v) for k, v in data.get("opcodes", {}).items()}
        span.children = [cls.from_jsonable(c) for c in data.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, children={len(self.children)}, "
            f"counters={self.counters})"
        )


class Tracer:
    """Span recorder attached to one machine (or used standalone).

    Parameters
    ----------
    counters
        The :class:`CycleCounters` bundle to attribute; ``None`` records
        wall-time-only spans.
    clock
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        counters: CycleCounters | None = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.enabled = False
        self.roots: list[Span] = []
        self._counters = counters
        self._clock = clock
        self._epoch: float | None = None
        self._stack: list[Span] = []
        self.orphan_opcodes: dict[str, int] = {}

    # -- recording -------------------------------------------------------

    def span(self, name: str, **attrs):
        """Open a span; the yielded value is the :class:`Span` being built.

        When the tracer is disabled this returns a shared no-op context
        manager — the call costs one attribute check and nothing else.
        """
        if not self.enabled:
            return NULL_SPAN
        return _TracerSpanContext(self, name, attrs)

    def add_opcode(self, opcode: str, count: int = 1) -> None:
        """Bump the per-opcode histogram of the innermost open span.

        Used by the ISA executor; outside any span the counts accumulate
        in :attr:`orphan_opcodes` so nothing is silently dropped.
        """
        if not self.enabled:
            return
        target = self._stack[-1].opcodes if self._stack else self.orphan_opcodes
        target[opcode] = target.get(opcode, 0) + count

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def _now(self) -> float:
        if self._epoch is None:
            self._epoch = self._clock()
            return 0.0
        return self._clock() - self._epoch

    # -- lifecycle -------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop all recorded spans (open spans are abandoned too)."""
        self.roots.clear()
        self._stack.clear()
        self.orphan_opcodes.clear()
        self._epoch = None

    @contextmanager
    def capture(self):
        """Enable tracing for the duration of a ``with`` block."""
        prev = self.enabled
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = prev

    def __len__(self) -> int:
        return len(self.roots)


class _TracerSpanContext:
    """Context manager recording one span against a live tracer.

    Counter attribution delegates to
    :meth:`~repro.ppa.counters.CycleCounters.checkpoint`, the read-only
    measurement primitive — the tracer never writes a counter.
    """

    __slots__ = ("_tracer", "_span", "_cm", "_cp")

    def __init__(self, tracer: Tracer, name: str, attrs: dict):
        self._tracer = tracer
        self._span = Span(name, attrs)
        self._cm = None
        self._cp = None

    def __enter__(self) -> Span:
        t = self._tracer
        span = self._span
        span.start = t._now()
        if t._stack:
            t._stack[-1].children.append(span)
        else:
            t.roots.append(span)
        t._stack.append(span)
        if t._counters is not None:
            self._cm = t._counters.checkpoint()
            self._cp = self._cm.__enter__()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        t = self._tracer
        span = self._span
        if self._cm is not None:
            self._cm.__exit__(exc_type, exc, tb)
            span.counters = self._cp.delta or {}
        span.end = t._now()
        if t._stack and t._stack[-1] is span:
            t._stack.pop()
        return False
