"""Exportable run profiles: serialisable span trees plus metadata.

A :class:`RunProfile` freezes what a :class:`~repro.telemetry.spans.Tracer`
recorded for one run — the span tree, the run's counter totals and
free-form metadata (architecture, grid size, destination, ...) — and
exports it two ways:

* **native JSON** (``repro-profile-v1``), the schema
  ``docs/observability.md`` documents; round-trips through
  :meth:`RunProfile.to_jsonable`/:meth:`RunProfile.from_jsonable` and
  plugs into :mod:`repro.analysis.store` so profiles diff across runs
  exactly like experiment tables do;
* **Chrome ``trace_event`` JSON** (:meth:`RunProfile.to_chrome_trace`),
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev — every span
  becomes a complete ("X") event whose ``args`` carry its counter deltas.

:func:`phase_table` renders the per-phase cost breakdown the CLI's
``python -m repro profile`` prints: **exclusive** (self) counter
attribution per span name, so the table's rows sum exactly to the run
totals — the property that lets the breakdown substantiate the paper's
O(p·h) claim phase by phase.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.errors import ReproError
from repro.metrics.tables import Table
from repro.telemetry.spans import Span, Tracer

__all__ = [
    "PROFILE_FORMAT",
    "RunProfile",
    "phase_table",
    "aggregate_phases",
    "save_profile",
    "load_profile",
    "compare_profiles",
]

PROFILE_FORMAT = "repro-profile-v1"

#: Counter columns shown by :func:`phase_table`, in display order.
_TABLE_COUNTERS = ("instructions", "alu_ops", "bus_cycles", "bit_cycles")


@dataclass
class RunProfile:
    """One run's telemetry: metadata + span tree + counter totals."""

    meta: dict = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_tracer(cls, tracer: Tracer, **meta) -> "RunProfile":
        """Freeze a tracer's recorded roots into a profile.

        ``counters`` totals are the sum of the root spans' inclusive
        deltas — i.e. exactly what the run accumulated while traced.
        """
        totals: dict[str, int] = {}
        for root in tracer.roots:
            for k, v in root.counters.items():
                totals[k] = totals.get(k, 0) + v
        meta.setdefault("recorded_at", time.strftime("%Y-%m-%dT%H:%M:%S"))
        return cls(meta=dict(meta), spans=list(tracer.roots), counters=totals)

    # -- traversal -------------------------------------------------------

    def walk(self) -> Iterable[Span]:
        for root in self.spans:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All spans in the profile with the given name."""
        return [s for s in self.walk() if s.name == name]

    # -- native JSON -----------------------------------------------------

    def to_jsonable(self) -> dict:
        return {
            "format": PROFILE_FORMAT,
            "meta": dict(self.meta),
            "counters": dict(self.counters),
            "spans": [s.to_jsonable() for s in self.spans],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "RunProfile":
        if data.get("format") not in (None, PROFILE_FORMAT):
            raise ReproError(
                f"not a {PROFILE_FORMAT} payload "
                f"(format = {data.get('format')!r})"
            )
        return cls(
            meta=dict(data.get("meta", {})),
            spans=[Span.from_jsonable(s) for s in data.get("spans", [])],
            counters={k: int(v) for k, v in data.get("counters", {}).items()},
        )

    # -- Chrome trace_event ---------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The profile as Chrome ``trace_event`` JSON (object format).

        Spans become complete ("X") duration events on one pid/tid;
        timestamps and durations are microseconds as the format requires.
        Load the written file in ``chrome://tracing`` or Perfetto.
        """
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"name": self.meta.get("arch", "repro")},
            }
        ]
        for span in self.walk():
            args: dict = dict(span.attrs)
            args.update(span.counters)
            if span.opcodes:
                args["opcodes"] = dict(span.opcodes)
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": round(span.start * 1e6, 3),
                    "dur": round(span.duration * 1e6, 3),
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": dict(self.meta),
        }


# ---------------------------------------------------------------------------
# Aggregation / rendering
# ---------------------------------------------------------------------------


def aggregate_phases(profile: RunProfile) -> dict[str, dict[str, int]]:
    """Exclusive counter totals per span name.

    Returns ``{name: {"spans": count, <counter>: total, ...}}`` where the
    counter totals use each span's *self* attribution, so summing over all
    names reproduces the run totals exactly (no double counting of nested
    spans).
    """
    agg: dict[str, dict[str, int]] = {}
    for span in profile.walk():
        bucket = agg.setdefault(span.name, {"spans": 0})
        bucket["spans"] += 1
        for k, v in span.self_counters.items():
            bucket[k] = bucket.get(k, 0) + v
    return agg


def phase_table(profile: RunProfile, *, title: str | None = None) -> Table:
    """Per-phase cost breakdown as a :class:`~repro.metrics.tables.Table`.

    One row per span name (exclusive attribution) plus a ``(total)`` row
    that equals the run's counter totals — asserted equal in tests, so the
    table is a partition of the measured cost, not an estimate.
    """
    agg = aggregate_phases(profile)
    meta = profile.meta
    if title is None:
        bits = [meta.get("arch", "?"), f"n={meta.get('n', '?')}"]
        if "d" in meta:
            bits.append(f"d={meta['d']}")
        title = f"Per-phase cost breakdown ({', '.join(map(str, bits))})"
    table = Table(title, ["phase", "spans", *_TABLE_COUNTERS])
    for name in sorted(agg):
        bucket = agg[name]
        table.add_row(
            name, bucket["spans"], *(bucket.get(k, 0) for k in _TABLE_COUNTERS)
        )
    table.add_row(
        "(total)",
        sum(b["spans"] for b in agg.values()),
        *(profile.counters.get(k, 0) for k in _TABLE_COUNTERS),
    )
    table.note(
        "exclusive attribution: each row counts only cycles spent outside "
        "nested spans; rows sum exactly to (total)"
    )
    return table


# ---------------------------------------------------------------------------
# Persistence / diffing
# ---------------------------------------------------------------------------


def save_profile(
    profile: RunProfile, path: str | Path, *, trace_format: str = "json"
) -> None:
    """Write *profile* to *path* as native JSON or Chrome trace JSON."""
    if trace_format == "json":
        payload = profile.to_jsonable()
    elif trace_format == "chrome":
        payload = profile.to_chrome_trace()
    else:
        raise ReproError(
            f"unknown trace format {trace_format!r} (expected json|chrome)"
        )
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_profile(path: str | Path) -> RunProfile:
    """Load a native-JSON profile written by :func:`save_profile`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"profile file not found: {path}")
    payload = json.loads(path.read_text())
    if payload.get("format") != PROFILE_FORMAT:
        raise ReproError(
            f"{path} is not a {PROFILE_FORMAT} file "
            f"(format = {payload.get('format')!r})"
        )
    return RunProfile.from_jsonable(payload)


def compare_profiles(old: RunProfile, new: RunProfile) -> list[str]:
    """Per-phase differences between two profiles, as human-readable lines.

    Compares the aggregated exclusive counters per phase (wall-times are
    host-dependent and deliberately ignored); empty list = no drift.
    """
    diffs: list[str] = []
    a, b = aggregate_phases(old), aggregate_phases(new)
    for name in sorted(set(a) | set(b)):
        if name not in a:
            diffs.append(f"{name}: only in the new profile")
            continue
        if name not in b:
            diffs.append(f"{name}: only in the old profile")
            continue
        keys = sorted(set(a[name]) | set(b[name]))
        for k in keys:
            va, vb = a[name].get(k, 0), b[name].get(k, 0)
            if va != vb:
                diffs.append(f"{name}.{k}: {va} -> {vb}")
    for k in sorted(set(old.counters) | set(new.counters)):
        va, vb = old.counters.get(k, 0), new.counters.get(k, 0)
        if va != vb:
            diffs.append(f"(total).{k}: {va} -> {vb}")
    return diffs
