"""Telemetry: structured span tracing and exportable run profiles.

The observability layer of the reproduction. Every machine —
:class:`~repro.ppa.machine.PPAMachine`, the three comparator baselines and
the RMESH — carries a :class:`Tracer` on its ``telemetry`` attribute,
disabled by default. The core algorithms are instrumented with nested
spans (per DP iteration → per primitive → per bit-slice), each snapshotting
:class:`~repro.ppa.counters.CycleCounters` deltas at entry/exit, so a
traced run yields an exact per-phase partition of its cycle totals.

Quickstart
----------
>>> from repro import PPAMachine, PPAConfig, minimum_cost_path
>>> from repro.telemetry import RunProfile, phase_table
>>> machine = PPAMachine(PPAConfig(n=8))
>>> machine.telemetry.enable()
>>> _ = minimum_cost_path(machine, W, d=0)            # doctest: +SKIP
>>> profile = RunProfile.from_tracer(machine.telemetry, arch="ppa", n=8)
>>> print(phase_table(profile).render())              # doctest: +SKIP

Zero-overhead guarantee: spans only *read* counters (via
``CycleCounters.checkpoint``), so counter totals are bit-identical whether
tracing is enabled, disabled, or this package is never imported — the CI
guard in ``tests/telemetry/test_attribution.py`` enforces it.

See ``docs/observability.md`` for the span API, the profile JSON schema
and how to open an exported trace in ``chrome://tracing``/Perfetto.
"""

from repro.telemetry.spans import NULL_SPAN, Span, Tracer
from repro.telemetry.profile import (
    PROFILE_FORMAT,
    RunProfile,
    aggregate_phases,
    compare_profiles,
    load_profile,
    phase_table,
    save_profile,
)

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "PROFILE_FORMAT",
    "RunProfile",
    "aggregate_phases",
    "compare_profiles",
    "load_profile",
    "phase_table",
    "save_profile",
]
