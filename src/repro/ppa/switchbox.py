"""Switch-box configurations and validation helpers.

Each PE owns one switch-box per bus set. The paper's Section 2 allows two
configurations:

``OPEN``
    The switch disconnects the two bus stubs traversing the node and wires
    the PE itself onto the *downstream* stub: the PE injects its value into
    the bus and receives whatever the *upstream* segment carries.

``SHORT``
    The switch shorts the two stubs together: data passes through and the
    PE cannot inject (it can still *listen*).

A switch *plane* is a boolean grid, one flag per PE, where ``True`` means
``OPEN``. Planes come either from explicit boolean arrays or from comparing
index grids (``ROW == d`` style conditions), exactly as in Polymorphic
Parallel C where the third argument of ``broadcast`` is a parallel logical
variable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MachineError

__all__ = ["OPEN", "SHORT", "as_switch_plane"]

OPEN: bool = True
SHORT: bool = False


def as_switch_plane(
    L, shape: tuple[int, int], *, lanes: int | None = None
) -> np.ndarray:
    """Coerce *L* into a boolean ``shape`` switch plane.

    Parameters
    ----------
    L
        Anything convertible to a boolean numpy array: a boolean grid, an
        integer 0/1 grid, or a scalar (uniform configuration).
    shape
        Expected ``(rows, cols)`` grid shape.
    lanes
        When the machine carries a batch (lane) axis, the lane count.
        A 3-D ``L`` is then coerced to ``(lanes, rows, cols)`` — one
        switch plane per lane. A 2-D/scalar ``L`` still yields a plain
        ``shape`` plane: a *shared* plane that the bus kernels apply to
        every lane with a single cached plan (the fast path).

    Returns
    -------
    numpy.ndarray
        A C-contiguous boolean array of exactly ``shape`` (shared plane)
        or ``(lanes, *shape)`` (per-lane plane stack).

    Raises
    ------
    MachineError
        If *L* cannot be broadcast to the target shape.
    """
    plane = np.asarray(L)
    if plane.dtype != np.bool_:
        plane = plane.astype(bool)
    target: tuple[int, ...] = tuple(shape)
    if lanes is not None and plane.ndim == 3:
        target = (lanes, *shape)
    if plane.shape != target:
        try:
            plane = np.broadcast_to(plane, target)
        except ValueError as exc:
            raise MachineError(
                f"switch plane of shape {np.asarray(L).shape} does not match "
                f"machine grid {target}"
            ) from exc
    return np.ascontiguousarray(plane)
