"""The PPA machine facade.

:class:`PPAMachine` is the single object algorithms program against. It
bundles

* the grid geometry and index planes (``ROW``/``COL``),
* the activity-mask stack backing PPC's ``where``/``elsewhere``,
* the bus primitives (``broadcast``, ``bus_or``/``bus_reduce``, ``shift``,
  ``global_or``) with cycle accounting,
* saturating word arithmetic helpers honouring the machine word width,
* a :class:`~repro.ppa.memory.ParallelMemory` variable table.

Primitives always *compute over the full grid*: in the PPA the switch
settings come from the instruction's ``L`` operand, not from the activity
mask, so an inactive PE still drives the bus if ``L`` marks it Open. The
mask only gates *stores* (:meth:`store`), exactly as ``where`` gates
assignment in Polymorphic Parallel C.

Batched (lane) execution
------------------------
``PPAMachine(config, batch=B)`` models ``B`` *independent* copies of the
same physical array running the same instruction stream — the SIMD lever
for multi-destination MCP, APSP and parameter sweeps. Parallel variables
become ``(B, n, n)`` stacks, switch planes may be shared ``(n, n)`` or
per-lane ``(B, n, n)``, and every bus primitive resolves all lanes in one
vectorised pass (see :mod:`repro.ppa.segments`).

Counters keep **two books**. The scalar :class:`CycleCounters` price the
*batched* instruction stream: one broadcast instruction is one broadcast,
however many lanes it serves (that is the point of batching). The
:class:`LaneCounters` plane prices each lane as if it ran *serially*:
every charge is replicated into each lane's ledger, but only for lanes in
the current *lane mask* (:meth:`set_active_lanes`) — a converged lane
stops accruing cost, which is what makes per-lane totals bit-identical to
independent serial runs.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.errors import (
    BusConflictError,
    ConfigurationError,
    MaskError,
    WordWidthError,
)
from repro.ppa.bus import BusTrace
from repro.ppa.faults import FaultPlan
from repro.ppa.counters import CycleCounters, LaneCounters
from repro.ppa.directions import Direction
from repro.ppa.memory import ParallelMemory
from repro.ppa.segments import (
    ReduceOp,
    broadcast_values,
    invalidate_stack_digest,
    segmented_reduce,
    shift_values,
)
from repro.ppa.switchbox import as_switch_plane
from repro.ppa.topology import PPAConfig
from repro.telemetry.spans import Tracer

__all__ = ["PPAMachine", "check_broadcast_conflicts"]

_RING_SENTINEL = np.int64(1) << 62


def check_broadcast_conflicts(src, plane, direction: Direction) -> None:
    """Dynamic bus-race detector for one broadcast transaction.

    Flags rings where **two or more** Open drivers inject *disagreeing*
    values. Rationale (see docs/static-analysis.md):

    * one Open per ring — the intended single-writer broadcast; fine.
    * all nodes Open — the identity configuration (every PE is its own
      cluster head); fine by construction.
    * several Opens, **all injecting the same value** — the paper's
      ``min()`` survivor idiom: after the bit-serial elimination every
      surviving driver holds the cluster minimum, so the multi-driver
      broadcast is deterministic. Fine.
    * several Opens with differing values — the program's answer now
      depends on which driver each PE happens to sit downstream of:
      a genuine write race on the physical bus. Raises
      :class:`~repro.errors.BusConflictError`.

    Rings with *zero* Open drivers are the province of the existing
    ``strict_bus`` machine mode (an undriven ring may legitimately float
    when its result is never stored, as in ``selected_min`` on row ``d``
    of the MCP listing), so they are not reported here.

    Works on ``(n, n)`` grids and batched ``(B, n, n)`` stacks alike;
    *src* and *plane* broadcast against each other.
    """
    src_a = np.asarray(src)
    if src_a.dtype == np.bool_:
        src_a = src_a.astype(np.int64)
    vals, opens = np.broadcast_arrays(src_a, np.asarray(plane, dtype=bool))
    if direction.axis == 0:
        # Rings run along axis 0 (columns); canonicalise onto last axis.
        vals = np.swapaxes(vals, -1, -2)
        opens = np.swapaxes(opens, -1, -2)
    ring_len = opens.shape[-1]
    n_open = opens.sum(axis=-1)
    multi = (n_open >= 2) & (n_open < ring_len)
    if not multi.any():
        return
    lo = np.where(opens, vals, _RING_SENTINEL).min(axis=-1)
    hi = np.where(opens, vals, -_RING_SENTINEL).max(axis=-1)
    bad = multi & (lo != hi)
    if not bad.any():
        return
    where = np.argwhere(bad)[0]
    ring = int(where[-1])
    lane = f" (lane {int(where[0])})" if bad.ndim == 2 else ""
    axis_name = "column" if direction.axis == 0 else "row"
    raise BusConflictError(
        f"bus write race: broadcast {direction} drives {axis_name} {ring}"
        f"{lane} from {int(n_open[tuple(where)])} Open PEs holding "
        f"disagreeing values [{int(lo[tuple(where)])}, "
        f"{int(hi[tuple(where)])}]"
    )


class PPAMachine:
    """Simulator of one ``n x n`` Polymorphic Processor Array."""

    def __init__(
        self,
        config: PPAConfig | int,
        *,
        trace: bool = False,
        batch: int | None = None,
        check_bus_conflicts: bool = False,
    ):
        if isinstance(config, int):
            config = PPAConfig(n=config)
        if batch is not None and batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        self.config = config
        self.batch = batch
        #: dynamic bus-race detection: every broadcast transaction is
        #: screened by :func:`check_broadcast_conflicts` (the runtime
        #: counterpart of the static detector in :mod:`repro.verify`, for
        #: the switch planes static analysis cannot decide). Off by
        #: default — the check reads the plane but never moves a counter.
        self.check_bus_conflicts = check_bus_conflicts
        self.counters = CycleCounters()
        #: per-lane serial-equivalent cost ledger (batched machines only)
        self.lane_counters: LaneCounters | None = (
            LaneCounters(batch) if batch is not None else None
        )
        self._lane_mask: np.ndarray | None = None
        self.memory = ParallelMemory(self.parallel_shape)
        self.trace = BusTrace()
        self.trace.enabled = trace
        #: span tracer (see :mod:`repro.telemetry`); disabled by default —
        #: a disabled tracer neither allocates nor reads the clock, and an
        #: enabled one only *reads* counters, so counter totals are
        #: identical either way.
        self.telemetry = Tracer(self.counters)
        n = config.n
        self._row = np.repeat(
            np.arange(n, dtype=np.int64)[:, None], n, axis=1
        )
        self._col = self._row.T.copy()
        self._mask_stack: list[np.ndarray] = []
        self._faults: FaultPlan | None = None

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Grid side length."""
        return self.config.n

    @property
    def shape(self) -> tuple[int, int]:
        return self.config.shape

    @property
    def parallel_shape(self) -> tuple[int, ...]:
        """Shape of a parallel variable: ``(n, n)``, or ``(B, n, n)`` when
        the machine carries a batch (lane) axis."""
        if self.batch is None:
            return self.config.shape
        return (self.batch, *self.config.shape)

    @property
    def word_bits(self) -> int:
        """Machine word width ``h``."""
        return self.config.word_bits

    @property
    def maxint(self) -> int:
        """The ``MAXINT`` infinity sentinel (all-ones word)."""
        return self.config.maxint

    @property
    def row_index(self) -> np.ndarray:
        """Read-only ``ROW`` index plane (``row_index[i, j] == i``)."""
        return self._row.copy()

    @property
    def col_index(self) -> np.ndarray:
        """Read-only ``COL`` index plane (``col_index[i, j] == j``)."""
        return self._col.copy()

    # ------------------------------------------------------------------
    # Activity masks (PPC where/elsewhere)
    # ------------------------------------------------------------------

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean grid of currently active PEs (all-True outside ``where``).

        On a batched machine the innermost ``where`` condition may be a
        shared ``(n, n)`` plane or a per-lane ``(B, n, n)`` stack; the
        returned copy has whichever shape is on top of the stack.
        """
        if not self._mask_stack:
            return np.ones(self.parallel_shape, dtype=bool)
        return self._mask_stack[-1].copy()

    @contextmanager
    def where(self, condition):
        """Restrict stores to PEs satisfying *condition* (nests by AND)."""
        cond = as_switch_plane(condition, self.shape, lanes=self.batch)
        if self._mask_stack:
            cond = cond & self._mask_stack[-1]
        self._mask_stack.append(cond)
        try:
            yield self
        finally:
            self._mask_stack.pop()

    @contextmanager
    def elsewhere(self, condition):
        """Complement of :meth:`where`: restrict to PEs *failing* condition
        (still intersected with the enclosing mask)."""
        with self.where(
            ~as_switch_plane(condition, self.shape, lanes=self.batch)
        ):
            yield self

    def store(self, dest: np.ndarray, value) -> np.ndarray:
        """Masked in-place store ``dest <- value`` on active PEs.

        Returns *dest* for chaining. Outside any ``where`` the store is a
        plain full-grid assignment. Batched machines store per-lane stacks
        the same way; the ``where`` mask broadcasts across lanes when it is
        a shared plane.
        """
        value = np.broadcast_to(np.asarray(value, dtype=dest.dtype), dest.shape)
        if self._mask_stack:
            np.copyto(dest, value, where=self._mask_stack[-1])
        else:
            dest[...] = value
        # Writeback invalidation for the per-lane stack digest memo: if
        # this array was ever presented as a (B, n, n) switch stack its
        # memoized content digest is now stale.
        invalidate_stack_digest(dest)
        self.count_alu()
        return dest

    def new_parallel(self, init=0, dtype=np.int64) -> np.ndarray:
        """Allocate an anonymous parallel value (full-grid array, one layer
        per lane on a batched machine)."""
        return np.full(self.parallel_shape, init, dtype=dtype)

    # ------------------------------------------------------------------
    # Lane management (batched machines)
    # ------------------------------------------------------------------

    def _require_batched(self, what: str) -> int:
        if self.batch is None:
            raise MaskError(f"{what} requires a batched machine (batch=B)")
        return self.batch

    def set_active_lanes(self, mask) -> None:
        """Select which lanes accrue :attr:`lane_counters` charges.

        ``None`` re-activates every lane. The mask only gates the per-lane
        *cost ledger* — the SIMD datapath always computes all lanes; callers
        freeze converged lanes' state themselves (convergence masking).
        """
        batch = self._require_batched("set_active_lanes")
        if mask is None:
            self._lane_mask = None
            return
        m = np.asarray(mask, dtype=bool)
        if m.shape != (batch,):
            raise MaskError(
                f"lane mask shape {m.shape} does not match batch ({batch},)"
            )
        self._lane_mask = m.copy()

    @property
    def active_lanes(self) -> np.ndarray:
        """Boolean ``(B,)`` vector of lanes currently accruing cost."""
        batch = self._require_batched("active_lanes")
        if self._lane_mask is None:
            return np.ones(batch, dtype=bool)
        return self._lane_mask.copy()

    def lanes(self, batch: int) -> "PPAMachine":
        """A batched *view* of this (unbatched) machine.

        The view is a fresh ``PPAMachine`` with a lane axis that **shares**
        this machine's scalar counters, telemetry tracer, bus trace and
        fault plan — so a batched kernel run through the view is attributed
        to the caller's profile exactly like a serial run would be. Memory
        and lane counters are the view's own.
        """
        if self.batch is not None:
            raise MaskError("lanes() requires an unbatched machine")
        view = PPAMachine(
            self.config,
            batch=batch,
            check_bus_conflicts=self.check_bus_conflicts,
        )
        view.counters = self.counters
        view.telemetry = self.telemetry
        view.trace = self.trace
        view._faults = self._faults
        return view

    def _charge(self, **inc: int) -> None:
        """Add *inc* to the scalar counters and, on a batched machine, to
        every lane's ledger currently selected by the lane mask."""
        c = self.counters
        for name, value in inc.items():
            setattr(c, name, getattr(c, name) + value)
        if self.lane_counters is not None:
            self.lane_counters.add(inc, self._lane_mask)

    def apply_counter_delta(self, delta: dict) -> None:
        """Charge a pre-computed counter delta in one shot.

        Used by the fused engine (:mod:`repro.engine`) to *replay* the
        exact per-phase cost of a cycle-engine run without issuing the
        individual bus transactions. The delta lands on the scalar book
        and — on a batched machine — on every lane selected by the current
        lane mask, exactly like organic per-primitive charges do.
        """
        self._charge(**delta)

    # ------------------------------------------------------------------
    # Bus primitives
    # ------------------------------------------------------------------

    def broadcast(self, src, direction: Direction, L) -> np.ndarray:
        """One bus broadcast: every PE receives the value injected by its
        cluster head — the nearest Open node (per *L*) at-or-upstream on its
        ring, itself included when its own switch is Open.

        ``L`` follows the PPC convention: ``True``/1 means Open.
        """
        plane = self._effective_plane(
            as_switch_plane(L, self.shape, lanes=self.batch), direction
        )
        src = np.asarray(src)
        if self.check_bus_conflicts:
            check_broadcast_conflicts(src, plane, direction)
        out = broadcast_values(
            src,
            plane,
            direction,
            strict=self.config.strict_bus,
            stats=self.counters.plan_cache,
        )
        cycles = self.config.bus_transaction_cycles()
        self._charge(
            instructions=1,
            broadcasts=1,
            bus_cycles=cycles,
            bit_cycles=cycles * self._operand_bits(src),
        )
        self.trace.record("broadcast", direction, plane)
        return self._corrupt(out, direction)

    def bus_reduce(
        self,
        values,
        direction: Direction,
        L,
        op: ReduceOp,
        *,
        bits: int | None = None,
    ) -> np.ndarray:
        """Cluster-wide reduction delivered to every cluster member.

        Models the constant-time wired-OR of the reconfigurable bus (and its
        AND/min/max/sum generalisations used by ablation variants). ``bits``
        overrides the width charged to ``bit_cycles`` — e.g. the
        digit-serial minimum drives ``2**k - 1`` presence lanes per
        transaction instead of a full word.
        """
        plane = self._effective_plane(
            as_switch_plane(L, self.shape, lanes=self.batch), direction
        )
        values = np.asarray(values)
        out = segmented_reduce(
            values,
            plane,
            direction,
            op,
            strict=self.config.strict_bus,
            stats=self.counters.plan_cache,
        )
        cycles = self.config.bus_transaction_cycles()
        self._charge(
            instructions=1,
            reductions=1,
            bus_cycles=cycles,
            bit_cycles=cycles
            * (self._operand_bits(values) if bits is None else bits),
        )
        self.trace.record("reduce", direction, plane)
        return self._corrupt(out, direction)

    def bus_or(self, bits, direction: Direction, L) -> np.ndarray:
        """Wired-OR of 1-bit values within each cluster (boolean result)."""
        bits = np.asarray(bits, dtype=bool)
        return self.bus_reduce(bits, direction, L, "or").astype(bool)

    def shift(
        self, src, direction: Direction, *, fill=0, torus: bool | None = None
    ) -> np.ndarray:
        """Nearest-neighbour shift of *src* downstream along *direction*.

        ``torus`` overrides the machine's wrap-around setting for this one
        shift: edge PEs can always be fed a boundary value (*fill*) by the
        controller instead of the wrapped neighbour — image algorithms use
        this to keep opposite borders non-adjacent.
        """
        src = np.asarray(src)
        out = shift_values(
            src,
            direction,
            torus=self.config.torus if torus is None else torus,
            fill=fill,
        )
        self._charge(
            instructions=1,
            shifts=1,
            bus_cycles=1,
            bit_cycles=self._operand_bits(src),
        )
        return out

    def global_or(self, bits) -> bool:
        """Controller-visible OR over the whole array.

        Realised on hardware as a row wired-OR followed by a column
        wired-OR into the controller's condition flag; charged as two bus
        transactions.
        """
        cycles = 2 * self.config.bus_transaction_cycles()
        self._charge(
            instructions=1, global_ors=1, bus_cycles=cycles, bit_cycles=cycles
        )
        self.trace.record("global_or", None, None)
        return bool(np.asarray(bits, dtype=bool).any())

    def lane_global_or(self, bits) -> np.ndarray:
        """Per-lane controller OR: a ``(B,)`` boolean vector.

        Each lane is an independent copy of the physical array, so the
        condition flag exists per lane; cost is identical to
        :meth:`global_or` (one row + one column wired-OR), charged once to
        the batched stream and once to each *active* lane's ledger.
        """
        batch = self._require_batched("lane_global_or")
        arr = np.broadcast_to(
            np.asarray(bits, dtype=bool), self.parallel_shape
        )
        cycles = 2 * self.config.bus_transaction_cycles()
        self._charge(
            instructions=1, global_ors=1, bus_cycles=cycles, bit_cycles=cycles
        )
        self.trace.record("global_or", None, None)
        return arr.reshape(batch, -1).any(axis=1)

    # ------------------------------------------------------------------
    # Word arithmetic
    # ------------------------------------------------------------------

    def _operand_bits(self, arr: np.ndarray) -> int:
        """Width of one bus transfer: 1 for boolean planes (the bit-serial
        wired-OR case), the machine word otherwise."""
        return 1 if arr.dtype == np.bool_ else self.word_bits

    def count_alu(self, k: int = 1) -> None:
        """Charge *k* local (per-PE, fully parallel) ALU instructions."""
        self._charge(instructions=k, alu_ops=k)

    def sat_add(self, a, b) -> np.ndarray:
        """Saturating word addition: ``min(a + b, MAXINT)``.

        ``MAXINT`` absorbs, so "infinity plus anything is infinity" holds
        for the shortest-path sentinel.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = np.minimum(a + b, self.maxint)
        self.count_alu()
        return out

    def check_word(self, values, what: str = "value") -> np.ndarray:
        """Validate that *values* fit the machine word; returns int64 copy."""
        arr = np.asarray(values, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() > self.maxint):
            raise WordWidthError(
                f"{what} outside [0, {self.maxint}] for word_bits="
                f"{self.word_bits}: range [{arr.min()}, {arr.max()}]"
            )
        return arr.copy()

    def bit(self, src, j: int) -> np.ndarray:
        """Parallel ``bit(x, j)``: boolean plane of bit *j* of *src*."""
        if not (0 <= j < self.word_bits):
            raise WordWidthError(
                f"bit index {j} outside word of {self.word_bits} bits"
            )
        self.count_alu()
        return (np.asarray(src, dtype=np.int64) >> j) & 1 == 1

    # ------------------------------------------------------------------

    def require_square_fit(self, size: int) -> None:
        """Raise unless a ``size x size`` problem fits this grid exactly."""
        if size != self.n:
            raise MaskError(
                f"problem of size {size} requires an {size}x{size} machine; "
                f"this machine is {self.n}x{self.n}"
            )

    # ------------------------------------------------------------------
    # Fault injection (see repro.ppa.faults)
    # ------------------------------------------------------------------

    def inject_faults(self, plan: FaultPlan) -> None:
        """Attach a :class:`FaultPlan`; every subsequent bus transaction
        sees the stuck-at switches instead of the programmed plane."""
        plan.validate(self.shape, self.word_bits)
        self._faults = plan

    def clear_faults(self) -> None:
        self._faults = None

    @property
    def fault_plan(self) -> FaultPlan | None:
        return self._faults

    def _effective_plane(self, plane: np.ndarray, direction: Direction) -> np.ndarray:
        if self._faults is None:
            return plane
        return self._faults.effective_plane(plane, direction.axis)

    def _corrupt(self, out: np.ndarray, direction: Direction) -> np.ndarray:
        """Apply this transaction's transient bit-flips (if any) to the
        received values. Width is the operand width actually driven on the
        bus, so flips above a 1-bit wired-OR transfer are no-ops."""
        if self._faults is None:
            return out
        return self._faults.corrupt(
            out, direction.axis, width=self._operand_bits(out)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lanes = "" if self.batch is None else f", batch={self.batch}"
        return (
            f"PPAMachine(n={self.n}, word_bits={self.word_bits}, "
            f"cost={self.config.bus_cost_model.value}{lanes})"
        )
