"""Bus self-test: localise faulty switch-boxes from the controller.

Three bus transactions per bus axis suffice to name every stuck-at switch
(:mod:`repro.ppa.faults`), because the broadcast semantics make the fault
observable as a *value*:

1. **All-Open probe** — program every switch Open and broadcast the ring
   index plane. A healthy node is its own cluster head and reads its own
   index; a ``STUCK_SHORT`` node cannot drive the bus and reads its
   upstream neighbour's index instead. Every mismatching node is stuck
   short.

2. **Two adaptive single-head probes** — program one Open switch per ring,
   at the two smallest positions *not* found stuck short by probe 1
   (adaptive head placement: a dead head would void the probe), and
   broadcast the index plane again. A healthy ring reads the head's index
   everywhere; a ``STUCK_OPEN`` switch forms an unprogrammed cluster head
   and every differing value read *names the faulty position directly*.
   Two distinct heads per ring guarantee each position is probed by at
   least one pass whose head sits elsewhere — including the heads
   themselves.

Honest blind spots, reported as ``undiagnosable_rings`` rather than
guessed at: a ring with fewer than two non-stuck-short switches cannot
host two probe heads, and a ring that echoes the identity pattern under a
single-head probe has no working head at all (e.g. every switch stuck
short — which probe 1 cannot see either, since an all-Short ring is
electrically identical to a healthy all-Open one carrying per-node
values).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ppa.directions import Direction
from repro.ppa.faults import FaultKind, SwitchFault
from repro.ppa.machine import PPAMachine

__all__ = ["SelfTestReport", "diagnose_switches"]

_AXIS_DIRECTION = {0: Direction.SOUTH, 1: Direction.EAST}


@dataclass(frozen=True)
class SelfTestReport:
    """Outcome of one full diagnostic sweep."""

    faults: tuple[SwitchFault, ...]
    undiagnosable_rings: tuple[tuple[int, int], ...] = ()
    transactions: int = 0

    @property
    def healthy(self) -> bool:
        return not self.faults and not self.undiagnosable_rings

    def stuck_short(self) -> list[SwitchFault]:
        return [f for f in self.faults if f.kind is FaultKind.STUCK_SHORT]

    def stuck_open(self) -> list[SwitchFault]:
        return [f for f in self.faults if f.kind is FaultKind.STUCK_OPEN]


def _ring_index(machine: PPAMachine, axis: int) -> np.ndarray:
    """Per-node position along its ring for the given bus axis."""
    return machine.row_index if axis == 0 else machine.col_index


def _fault_coords(axis: int, ring: int, pos: int) -> tuple[int, int]:
    return (pos, ring) if axis == 0 else (ring, pos)


def _diagnose_axis(
    machine: PPAMachine, axis: int
) -> tuple[list[SwitchFault], list[tuple[int, int]]]:
    n = machine.n
    direction = _AXIS_DIRECTION[axis]
    idx = _ring_index(machine, axis)

    # Probe 1: all-Open -> stuck-short switches read a neighbour instead of
    # themselves.
    received = machine.broadcast(idx, direction, np.ones(machine.shape, bool))
    short_mask = received != idx
    faults: list[SwitchFault] = []
    shorts_by_ring: dict[int, set[int]] = {ring: set() for ring in range(n)}
    for r, c in zip(*np.nonzero(short_mask)):
        faults.append(SwitchFault(int(r), int(c), FaultKind.STUCK_SHORT, axis))
        ring, pos = (int(c), int(r)) if axis == 0 else (int(r), int(c))
        shorts_by_ring[ring].add(pos)

    # Choose two healthy head positions per ring for the stuck-open probes.
    heads: dict[int, list[int]] = {}
    undiagnosable: list[tuple[int, int]] = []
    for ring in range(n):
        healthy = [p for p in range(n) if p not in shorts_by_ring[ring]]
        if len(healthy) < 2:
            undiagnosable.append((axis, ring))
            heads[ring] = healthy[:1] * 2  # still probe what we can
        else:
            heads[ring] = healthy[:2]

    observed_opens: dict[int, set[int]] = {ring: set() for ring in range(n)}
    dead_head_rings: set[int] = set()
    for probe in (0, 1):
        plane = np.zeros(machine.shape, dtype=bool)
        head_of_ring = np.zeros(n, dtype=np.int64)
        for ring in range(n):
            if heads[ring]:
                head_of_ring[ring] = heads[ring][probe]
                r, c = _fault_coords(axis, ring, heads[ring][probe])
                plane[r, c] = True
        received = machine.broadcast(idx, direction, plane)
        per_ring = received if axis == 1 else received.T
        idx_ring = idx if axis == 1 else idx.T
        for ring in range(n):
            if not heads[ring]:
                continue
            row = per_ring[ring]
            if n > 1 and np.array_equal(row, idx_ring[ring]):
                # identity echo: no working head drove the ring
                dead_head_rings.add(ring)
                continue
            head = int(head_of_ring[ring])
            extra = set(int(v) for v in np.unique(row)) - {head}
            observed_opens[ring] |= extra

    for ring in sorted(dead_head_rings):
        if (axis, ring) not in undiagnosable:
            undiagnosable.append((axis, ring))
        observed_opens[ring] = set()

    for ring in range(n):
        for pos in sorted(observed_opens[ring]):
            r, c = _fault_coords(axis, ring, pos)
            faults.append(SwitchFault(r, c, FaultKind.STUCK_OPEN, axis))
    return faults, undiagnosable


def diagnose_switches(machine: PPAMachine) -> SelfTestReport:
    """Run the full 6-transaction diagnostic on *machine*.

    Returns every localisable stuck-at switch fault (kind, coordinates and
    bus axis). Probe patterns go through the machine's normal ``broadcast``
    path, so an attached :class:`~repro.ppa.faults.FaultPlan` is exactly
    what gets observed.
    """
    before = machine.counters.snapshot()
    faults: list[SwitchFault] = []
    undiagnosable: list[tuple[int, int]] = []
    tele = machine.telemetry
    with tele.span("selftest", n=machine.n):
        for axis in (0, 1):
            with tele.span("selftest.axis", axis=axis):
                f, u = _diagnose_axis(machine, axis)
            faults.extend(f)
            undiagnosable.extend(u)
    spent = machine.counters.diff(before)
    return SelfTestReport(
        faults=tuple(sorted(faults, key=lambda f: (f.axis, f.row, f.col))),
        undiagnosable_rings=tuple(sorted(set(undiagnosable))),
        transactions=spent["bus_cycles"],
    )
