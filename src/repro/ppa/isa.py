"""PPA instruction set architecture.

Reference [2] ("Hardware Support for Fast Reconfigurability in Processor
Arrays") backs the paper's claim that the PPA is buildable; this module
pins that claim down as an executable ISA. The machine is a register
architecture:

* per-PE: 16 word registers ``r0..r15``, a small local memory (LD/ST with
  immediate addresses), and the switch-box driven by the communication
  instructions' ``L`` register operand;
* controller: 8 scalar registers ``s0..s7``, a 1-bit condition flag (set
  by ``gor``), a program counter and an activity-mask stack shared with
  the high-level simulator.

Assembly text is assembled by :mod:`repro.ppa.assembler` and executed by
:mod:`repro.ppa.executor` *through the same* :class:`PPAMachine`
primitives the algorithms use, so instruction streams share the cycle
counters, trace and fault plan — `repro.core.asm_mcp` proves the point by
running the whole MCP as one program with counter parity against the
high-level implementation.

Operand kinds: ``preg`` (r0..r15), ``sreg`` (s0..s7), ``imm`` (integer,
decimal or 0x hex), ``dir`` (NORTH/EAST/SOUTH/WEST), ``label`` (branch
target).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Opcode", "Instruction", "SIGNATURES", "N_PREGS", "N_SREGS"]

N_PREGS = 16
N_SREGS = 8


class Opcode(enum.Enum):
    # parallel data movement / constants
    LDI = "ldi"      # rd, imm          rd <- imm (every PE)
    LDS = "lds"      # rd, s            rd <- scalar register value
    MOV = "mov"      # rd, ra
    ROW = "row"      # rd               rd <- own row index
    COL = "col"      # rd               rd <- own column index
    LD = "ld"        # rd, imm          rd <- local memory[imm]
    ST = "st"        # imm, ra          local memory[imm] <- ra
    # parallel ALU (word semantics; ADD saturates at MAXINT, SUB at 0)
    ADD = "add"      # rd, ra, rb
    SUB = "sub"      # rd, ra, rb
    MUL = "mul"      # rd, ra, rb       saturating word multiply
    DIV = "div"      # rd, ra, rb       floor division (rb == 0 traps)
    MOD = "mod"      # rd, ra, rb       remainder (rb == 0 traps)
    MIN = "min"      # rd, ra, rb
    MAX = "max"      # rd, ra, rb
    AND = "and"      # rd, ra, rb       bitwise
    OR = "or"        # rd, ra, rb       bitwise
    XOR = "xor"      # rd, ra, rb       bitwise
    NOT = "not"      # rd, ra           logical (1 if ra == 0 else 0)
    CMPEQ = "cmpeq"  # rd, ra, rb       0/1
    CMPNE = "cmpne"  # rd, ra, rb
    CMPLT = "cmplt"  # rd, ra, rb
    CMPLE = "cmple"  # rd, ra, rb
    SHLI = "shli"    # rd, ra, imm
    SHRI = "shri"    # rd, ra, imm
    BITI = "biti"    # rd, ra, imm      rd <- bit imm of ra (0/1)
    BITS = "bits"    # rd, ra, s        rd <- bit s of ra (dynamic plane)
    # communication (the switch-box instructions)
    SHIFT = "shift"  # rd, ra, dir
    BCAST = "bcast"  # rd, ra, dir, rL  rL != 0 marks Open
    WOR = "wor"      # rd, ra, dir, rL  cluster wired-OR of (ra != 0)
    # activity mask
    PUSHM = "pushm"  # ra               mask &= (ra != 0)
    POPM = "popm"    #
    # controller
    GOR = "gor"      # ra               flag <- any PE has ra != 0
    SLDI = "sldi"    # s, imm
    SMOV = "smov"    # s, t
    SADDI = "saddi"  # s, imm           s += imm
    JMP = "jmp"      # label
    JNZ = "jnz"      # label            if flag
    JZ = "jz"        # label            if not flag
    SJGE = "sjge"    # s, label         if s >= 0
    SBLT = "sblt"    # s, imm, label    if s < imm
    SBGE = "sbge"    # s, imm, label    if s >= imm
    SBEQ = "sbeq"    # s, imm, label    if s == imm
    SBNE = "sbne"    # s, imm, label    if s != imm
    HALT = "halt"    #


#: operand-kind signature per opcode (order matters)
SIGNATURES: dict[Opcode, tuple[str, ...]] = {
    Opcode.LDI: ("preg", "imm"),
    Opcode.LDS: ("preg", "sreg"),
    Opcode.MOV: ("preg", "preg"),
    Opcode.ROW: ("preg",),
    Opcode.COL: ("preg",),
    Opcode.LD: ("preg", "imm"),
    Opcode.ST: ("imm", "preg"),
    Opcode.ADD: ("preg", "preg", "preg"),
    Opcode.SUB: ("preg", "preg", "preg"),
    Opcode.MUL: ("preg", "preg", "preg"),
    Opcode.DIV: ("preg", "preg", "preg"),
    Opcode.MOD: ("preg", "preg", "preg"),
    Opcode.MIN: ("preg", "preg", "preg"),
    Opcode.MAX: ("preg", "preg", "preg"),
    Opcode.AND: ("preg", "preg", "preg"),
    Opcode.OR: ("preg", "preg", "preg"),
    Opcode.XOR: ("preg", "preg", "preg"),
    Opcode.NOT: ("preg", "preg"),
    Opcode.CMPEQ: ("preg", "preg", "preg"),
    Opcode.CMPNE: ("preg", "preg", "preg"),
    Opcode.CMPLT: ("preg", "preg", "preg"),
    Opcode.CMPLE: ("preg", "preg", "preg"),
    Opcode.SHLI: ("preg", "preg", "imm"),
    Opcode.SHRI: ("preg", "preg", "imm"),
    Opcode.BITI: ("preg", "preg", "imm"),
    Opcode.BITS: ("preg", "preg", "sreg"),
    Opcode.SHIFT: ("preg", "preg", "dir"),
    Opcode.BCAST: ("preg", "preg", "dir", "preg"),
    Opcode.WOR: ("preg", "preg", "dir", "preg"),
    Opcode.PUSHM: ("preg",),
    Opcode.POPM: (),
    Opcode.GOR: ("preg",),
    Opcode.SLDI: ("sreg", "imm"),
    Opcode.SMOV: ("sreg", "sreg"),
    Opcode.SADDI: ("sreg", "imm"),
    Opcode.JMP: ("label",),
    Opcode.JNZ: ("label",),
    Opcode.JZ: ("label",),
    Opcode.SJGE: ("sreg", "label"),
    Opcode.SBLT: ("sreg", "imm", "label"),
    Opcode.SBGE: ("sreg", "imm", "label"),
    Opcode.SBEQ: ("sreg", "imm", "label"),
    Opcode.SBNE: ("sreg", "imm", "label"),
    Opcode.HALT: (),
}


@dataclass(frozen=True)
class Instruction:
    """One assembled instruction.

    ``operands`` holds decoded values in signature order: register numbers
    (int), immediates (int), :class:`~repro.ppa.directions.Direction`
    members, or resolved label addresses (int instruction index).
    """

    opcode: Opcode
    operands: tuple
    line: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ops = ", ".join(str(o) for o in self.operands)
        return f"{self.opcode.value} {ops}".strip()
