"""Machine configuration for the PPA simulator.

The paper's complexity results assume a *unit-cost* reconfigurable bus: a
broadcast over a sub-bus completes in one cycle regardless of how many Short
switches it crosses (this is what reference [2] argues is hardware
implementable). :class:`BusCostModel` also offers a *distance-proportional*
model, used by ablation A8 to show how the algorithm degrades if bus
propagation were charged like nearest-neighbour hops.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["BusCostModel", "PPAConfig"]

_MAX_WORD_BITS = 62  # keep maxint + maxint inside int64


class BusCostModel(enum.Enum):
    """How many cycles one bus transaction is charged."""

    UNIT = "unit"
    """Constant-time buses (the paper's assumption): 1 cycle per broadcast."""

    LINEAR = "linear"
    """Distance-proportional buses: a transaction on an ``n``-ring costs
    ``n`` cycles, as if every Short switch added a full hop delay."""


@dataclass(frozen=True)
class PPAConfig:
    """Immutable PPA machine configuration.

    Attributes
    ----------
    n
        Side of the square PE grid (the machine has ``n * n`` PEs).
    word_bits
        Width ``h`` of the machine integer word. Values live in
        ``[0, 2**h - 1]`` and ``maxint = 2**h - 1`` is the paper's
        ``MAXINT`` infinity sentinel.
    bus_cost_model
        Cycle-accounting model for bus transactions.
    torus
        Whether ``shift`` wraps around the array edges. Buses are always
        circular (see DESIGN.md, "Circular buses").
    strict_bus
        If True, broadcasting on a ring with no Open switch raises
        :class:`~repro.errors.BusError` instead of latching the old value.
    """

    n: int
    word_bits: int = 16
    bus_cost_model: BusCostModel = BusCostModel.UNIT
    torus: bool = True
    strict_bus: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"grid side must be >= 1, got {self.n}")
        if not (2 <= self.word_bits <= _MAX_WORD_BITS):
            raise ConfigurationError(
                f"word_bits must be in [2, {_MAX_WORD_BITS}], got "
                f"{self.word_bits}"
            )
        if not isinstance(self.bus_cost_model, BusCostModel):
            raise ConfigurationError(
                f"bus_cost_model must be a BusCostModel, got "
                f"{self.bus_cost_model!r}"
            )

    @property
    def maxint(self) -> int:
        """The ``MAXINT`` infinity sentinel: all-ones in ``word_bits`` bits."""
        return (1 << self.word_bits) - 1

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    def bus_transaction_cycles(self) -> int:
        """Cycles charged for one bus transaction under the cost model."""
        if self.bus_cost_model is BusCostModel.UNIT:
            return 1
        return self.n
