"""SIMD data-movement directions of the PPA.

The controller issues one direction per instruction; *all* PEs move data the
same way (paper, Section 2: "at any given time, all the nodes send data in
the same direction (North, East, West or South)").

Grid convention
---------------
Arrays are indexed ``[row, col]`` with row 0 at the *north* edge and column 0
at the *west* edge, so:

========= ======== =====================
direction axis     downstream index step
========= ======== =====================
SOUTH     0 (rows) +1
NORTH     0 (rows) -1
EAST      1 (cols) +1
WEST      1 (cols) -1
========= ======== =====================

"Downstream" is the direction data travels; the *upstream* neighbour is the
one a PE receives from.
"""

from __future__ import annotations

import enum

__all__ = ["Direction", "opposite", "NORTH", "EAST", "SOUTH", "WEST"]


class Direction(enum.Enum):
    """One of the four bus/data-movement orientations."""

    NORTH = "NORTH"
    EAST = "EAST"
    SOUTH = "SOUTH"
    WEST = "WEST"

    @property
    def axis(self) -> int:
        """Numpy axis the direction moves along (0 = rows, 1 = columns)."""
        return 0 if self in (Direction.NORTH, Direction.SOUTH) else 1

    @property
    def step(self) -> int:
        """Index increment of a downstream move along :attr:`axis`."""
        return +1 if self in (Direction.SOUTH, Direction.EAST) else -1

    @property
    def is_forward(self) -> bool:
        """True when downstream means *increasing* index along the axis."""
        return self.step > 0

    def opposite(self) -> "Direction":
        return _OPPOSITE[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_OPPOSITE = {
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
}


def opposite(direction: Direction) -> Direction:
    """Return the direction opposite to *direction*.

    Mirrors the ``opposite(x)`` helper used by the paper's ``min()`` listing.
    """
    return _OPPOSITE[direction]


NORTH = Direction.NORTH
EAST = Direction.EAST
SOUTH = Direction.SOUTH
WEST = Direction.WEST
