"""Instruction-stream executor.

Runs assembled programs against a :class:`PPAMachine`. All communication
and masking goes through the machine's own primitives, so an instruction
stream accumulates the same counters (and sees the same fault plan) as the
high-level algorithms — enabling exact-parity comparisons such as the one
in ``tests/core/test_asm_mcp.py``.

Word semantics follow :mod:`docs/machine-model.md`: ``add`` saturates at
``MAXINT``, ``sub`` at 0; comparison and logical results are 0/1 words;
communication instructions treat a register as "Open"/"true" where its
value is non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MachineError
from repro.ppa.isa import Instruction, N_PREGS, N_SREGS, Opcode
from repro.ppa.machine import PPAMachine

__all__ = ["ExecutionState", "execute"]

_DEFAULT_MAX_STEPS = 1_000_000


@dataclass
class ExecutionState:
    """Machine state after (or during) a program run."""

    pregs: np.ndarray  # (N_PREGS, n, n) int64
    sregs: np.ndarray  # (N_SREGS,) int64
    memory: np.ndarray  # (mem_words, n, n) int64
    flag: bool = False
    pc: int = 0
    steps: int = 0
    halted: bool = False
    counters: dict[str, int] = field(default_factory=dict)

    def reg(self, index: int) -> np.ndarray:
        """Copy of parallel register *index*."""
        return self.pregs[index].copy()


def execute(
    machine: PPAMachine,
    program: list[Instruction],
    *,
    inputs: dict[str, np.ndarray | int] | None = None,
    mem_words: int = 8,
    max_steps: int = _DEFAULT_MAX_STEPS,
) -> ExecutionState:
    """Run *program* on *machine* until ``halt``.

    Parameters
    ----------
    inputs
        Initial register/memory contents, keyed ``"r3"``, ``"s0"`` or
        ``"m2"`` (memory word 2). Grids must match the machine shape;
        scalars broadcast.
    mem_words
        Per-PE local memory size.
    max_steps
        Executed-instruction bound (guards infinite loops).

    Returns
    -------
    ExecutionState
        Final registers/memory/flag plus the machine-counter deltas of the
        run.
    """
    n = machine.n
    before = machine.counters.snapshot()
    state = ExecutionState(
        pregs=np.zeros((N_PREGS, n, n), dtype=np.int64),
        sregs=np.zeros(N_SREGS, dtype=np.int64),
        memory=np.zeros((mem_words, n, n), dtype=np.int64),
    )
    for key, value in (inputs or {}).items():
        kind, idx = key[0], int(key[1:])
        if kind == "r":
            state.pregs[idx] = np.broadcast_to(
                np.asarray(value, dtype=np.int64), (n, n)
            )
        elif kind == "s":
            state.sregs[idx] = int(value)
        elif kind == "m":
            state.memory[idx] = np.broadcast_to(
                np.asarray(value, dtype=np.int64), (n, n)
            )
        else:
            raise MachineError(f"unknown input key {key!r}")

    mask_depth = 0
    P = state.pregs
    S = state.sregs
    # Per-opcode execution histogram feeds the innermost open telemetry
    # span (see repro.telemetry); hoisted so the disabled path costs one
    # attribute check per instruction and nothing else.
    tele = machine.telemetry

    def as_bool(reg: int) -> np.ndarray:
        return P[reg] != 0

    try:
        while not state.halted:
            if state.pc < 0 or state.pc >= len(program):
                raise MachineError(
                    f"program counter {state.pc} outside program "
                    f"(missing halt on some path?)"
                )
            if state.steps >= max_steps:
                raise MachineError(f"execution exceeded {max_steps} steps")
            instr = program[state.pc]
            state.pc += 1
            state.steps += 1
            op = instr.opcode
            a = instr.operands
            if tele.enabled:
                tele.add_opcode(op.name)

            if op is Opcode.HALT:
                state.halted = True
            # -- parallel moves/constants ---------------------------------
            elif op is Opcode.LDI:
                machine.store(P[a[0]], a[1])
            elif op is Opcode.LDS:
                machine.store(P[a[0]], int(S[a[1]]))
            elif op is Opcode.MOV:
                machine.store(P[a[0]], P[a[1]])
            elif op is Opcode.ROW:
                machine.store(P[a[0]], machine.row_index)
            elif op is Opcode.COL:
                machine.store(P[a[0]], machine.col_index)
            elif op is Opcode.LD:
                machine.store(P[a[0]], state.memory[a[1]])
            elif op is Opcode.ST:
                machine.store(state.memory[a[0]], P[a[1]])
            # -- parallel ALU ---------------------------------------------
            elif op is Opcode.ADD:
                machine.store(P[a[0]], machine.sat_add(P[a[1]], P[a[2]]))
            elif op is Opcode.SUB:
                machine.count_alu()
                machine.store(P[a[0]], np.maximum(P[a[1]] - P[a[2]], 0))
            elif op is Opcode.MUL:
                machine.count_alu()
                machine.store(
                    P[a[0]], np.minimum(P[a[1]] * P[a[2]], machine.maxint)
                )
            elif op is Opcode.DIV:
                machine.count_alu()
                if (P[a[2]] == 0).any():
                    raise MachineError(
                        f"line {instr.line}: division by zero"
                    )
                machine.store(P[a[0]], P[a[1]] // P[a[2]])
            elif op is Opcode.MOD:
                machine.count_alu()
                if (P[a[2]] == 0).any():
                    raise MachineError(
                        f"line {instr.line}: division by zero"
                    )
                machine.store(P[a[0]], P[a[1]] % P[a[2]])
            elif op is Opcode.MIN:
                machine.count_alu()
                machine.store(P[a[0]], np.minimum(P[a[1]], P[a[2]]))
            elif op is Opcode.MAX:
                machine.count_alu()
                machine.store(P[a[0]], np.maximum(P[a[1]], P[a[2]]))
            elif op is Opcode.AND:
                machine.count_alu()
                machine.store(P[a[0]], P[a[1]] & P[a[2]])
            elif op is Opcode.OR:
                machine.count_alu()
                machine.store(P[a[0]], P[a[1]] | P[a[2]])
            elif op is Opcode.XOR:
                machine.count_alu()
                machine.store(P[a[0]], P[a[1]] ^ P[a[2]])
            elif op is Opcode.NOT:
                machine.count_alu()
                machine.store(P[a[0]], (P[a[1]] == 0).astype(np.int64))
            elif op is Opcode.CMPEQ:
                machine.count_alu()
                machine.store(P[a[0]], (P[a[1]] == P[a[2]]).astype(np.int64))
            elif op is Opcode.CMPNE:
                machine.count_alu()
                machine.store(P[a[0]], (P[a[1]] != P[a[2]]).astype(np.int64))
            elif op is Opcode.CMPLT:
                machine.count_alu()
                machine.store(P[a[0]], (P[a[1]] < P[a[2]]).astype(np.int64))
            elif op is Opcode.CMPLE:
                machine.count_alu()
                machine.store(P[a[0]], (P[a[1]] <= P[a[2]]).astype(np.int64))
            elif op is Opcode.SHLI:
                machine.count_alu()
                machine.store(
                    P[a[0]], (P[a[1]] << a[2]) & machine.maxint
                )
            elif op is Opcode.SHRI:
                machine.count_alu()
                machine.store(P[a[0]], P[a[1]] >> a[2])
            elif op is Opcode.BITI:
                machine.store(
                    P[a[0]], machine.bit(P[a[1]], a[2]).astype(np.int64)
                )
            elif op is Opcode.BITS:
                machine.store(
                    P[a[0]],
                    machine.bit(P[a[1]], int(S[a[2]])).astype(np.int64),
                )
            # -- communication ----------------------------------------------
            elif op is Opcode.SHIFT:
                machine.store(P[a[0]], machine.shift(P[a[1]], a[2]))
            elif op is Opcode.BCAST:
                machine.store(
                    P[a[0]], machine.broadcast(P[a[1]], a[2], as_bool(a[3]))
                )
            elif op is Opcode.WOR:
                machine.store(
                    P[a[0]],
                    machine.bus_or(
                        as_bool(a[1]), a[2], as_bool(a[3])
                    ).astype(np.int64),
                )
            # -- masks -----------------------------------------------------
            elif op is Opcode.PUSHM:
                cond = as_bool(a[0])
                if machine._mask_stack:
                    cond = cond & machine._mask_stack[-1]
                machine._mask_stack.append(cond)
                mask_depth += 1
                machine.count_alu()
            elif op is Opcode.POPM:
                if mask_depth == 0:
                    raise MachineError(
                        f"line {instr.line}: popm with empty mask stack"
                    )
                machine._mask_stack.pop()
                mask_depth -= 1
            # -- controller --------------------------------------------------
            elif op is Opcode.GOR:
                state.flag = machine.global_or(as_bool(a[0]))
            elif op is Opcode.SLDI:
                S[a[0]] = a[1]
            elif op is Opcode.SMOV:
                S[a[0]] = S[a[1]]
            elif op is Opcode.SADDI:
                S[a[0]] += a[1]
            elif op is Opcode.JMP:
                state.pc = a[0]
            elif op is Opcode.JNZ:
                if state.flag:
                    state.pc = a[0]
            elif op is Opcode.JZ:
                if not state.flag:
                    state.pc = a[0]
            elif op is Opcode.SJGE:
                if S[a[0]] >= 0:
                    state.pc = a[1]
            elif op is Opcode.SBLT:
                if S[a[0]] < a[1]:
                    state.pc = a[2]
            elif op is Opcode.SBGE:
                if S[a[0]] >= a[1]:
                    state.pc = a[2]
            elif op is Opcode.SBEQ:
                if S[a[0]] == a[1]:
                    state.pc = a[2]
            elif op is Opcode.SBNE:
                if S[a[0]] != a[1]:
                    state.pc = a[2]
            else:  # pragma: no cover - signature table is exhaustive
                raise MachineError(f"unimplemented opcode {op}")
    finally:
        # Never leak masks into the machine on abnormal exits.
        for _ in range(mask_depth):
            machine._mask_stack.pop()

    state.counters = machine.counters.diff(before)
    return state
