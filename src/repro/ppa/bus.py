"""Bus transaction tracing.

:class:`BusTrace` optionally records every bus transaction a machine issues
(kind, direction, how many Open switches, largest cluster span). Tracing is
off by default — recording allocates — and is enabled per-machine via
``PPAMachine(..., trace=True)`` or temporarily with :meth:`BusTrace.capture`.

Traces back two uses: debugging bus programs (tests assert on the exact
transaction sequence of the paper's listing) and the A8 bus-cost ablation,
which re-prices a recorded trace under a different cost model without
re-running the simulation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.ppa.directions import Direction

__all__ = ["BusTransaction", "BusTrace"]


@dataclass(frozen=True)
class BusTransaction:
    """One recorded bus operation."""

    kind: str  # "broadcast" | "reduce" | "global_or"
    direction: Direction | None
    open_count: int
    max_span: int  # longest cluster, in switches crossed


class BusTrace:
    """Append-only log of bus transactions."""

    def __init__(self) -> None:
        self._records: list[BusTransaction] = []
        self.enabled = False

    def record(
        self,
        kind: str,
        direction: Direction | None,
        open_plane: np.ndarray | None,
    ) -> None:
        if not self.enabled:
            return
        if open_plane is None:
            self._records.append(BusTransaction(kind, direction, 0, 0))
            return
        open_plane = np.asarray(open_plane, dtype=bool)
        opens = int(open_plane.sum())
        # Longest cluster on any ring = ring length minus (#opens on that
        # ring - 1) gaps at best; exact span needs per-ring gap analysis.
        axis = direction.axis if direction is not None else 1
        per_ring = np.asarray(open_plane.sum(axis=axis))
        ring_len = open_plane.shape[axis]
        # A ring with k >= 1 opens has max cluster span <= ring_len - k + 1;
        # with 0 opens the whole ring floats (span = ring_len).
        spans = np.where(per_ring > 0, ring_len - per_ring + 1, ring_len)
        self._records.append(
            BusTransaction(kind, direction, opens, int(spans.max()))
        )

    @property
    def records(self) -> list[BusTransaction]:
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    @contextmanager
    def capture(self):
        """Enable tracing for the duration of a ``with`` block."""
        prev = self.enabled
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = prev

    def reprice(self, unit_cost_of_span) -> int:
        """Total bus cycles under an alternative cost model.

        Parameters
        ----------
        unit_cost_of_span
            Callable mapping a transaction's ``max_span`` to a cycle count,
            e.g. ``lambda s: s`` for distance-proportional buses.
        """
        return sum(unit_cost_of_span(t.max_span) for t in self._records)
