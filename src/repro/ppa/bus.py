"""Bus transaction tracing.

:class:`BusTrace` optionally records every bus transaction a machine issues
(kind, direction, how many Open switches, largest cluster span). Tracing is
off by default — recording allocates — and is enabled per-machine via
``PPAMachine(..., trace=True)`` or temporarily with :meth:`BusTrace.capture`.

Traces back two uses: debugging bus programs (tests assert on the exact
transaction sequence of the paper's listing) and the A8 bus-cost ablation,
which re-prices a recorded trace under a different cost model without
re-running the simulation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.ppa.directions import Direction

__all__ = ["BusTransaction", "BusTrace", "max_cluster_span_bound"]


def max_cluster_span_bound(ring_len: int, open_count: int) -> int:
    """Pessimistic bound on the longest cluster of a ring.

    A circular bus of ``ring_len`` switches with ``k >= 1`` Open switches is
    cut into ``k`` clusters; in the worst case ``k - 1`` of them are trivial
    (adjacent opens), leaving one cluster of ``ring_len - k + 1`` switches.
    With no opens the whole ring floats as one cluster of span ``ring_len``.

    This is only an *upper bound*: evenly spaced opens give much smaller
    clusters (e.g. opens at positions 0 and 4 of an 8-ring yield two
    clusters of span 4, not ``8 - 2 + 1 = 7``). :meth:`BusTrace.record`
    therefore computes the exact longest cluster per ring, so that
    :meth:`BusTrace.reprice` is correct under distance-proportional cost
    models; this bound is kept (and tested) as the analytical reference.
    """
    if open_count <= 0:
        return ring_len
    return ring_len - open_count + 1


def _max_cluster_span(open_plane: np.ndarray, axis: int) -> int:
    """Exact longest cluster span over all rings of ``open_plane``.

    Each ring (a row when ``axis == 1``, a column when ``axis == 0``) is a
    *circular* bus: with the opens at positions ``idx`` the clusters are the
    circular gaps between consecutive opens, so the longest cluster is the
    largest circular gap. Rings with zero or one open form a single cluster
    spanning the whole ring.

    Fully vectorised (no per-ring Python loop): for every *open* position
    ``c`` the cluster ending there spans ``((c - prev - 1) mod L) + 1``
    switches, where ``prev`` is the nearest open strictly upstream
    (cyclic) — obtained from a cumulative-maximum "head index" grid rolled
    by one. The ``+1``-after-``mod`` form maps the single-open case
    (``prev == c``) to a whole-ring span of ``L``. Accepts batched
    ``(B, n, n)`` plane stacks; rings of all lanes are flattened together.
    """
    rings = open_plane if axis == 1 else open_plane.swapaxes(-1, -2)
    ring_len = rings.shape[-1]
    rings = np.ascontiguousarray(rings).reshape(-1, ring_len)
    counts = rings.sum(axis=1)
    if not counts.all():
        return ring_len  # some ring has no Open: it floats whole
    cols = np.arange(ring_len, dtype=np.int64)
    idx = np.where(rings, cols, -1)
    head = np.maximum.accumulate(idx, axis=1)
    head = np.where(head < 0, head[:, -1:], head)  # cyclic wrap-around
    prev = np.roll(head, 1, axis=1)
    gap = (cols[None, :] - prev - 1) % ring_len + 1
    spans = np.where(rings, gap, 0).max(axis=1)
    return int(spans.max())


@dataclass(frozen=True)
class BusTransaction:
    """One recorded bus operation."""

    kind: str  # "broadcast" | "reduce" | "global_or"
    direction: Direction | None
    open_count: int
    max_span: int  # longest cluster, in switches crossed


class BusTrace:
    """Append-only log of bus transactions."""

    def __init__(self) -> None:
        self._records: list[BusTransaction] = []
        self.enabled = False

    def record(
        self,
        kind: str,
        direction: Direction | None,
        open_plane: np.ndarray | None,
    ) -> None:
        if not self.enabled:
            return
        if open_plane is None:
            self._records.append(BusTransaction(kind, direction, 0, 0))
            return
        open_plane = np.asarray(open_plane, dtype=bool)
        opens = int(open_plane.sum())
        axis = direction.axis if direction is not None else 1
        self._records.append(
            BusTransaction(
                kind, direction, opens, _max_cluster_span(open_plane, axis)
            )
        )

    @property
    def records(self) -> list[BusTransaction]:
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    @contextmanager
    def capture(self):
        """Enable tracing for the duration of a ``with`` block."""
        prev = self.enabled
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = prev

    def reprice(self, unit_cost_of_span) -> int:
        """Total bus cycles under an alternative cost model.

        Parameters
        ----------
        unit_cost_of_span
            Callable mapping a transaction's ``max_span`` to a cycle count,
            e.g. ``lambda s: s`` for distance-proportional buses.
        """
        return sum(unit_cost_of_span(t.max_span) for t in self._records)
