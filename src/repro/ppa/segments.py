"""Vectorised resolution of segmented, circular PPA buses.

Every PPA bus operation reduces to one of two questions about each *ring*
(a full row or column of the torus, in the direction the controller chose):

1. **Broadcast** — which Open node drives the segment this PE belongs to?
   Per the PPC language specification (paper, Section 2), ``broadcast``
   "returns the value of the element of src corresponding to the extreme
   node of the cluster the processor belongs to": a cluster is an Open node
   (its *head*) plus the Short nodes downstream of it up to the next Open
   node, cyclically, and every member — the head included — receives the
   head's value. (The head receiving its own value is load-bearing: the
   paper's ``min()`` routine, statements 11-12, relies on it whenever a
   cluster head survives the bit-serial elimination.)

2. **Segmented reduction** (wired-OR and friends) — combine the values of a
   whole *cluster*: an Open node together with the Short nodes downstream of
   it, up to (excluding) the next Open node, cyclically.

Both are computed for the entire grid at once with numpy primitives
(cumulative maxima, ``reduceat`` over a rolled layout) — no per-PE Python
loops, per the project's hpc-parallel coding guides.

Batched (lane) execution
------------------------
Every public kernel also accepts a *stack* of ``B`` independent problem
instances — a ``(B, n, n)`` value array and either a shared ``(n, n)``
switch plane or a per-lane ``(B, n, n)`` plane stack. One bus transaction
then resolves **all lanes in a single gather / ``reduceat``** instead of
``B`` serial python-level passes. A shared 2-D plane is resolved once and
lane-expanded into cached flat indices (so ``B`` lanes programming the
same switch configuration share one plan resolution); a per-lane stack is
resolved as one ``(B*m, n)`` ring pile in a single vectorised pass, and
assembled stack plans are themselves cached.

Canonical layout
----------------
All internal helpers operate on a canonical orientation: rings live on the
*last* axis and downstream is *increasing index* (for 2-D grids that means
rings are rows). :func:`_to_canonical` transposes/flips inputs into that
layout and :func:`_from_canonical` undoes it; both are O(1) views or cheap
copies, and both are lane-axis agnostic (they only touch the trailing two
axes).
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict
from typing import Literal

import numpy as np

from repro.errors import BusError
from repro.ppa.counters import PlanCacheStats
from repro.ppa.directions import Direction

__all__ = [
    "broadcast_values",
    "segmented_reduce",
    "shift_values",
    "clear_plan_cache",
    "plan_cache_stats",
    "reset_plan_cache_stats",
    "plan_cache_sizes",
    "invalidate_stack_digest",
    "stack_digest_stats",
    "reset_stack_digest_stats",
    "stack_digest_memo_size",
    "PlanCacheStats",
    "ReduceOp",
]

ReduceOp = Literal["or", "and", "min", "max", "sum"]

# ---------------------------------------------------------------------------
# Bus-plan caches
#
# Algorithms reprogram the same switch planes over and over (the MCP's
# bit-serial min issues ~2h wired-ORs per iteration against one plane), and
# resolving a plane into gather/reduceat indices dominated the profile. The
# resolution is a pure function of (plane bytes, direction), so a small LRU
# of "plans" makes repeat transactions index-lookup cheap. 64 entries is
# far beyond what any algorithm here cycles through.
#
# Four caches exist:
#   _broadcast_plans / _reduce_plans  — per-plane plans, keyed on the raw
#       (direction, shape, bytes) of one 2-D switch plane. Shared between
#       unbatched calls and the per-lane resolution step of batched calls.
#   _broadcast_stacks / _reduce_stacks — assembled (B, n, n) stack plans,
#       keyed on the bytes of the whole per-lane plane stack. Smaller cap:
#       each entry is B× the size of a per-plane plan.
#
# ``clear_plan_cache()`` drops all four.
# ---------------------------------------------------------------------------

_PLAN_CACHE_SIZE = 64
_STACK_CACHE_SIZE = 16
_broadcast_plans: "OrderedDict[tuple, tuple]" = OrderedDict()
_reduce_plans: "OrderedDict[tuple, tuple]" = OrderedDict()
_broadcast_stacks: "OrderedDict[tuple, tuple]" = OrderedDict()
_reduce_stacks: "OrderedDict[tuple, tuple]" = OrderedDict()

# Module-wide hit/miss accounting (host-side metric: depends on process
# history, never part of the machine cost model). Public kernels bump this
# once per call; a per-machine ``PlanCacheStats`` sink may be passed in
# addition via the ``stats`` kwarg.
_stats = PlanCacheStats()


def _cache_get(cache: "OrderedDict", key: tuple):
    try:
        value = cache.pop(key)
    except KeyError:
        return None
    cache[key] = value  # refresh LRU position
    return value


def _cache_put(
    cache: "OrderedDict", key: tuple, value: tuple, limit: int = _PLAN_CACHE_SIZE
) -> None:
    cache[key] = value
    while len(cache) > limit:
        cache.popitem(last=False)


def clear_plan_cache() -> None:
    """Drop all cached bus plans (memory hygiene for huge sweeps).

    Clears **all four** plan caches: the per-plane broadcast and reduce
    LRUs *and* the assembled batched stack-plan LRUs. Hit/miss statistics
    are left untouched (use :func:`reset_plan_cache_stats` for those).
    """
    _broadcast_plans.clear()
    _reduce_plans.clear()
    _broadcast_stacks.clear()
    _reduce_stacks.clear()


def plan_cache_stats() -> PlanCacheStats:
    """The module-wide plan-cache hit/miss counters (live object)."""
    return _stats


def reset_plan_cache_stats() -> None:
    """Zero the module-wide plan-cache hit/miss counters."""
    _stats.reset()


def plan_cache_sizes() -> dict[str, int]:
    """Current entry counts of all four plan caches (for memory tests)."""
    return {
        "broadcast": len(_broadcast_plans),
        "reduce": len(_reduce_plans),
        "broadcast_stacks": len(_broadcast_stacks),
        "reduce_stacks": len(_reduce_stacks),
    }


def _record(stats: PlanCacheStats | None, kind: str, hit: bool) -> None:
    name = f"{kind}_{'hits' if hit else 'misses'}"
    setattr(_stats, name, getattr(_stats, name) + 1)
    if stats is not None and stats is not _stats:
        setattr(stats, name, getattr(stats, name) + 1)


# ---------------------------------------------------------------------------
# Per-stack digest memo
#
# The stack-plan LRUs key on the *content* of a whole (B, n, n) per-lane
# plane stack. Hashing those bytes (``o.tobytes()``) on every transaction
# costs O(B * n^2) per call — and the hot caller (the batched MCP loop)
# re-presents the *same* resolved plane-stack object (``row_d``) thousands
# of times per run, because :func:`repro.ppa.switchbox.as_switch_plane` is
# identity-stable for boolean contiguous inputs. So the digest is memoized
# per array object (``id``), with two eviction paths:
#
# * garbage collection — a ``weakref.finalize`` drops the entry the moment
#   the array dies, so a recycled ``id()`` can never resurrect a stale
#   digest;
# * **writeback** — :meth:`repro.ppa.machine.PPAMachine.store` mutates
#   parallel variables in place and calls
#   :func:`invalidate_stack_digest` on the destination, so a plane derived
#   from (and aliasing) machine state re-hashes after any store.
#
# The memoized value is a 16-byte BLAKE2b digest, which also shrinks the
# LRU keys from B*n^2 bytes to 16.
# ---------------------------------------------------------------------------

_digest_memo: dict[int, bytes] = {}
_digest_stats = {"hits": 0, "misses": 0}


def _stack_digest(o: np.ndarray) -> bytes:
    """Memoized content digest of one per-lane plane stack (see above)."""
    key = id(o)
    cached = _digest_memo.get(key)
    if cached is not None:
        _digest_stats["hits"] += 1
        return cached
    _digest_stats["misses"] += 1
    digest = hashlib.blake2b(o.tobytes(), digest_size=16).digest()
    _digest_memo[key] = digest
    weakref.finalize(o, _digest_memo.pop, key, None)
    return digest


def invalidate_stack_digest(arr: np.ndarray) -> None:
    """Forget the memoized digest of *arr* (it is about to be mutated).

    Called by :meth:`repro.ppa.machine.PPAMachine.store` on every masked
    writeback; a no-op for arrays that were never presented as per-lane
    switch stacks.
    """
    _digest_memo.pop(id(arr), None)


def stack_digest_stats() -> dict[str, int]:
    """Host-side hit/miss tallies of the stack digest memo (copy)."""
    return dict(_digest_stats)


def reset_stack_digest_stats() -> None:
    _digest_stats["hits"] = 0
    _digest_stats["misses"] = 0


def stack_digest_memo_size() -> int:
    """Live entries in the digest memo (bounded by live plane stacks)."""
    return len(_digest_memo)


_UFUNCS = {
    "or": np.maximum,  # operands are 0/1 integers
    "and": np.minimum,
    "min": np.minimum,
    "max": np.maximum,
    "sum": np.add,
}


def _to_canonical(arr: np.ndarray, direction: Direction) -> np.ndarray:
    """View/copy of *arr* with rings on the last axis and downstream = +1."""
    if direction.axis == 0:
        arr = arr.swapaxes(-1, -2)
    if not direction.is_forward:
        arr = arr[..., ::-1]
    return arr


def _from_canonical(arr: np.ndarray, direction: Direction) -> np.ndarray:
    """Inverse of :func:`_to_canonical` (same sequence, reversed)."""
    if not direction.is_forward:
        arr = arr[..., ::-1]
    if direction.axis == 0:
        arr = arr.swapaxes(-1, -2)
    return np.ascontiguousarray(arr)


# ---------------------------------------------------------------------------
# Plan resolution (pure functions of one canonical 2-D plane)
# ---------------------------------------------------------------------------


def _head_index(open_plane: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cluster head (Open node at-or-upstream, cyclic) per node.

    Canonical layout; returns ``(head, has_open)``. An Open node heads its
    own cluster.
    """
    m, n = open_plane.shape
    cols = np.arange(n, dtype=np.int64)
    idx = np.where(open_plane, cols, -1)
    incl = np.maximum.accumulate(idx, axis=1)
    last = incl[:, -1:]
    head = np.where(incl < 0, last, incl)
    return head, last[:, 0] >= 0


def _resolve_broadcast(oc: np.ndarray) -> tuple:
    """Broadcast plan ``(safe, all_driven, bad_ring)`` for one canonical plane."""
    head, has_open = _head_index(oc)
    safe = np.where(head >= 0, head, np.arange(oc.shape[1])[None, :])
    all_driven = bool(has_open.all())
    bad = -1 if all_driven else int(np.flatnonzero(~has_open)[0])
    return safe, all_driven, bad


def _resolve_reduce(oc: np.ndarray) -> tuple:
    """Reduce plan ``(cols, starts, seg_map, nseg, all_driven, bad_ring)``.

    ``cols`` rolls each ring so it begins at its first Open node (clusters
    become contiguous runs and ``reduceat`` applies); ``starts`` are flat
    segment starts in the rolled ``(m*n,)`` layout; ``seg_map`` maps each
    rolled position to its segment id. Open-free rings keep offset 0 and
    form one whole-ring segment.
    """
    m, n = oc.shape
    has_open = oc.any(axis=1)
    first = np.where(has_open, np.argmax(oc, axis=1), 0)
    cols = (np.arange(n)[None, :] + first[:, None]) % n
    o_rolled = np.take_along_axis(oc, cols, axis=1)
    boundary = o_rolled.copy()
    boundary[:, 0] = True  # every ring contributes >= 1 segment
    flat_bound = boundary.reshape(-1)
    starts = np.flatnonzero(flat_bound)
    seg_map = (np.cumsum(flat_bound) - 1).reshape(m, n)
    nseg = int(starts.size)
    all_driven = bool(has_open.all())
    bad = -1 if all_driven else int(np.flatnonzero(~has_open)[0])
    return cols, starts, seg_map, nseg, all_driven, bad


def _plane_plan(cache: "OrderedDict", o_raw: np.ndarray, direction: Direction,
                resolver) -> tuple:
    """Per-plane plan for a raw-orientation 2-D plane, via the LRU cache."""
    key = (direction, o_raw.shape, o_raw.tobytes())
    plan = _cache_get(cache, key)
    if plan is None:
        oc = np.ascontiguousarray(_to_canonical(o_raw, direction))
        plan = resolver(oc)
        _cache_put(cache, key, plan)
    return plan


# ---------------------------------------------------------------------------
# Lane-expanded plans (one shared 2-D plane driving a (B, n, n) lane stack)
#
# The naive expansion — rebuilding reduceat starts and per-lane segment
# maps on every transaction — dominated the batched profile. Instead the
# per-plane plan is expanded ONCE per (plane, B) into flat gather indices
# and cached alongside the 2-D plans. Two shapes exist:
#
#   "fast" — every ring is a single cluster (<= 1 Open switch per ring:
#       exactly the planes the MCP's bit-serial min hammers 2h times per
#       iteration). The whole transaction is one SIMD ``ufunc.reduce``
#       over the ring axis (reduce) or one per-ring gather + broadcast
#       (broadcast); no index arrays touch memory at apply time.
#   "gen" — arbitrary segmentation: precomputed *flat* roll-gather,
#       reduceat starts and un-rolled segment-id indices, so apply is
#       two contiguous fancy gathers plus one ``reduceat``.
# ---------------------------------------------------------------------------


def _expand_broadcast_plan(plan: tuple, B: int) -> tuple:
    safe, all_driven, bad = plan
    m, n = safe.shape
    if bool((safe == safe[:, :1]).all()):
        # Per-ring-constant gather map: one driver (or one node) per ring.
        head_abs = np.arange(m, dtype=np.int64) * n + safe[:, 0]
        return ("fast", head_abs, m, n, all_driven, bad)
    safe_flat = (safe + np.arange(m, dtype=np.int64)[:, None] * n).ravel()
    return ("gen", safe_flat, m, n, all_driven, bad)


def _apply_broadcast_batched(s: np.ndarray, plan: tuple) -> np.ndarray:
    kind, idx, m, n, _all_driven, _bad = plan
    B = s.shape[0]
    s2 = np.reshape(s, (B, m * n))
    if kind == "fast":
        return np.broadcast_to(s2[:, idx][:, :, None], (B, m, n))
    return s2[:, idx].reshape(B, m, n)


def _expand_reduce_plan(plan: tuple, B: int) -> tuple:
    cols, starts, seg_map, nseg, all_driven, bad = plan
    m, n = cols.shape
    if nseg == m:
        # One segment per ring: a plain axis reduction, no index arrays.
        return ("fast", None, None, None, m, n, nseg, all_driven, bad)
    mn = m * n
    roll_flat = (cols + np.arange(m, dtype=np.int64)[:, None] * n).ravel()
    starts_b = (starts[None, :] + (np.arange(B) * mn)[:, None]).reshape(-1)
    seg_un = np.empty((m, n), dtype=np.int64)
    np.put_along_axis(seg_un, cols, seg_map, axis=1)
    return ("gen", roll_flat, starts_b, seg_un.ravel(), m, n, nseg,
            all_driven, bad)


def _apply_reduce_batched(v: np.ndarray, plan: tuple, ufunc) -> np.ndarray:
    kind, roll_flat, starts_b, seg_un, m, n, nseg, _driven, _bad = plan
    if kind == "fast":
        red = ufunc.reduce(v, axis=-1, keepdims=True)
        return np.broadcast_to(red, v.shape)
    B = v.shape[0]
    flat = np.reshape(v, (B, m * n))[:, roll_flat]
    seg_vals = ufunc.reduceat(flat.reshape(-1), starts_b)
    return seg_vals.reshape(B, nseg)[:, seg_un].reshape(B, m, n)


# ---------------------------------------------------------------------------
# Stack-plan assembly (per-lane plane stacks)
#
# A (B, n, n) per-lane stack is resolved as ONE (B*m, n) ring pile — the
# resolvers are already vectorised over rings, so a whole stack costs one
# cumulative-max/argmax pass instead of B python-level lane resolutions.
# The assembled flat gather/reduceat indices are cached so repeated
# transactions against the same plane stack are a single LRU lookup; the
# per-plane LRU is deliberately untouched (a stack of B distinct
# data-dependent planes would wipe it in one call).
# ---------------------------------------------------------------------------


def _build_broadcast_stack(o: np.ndarray, direction: Direction) -> tuple:
    oc = np.ascontiguousarray(_to_canonical(o, direction))
    B, m, n = oc.shape
    safe, all_driven, bad = _resolve_broadcast(oc.reshape(B * m, n))
    bad_lane = None if all_driven else tuple(divmod(bad, m))
    base = (np.arange(B * m, dtype=np.int64) * n)[:, None]
    return (safe + base).ravel(), (m, n), all_driven, bad_lane


def _build_reduce_stack(o: np.ndarray, direction: Direction) -> tuple:
    oc = np.ascontiguousarray(_to_canonical(o, direction))
    B, m, n = oc.shape
    cols, starts, seg_map, nseg, all_driven, bad = _resolve_reduce(
        oc.reshape(B * m, n)
    )
    bad_lane = None if all_driven else tuple(divmod(bad, m))
    base = (np.arange(B * m, dtype=np.int64) * n)[:, None]
    roll_full = (cols + base).ravel()
    seg_un = np.empty_like(seg_map)
    np.put_along_axis(seg_un, cols, seg_map, axis=1)
    return (roll_full, starts, seg_un.ravel(), nseg, (m, n),
            all_driven, bad_lane)


# ---------------------------------------------------------------------------
# Public kernels
# ---------------------------------------------------------------------------


def broadcast_values(
    src: np.ndarray,
    open_plane: np.ndarray,
    direction: Direction,
    *,
    strict: bool = False,
    stats: PlanCacheStats | None = None,
) -> np.ndarray:
    """Resolve one bus broadcast over the whole grid (all lanes at once).

    Parameters
    ----------
    src
        Per-PE values to (potentially) inject — ``(n, n)`` or a batched
        ``(B, n, n)`` lane stack.
    open_plane
        Boolean grid; ``True`` marks an Open switch-box. Either one shared
        ``(n, n)`` plane (applied to every lane) or a per-lane
        ``(B, n, n)`` stack.
    direction
        Controller-selected data-movement direction.
    strict
        If True, a ring with no Open switch raises :class:`BusError`
        (an un-driven bus). If False, such rings keep their ``src`` values
        unchanged (the PE latches its own register).
    stats
        Optional per-machine :class:`PlanCacheStats` sink; hit/miss is
        recorded there *and* in the module-wide counters, once per call.

    Returns
    -------
    numpy.ndarray
        ``received[p] = src[head(p)]`` for every PE ``p``, where ``head(p)``
        is the nearest Open node at-or-upstream of ``p`` on its ring
        (cyclic) — i.e. the extreme node of the cluster ``p`` belongs to.
        Shape is the broadcast of *src* and *open_plane* shapes.
    """
    s = _to_canonical(np.asarray(src), direction)
    o = np.asarray(open_plane, dtype=bool)
    if o.ndim == 2:
        if s.ndim == 2:
            plan = _cache_get(_broadcast_plans,
                              (direction, o.shape, o.tobytes()))
            hit = plan is not None
            if plan is None:
                plan = _plane_plan(_broadcast_plans, o, direction,
                                   _resolve_broadcast)
            _record(stats, "broadcast", hit)
            safe, all_driven, bad = plan
            if strict and not all_driven:
                raise BusError(
                    f"broadcast({direction}): ring {bad} has no Open switch; "
                    "the bus is un-driven"
                )
            out = np.take_along_axis(s, safe, axis=-1)
            return _from_canonical(out, direction)
        # Shared 2-D plane, (B, n, n) lane stack: lane-expanded flat plan.
        B = s.shape[0]
        key = (direction, o.shape, o.tobytes(), B, "bx")
        plan = _cache_get(_broadcast_plans, key)
        hit = plan is not None
        if plan is None:
            plan = _expand_broadcast_plan(
                _plane_plan(_broadcast_plans, o, direction,
                            _resolve_broadcast),
                B,
            )
            _cache_put(_broadcast_plans, key, plan)
        _record(stats, "broadcast", hit)
        if strict and not plan[4]:
            raise BusError(
                f"broadcast({direction}): ring {plan[5]} has no Open switch; "
                "the bus is un-driven"
            )
        return _from_canonical(_apply_broadcast_batched(s, plan), direction)
    if o.ndim != 3:
        raise ValueError(
            f"open_plane must be 2-D or a (B, n, n) stack, got {o.shape}"
        )
    key = (direction, o.shape, _stack_digest(o))
    plan = _cache_get(_broadcast_stacks, key)
    hit = plan is not None
    if plan is None:
        plan = _build_broadcast_stack(o, direction)
        _cache_put(_broadcast_stacks, key, plan, _STACK_CACHE_SIZE)
    _record(stats, "broadcast", hit)
    safe_full, (m, n), all_driven, bad = plan
    if strict and not all_driven:
        lane, ring = bad
        raise BusError(
            f"broadcast({direction}): lane {lane} ring {ring} has no Open "
            "switch; the bus is un-driven"
        )
    B = o.shape[0]
    if s.ndim == 2:
        s = np.broadcast_to(s, (B,) + s.shape)
    out = np.reshape(s, -1)[safe_full].reshape(B, m, n)
    return _from_canonical(out, direction)


def _apply_reduce(v: np.ndarray, cols: np.ndarray, starts: np.ndarray,
                  seg_map: np.ndarray, ufunc) -> np.ndarray:
    """Shared apply step: roll, flat ``reduceat``, scatter back, un-roll."""
    v_rolled = np.take_along_axis(v, cols, axis=-1)
    seg_vals = ufunc.reduceat(np.ascontiguousarray(v_rolled).reshape(-1),
                              starts)
    out_rolled = seg_vals[seg_map]
    out = np.empty_like(out_rolled)
    np.put_along_axis(out, cols, out_rolled, axis=-1)
    return out


def segmented_reduce(
    values: np.ndarray,
    open_plane: np.ndarray,
    direction: Direction,
    op: ReduceOp,
    *,
    strict: bool = False,
    stats: PlanCacheStats | None = None,
) -> np.ndarray:
    """Reduce *values* within each bus cluster; every member gets the result.

    A cluster is an Open node plus the Short nodes downstream of it up to the
    next Open node (cyclic). This models the constant-time wired-OR the
    paper's ``min()``/``selected_min()`` routines rely on, generalised to
    ``and``/``min``/``max``/``sum`` for the extension algorithms.

    Accepts batched ``(B, n, n)`` *values* with a shared 2-D or per-lane
    3-D *open_plane* — all lanes reduce in one flat ``reduceat``.

    Rings with no Open switch raise :class:`BusError` when *strict*,
    otherwise every node of such a ring receives the reduction over the
    whole ring (a single de-facto cluster).
    """
    if op not in _UFUNCS:
        raise ValueError(f"unknown reduction op {op!r}")
    ufunc = _UFUNCS[op]

    v = _to_canonical(np.asarray(values), direction)
    o = np.asarray(open_plane, dtype=bool)

    if o.ndim == 2:
        if v.ndim == 2:
            plan = _cache_get(_reduce_plans,
                              (direction, o.shape, o.tobytes()))
            hit = plan is not None
            if plan is None:
                plan = _plane_plan(_reduce_plans, o, direction,
                                   _resolve_reduce)
            _record(stats, "reduce", hit)
            cols, starts, seg_map, nseg, all_driven, bad = plan
            if strict and not all_driven:
                raise BusError(
                    f"segmented_reduce({direction}): ring {bad} has no "
                    "Open switch"
                )
            out = _apply_reduce(v, cols, starts, seg_map, ufunc)
            return _from_canonical(out, direction)
        # Shared 2-D plane, (B, n, n) lane stack: lane-expanded flat plan
        # (one reduceat — or, for whole-ring clusters, one SIMD axis
        # reduction — covers all lanes).
        B = v.shape[0]
        key = (direction, o.shape, o.tobytes(), B, "rx")
        plan = _cache_get(_reduce_plans, key)
        hit = plan is not None
        if plan is None:
            plan = _expand_reduce_plan(
                _plane_plan(_reduce_plans, o, direction, _resolve_reduce),
                B,
            )
            _cache_put(_reduce_plans, key, plan)
        _record(stats, "reduce", hit)
        if strict and not plan[7]:
            raise BusError(
                f"segmented_reduce({direction}): ring {plan[8]} has no "
                "Open switch"
            )
        return _from_canonical(_apply_reduce_batched(v, plan, ufunc),
                               direction)

    if o.ndim != 3:
        raise ValueError(
            f"open_plane must be 2-D or a (B, n, n) stack, got {o.shape}"
        )
    key = (direction, o.shape, _stack_digest(o))
    plan = _cache_get(_reduce_stacks, key)
    hit = plan is not None
    if plan is None:
        plan = _build_reduce_stack(o, direction)
        _cache_put(_reduce_stacks, key, plan, _STACK_CACHE_SIZE)
    _record(stats, "reduce", hit)
    roll_full, starts_full, seg_un, nseg, (m, n), all_driven, bad = plan
    if strict and not all_driven:
        lane, ring = bad
        raise BusError(
            f"segmented_reduce({direction}): lane {lane} ring {ring} has no "
            "Open switch"
        )
    B = o.shape[0]
    if v.ndim == 2:
        v = np.broadcast_to(v, (B,) + v.shape)
    flat = np.reshape(v, -1)[roll_full]
    out = ufunc.reduceat(flat, starts_full)[seg_un].reshape(B, m, n)
    return _from_canonical(out, direction)


def shift_values(
    src: np.ndarray,
    direction: Direction,
    *,
    torus: bool = True,
    fill=0,
) -> np.ndarray:
    """Nearest-neighbour shift: each PE receives its upstream neighbour's
    value (data moves *downstream*, i.e. ``shift(x, EAST)`` makes column
    ``j`` hold what column ``j-1`` held).

    With ``torus=False`` the array edge feeds in *fill* instead of wrapping.
    Lane stacks ``(B, n, n)`` shift all lanes in one roll.
    """
    s = _to_canonical(np.asarray(src), direction)
    out = np.roll(s, 1, axis=-1)
    if not torus:
        out = out.copy()
        out[..., 0] = fill
    return _from_canonical(out, direction)
