"""Vectorised resolution of segmented, circular PPA buses.

Every PPA bus operation reduces to one of two questions about each *ring*
(a full row or column of the torus, in the direction the controller chose):

1. **Broadcast** — which Open node drives the segment this PE belongs to?
   Per the PPC language specification (paper, Section 2), ``broadcast``
   "returns the value of the element of src corresponding to the extreme
   node of the cluster the processor belongs to": a cluster is an Open node
   (its *head*) plus the Short nodes downstream of it up to the next Open
   node, cyclically, and every member — the head included — receives the
   head's value. (The head receiving its own value is load-bearing: the
   paper's ``min()`` routine, statements 11-12, relies on it whenever a
   cluster head survives the bit-serial elimination.)

2. **Segmented reduction** (wired-OR and friends) — combine the values of a
   whole *cluster*: an Open node together with the Short nodes downstream of
   it, up to (excluding) the next Open node, cyclically.

Both are computed for the entire grid at once with numpy primitives
(cumulative maxima, ``reduceat`` over a rolled layout) — no per-PE Python
loops, per the project's hpc-parallel coding guides.

Canonical layout
----------------
All internal helpers operate on a canonical orientation: rings are *rows*
(axis 1) and downstream is *increasing column index*. :func:`_to_canonical`
transposes/flips inputs into that layout and :func:`_from_canonical` undoes
it; both are O(1) views or cheap copies.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Literal

import numpy as np

from repro.errors import BusError
from repro.ppa.directions import Direction

__all__ = [
    "broadcast_values",
    "segmented_reduce",
    "shift_values",
    "clear_plan_cache",
    "ReduceOp",
]

ReduceOp = Literal["or", "and", "min", "max", "sum"]

# ---------------------------------------------------------------------------
# Bus-plan cache
#
# Algorithms reprogram the same switch planes over and over (the MCP's
# bit-serial min issues ~2h wired-ORs per iteration against one plane), and
# resolving a plane into gather/reduceat indices dominated the profile. The
# resolution is a pure function of (plane bytes, direction), so a small LRU
# of "plans" makes repeat transactions index-lookup cheap. 64 entries is
# far beyond what any algorithm here cycles through.
# ---------------------------------------------------------------------------

_PLAN_CACHE_SIZE = 64
_broadcast_plans: "OrderedDict[tuple, tuple]" = OrderedDict()
_reduce_plans: "OrderedDict[tuple, tuple]" = OrderedDict()


def _cache_get(cache: "OrderedDict", key: tuple):
    try:
        value = cache.pop(key)
    except KeyError:
        return None
    cache[key] = value  # refresh LRU position
    return value


def _cache_put(cache: "OrderedDict", key: tuple, value: tuple) -> None:
    cache[key] = value
    while len(cache) > _PLAN_CACHE_SIZE:
        cache.popitem(last=False)


def clear_plan_cache() -> None:
    """Drop all cached bus plans (memory hygiene for huge sweeps)."""
    _broadcast_plans.clear()
    _reduce_plans.clear()

_UFUNCS = {
    "or": np.maximum,  # operands are 0/1 integers
    "and": np.minimum,
    "min": np.minimum,
    "max": np.maximum,
    "sum": np.add,
}


def _to_canonical(arr: np.ndarray, direction: Direction) -> np.ndarray:
    """View/copy of *arr* with rings on axis 1 and downstream = +1."""
    if direction.axis == 0:
        arr = arr.T
    if not direction.is_forward:
        arr = arr[:, ::-1]
    return arr


def _from_canonical(arr: np.ndarray, direction: Direction) -> np.ndarray:
    """Inverse of :func:`_to_canonical` (same sequence, reversed)."""
    if not direction.is_forward:
        arr = arr[:, ::-1]
    if direction.axis == 0:
        arr = arr.T
    return np.ascontiguousarray(arr)


def broadcast_values(
    src: np.ndarray,
    open_plane: np.ndarray,
    direction: Direction,
    *,
    strict: bool = False,
) -> np.ndarray:
    """Resolve one bus broadcast over the whole grid.

    Parameters
    ----------
    src
        Per-PE values to (potentially) inject.
    open_plane
        Boolean grid; ``True`` marks an Open switch-box.
    direction
        Controller-selected data-movement direction.
    strict
        If True, a ring with no Open switch raises :class:`BusError`
        (an un-driven bus). If False, such rings keep their ``src`` values
        unchanged (the PE latches its own register).

    Returns
    -------
    numpy.ndarray
        ``received[p] = src[head(p)]`` for every PE ``p``, where ``head(p)``
        is the nearest Open node at-or-upstream of ``p`` on its ring
        (cyclic) — i.e. the extreme node of the cluster ``p`` belongs to.
        Same shape/dtype as *src*.
    """
    s = _to_canonical(np.asarray(src), direction)
    o = np.asarray(open_plane, dtype=bool)
    key = (direction, o.shape, o.tobytes())
    plan = _cache_get(_broadcast_plans, key)
    if plan is None:
        oc = _to_canonical(o, direction)
        head, has_open = _head_index(oc)
        safe = np.where(head >= 0, head, np.arange(oc.shape[1])[None, :])
        plan = (safe, bool(has_open.all()), 
                -1 if has_open.all() else int(np.flatnonzero(~has_open)[0]))
        _cache_put(_broadcast_plans, key, plan)
    safe, all_driven, bad = plan
    if strict and not all_driven:
        raise BusError(
            f"broadcast({direction}): ring {bad} has no Open switch; "
            "the bus is un-driven"
        )
    out = np.take_along_axis(s, safe, axis=1)
    return _from_canonical(out, direction)


def _head_index(open_plane: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cluster head (Open node at-or-upstream, cyclic) per node.

    Canonical layout; returns ``(head, has_open)``. An Open node heads its
    own cluster.
    """
    m, n = open_plane.shape
    cols = np.arange(n, dtype=np.int64)
    idx = np.where(open_plane, cols, -1)
    incl = np.maximum.accumulate(idx, axis=1)
    last = incl[:, -1:]
    head = np.where(incl < 0, last, incl)
    return head, last[:, 0] >= 0


def segmented_reduce(
    values: np.ndarray,
    open_plane: np.ndarray,
    direction: Direction,
    op: ReduceOp,
    *,
    strict: bool = False,
) -> np.ndarray:
    """Reduce *values* within each bus cluster; every member gets the result.

    A cluster is an Open node plus the Short nodes downstream of it up to the
    next Open node (cyclic). This models the constant-time wired-OR the
    paper's ``min()``/``selected_min()`` routines rely on, generalised to
    ``and``/``min``/``max``/``sum`` for the extension algorithms.

    Rings with no Open switch raise :class:`BusError` when *strict*,
    otherwise every node of such a ring receives the reduction over the
    whole ring (a single de-facto cluster).
    """
    if op not in _UFUNCS:
        raise ValueError(f"unknown reduction op {op!r}")
    ufunc = _UFUNCS[op]

    v = np.ascontiguousarray(_to_canonical(np.asarray(values), direction))
    o_raw = np.asarray(open_plane, dtype=bool)
    m, n = v.shape

    key = (direction, o_raw.shape, o_raw.tobytes())
    plan = _cache_get(_reduce_plans, key)
    if plan is None:
        o = np.ascontiguousarray(_to_canonical(o_raw, direction))
        has_open = o.any(axis=1)
        # Roll each ring so it starts at its first Open node; clusters
        # become contiguous runs and `reduceat` applies. Open-free rings
        # keep offset 0 and form one whole-ring segment.
        first = np.where(has_open, np.argmax(o, axis=1), 0)
        rows = np.arange(m)[:, None]
        cols = (np.arange(n)[None, :] + first[:, None]) % n
        o_rolled = o[rows, cols]
        boundary = o_rolled.copy()
        boundary[:, 0] = True  # every ring contributes >= 1 segment
        flat_bound = boundary.reshape(-1)
        starts = np.flatnonzero(flat_bound)
        seg_id = np.cumsum(flat_bound) - 1
        plan = (
            rows,
            cols,
            starts,
            seg_id,
            bool(has_open.all()),
            -1 if has_open.all() else int(np.flatnonzero(~has_open)[0]),
        )
        _cache_put(_reduce_plans, key, plan)
    rows, cols, starts, seg_id, all_driven, bad = plan
    if strict and not all_driven:
        raise BusError(
            f"segmented_reduce({direction}): ring {bad} has no Open switch"
        )

    v_rolled = v[rows, cols]
    seg_vals = ufunc.reduceat(v_rolled.reshape(-1), starts)
    out_rolled = seg_vals[seg_id].reshape(m, n)

    # Undo the roll.
    out = np.empty_like(out_rolled)
    out[rows, cols] = out_rolled
    return _from_canonical(out, direction)


def shift_values(
    src: np.ndarray,
    direction: Direction,
    *,
    torus: bool = True,
    fill=0,
) -> np.ndarray:
    """Nearest-neighbour shift: each PE receives its upstream neighbour's
    value (data moves *downstream*, i.e. ``shift(x, EAST)`` makes column
    ``j`` hold what column ``j-1`` held).

    With ``torus=False`` the array edge feeds in *fill* instead of wrapping.
    """
    s = _to_canonical(np.asarray(src), direction)
    out = np.roll(s, 1, axis=1)
    if not torus:
        out = out.copy()
        out[:, 0] = fill
    return _from_canonical(out, direction)
