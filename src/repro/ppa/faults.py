"""Switch-box and bus fault injection.

Reference [2]'s argument for the PPA is that its restricted switch-box is
*hardware implementable*; a hardware artefact can fail. This module models
three fault classes a two-state switch-box and its bus admit:

**Permanent stuck-at faults** (:class:`SwitchFault`) — the original T14
model:

``STUCK_SHORT``
    The switch can no longer disconnect the bus: it behaves as Short even
    when the instruction's ``L`` operand marks it Open. The PE silently
    stops driving its cluster — downstream nodes hear the *previous* head.

``STUCK_OPEN``
    The switch can no longer close: it behaves as Open even when ``L``
    marks it Short, splitting its ring and injecting the PE's (stale)
    register value into the bus.

**Intermittent stuck-at faults** (:class:`IntermittentFault`) — the same
two stuck-at modes, but marginal rather than hard: the switch misbehaves
only on a (seeded, per-transaction) random subset of bus transactions.
This is the classic loose-bond / marginal-timing failure mode that a
one-shot self-test can easily miss.

**Transient bit-flips** (:class:`TransientFault`) — single-event upsets on
the bus word itself: with a per-transaction activation probability, one
bit of the value *received* by a given PE is inverted for that transaction
only. The switch programming is unaffected; only the latched word is.

A :class:`FaultPlan` carries any mix of the three; attach one with
``machine.inject_faults(plan)``. Stuck-at faults (permanent and currently
active intermittent ones) rewrite the *effective switch plane* of every
bus transaction via :meth:`FaultPlan.effective_plane`; transient flips
corrupt the received values via :meth:`FaultPlan.corrupt`. Faults apply
per bus *axis* (each PE has one switch-box per bus set, so a fault may
afflict the column-bus switch, the row-bus switch, or both).

Randomness is owned by the plan: activation draws come from one
:class:`numpy.random.Generator` seeded by :attr:`FaultPlan.seed`, consumed
in a fixed order (one draw per intermittent fault, then one per transient
fault, per bus transaction — independent of direction), so a campaign
replays bit-for-bit for a given transaction sequence.

Interaction with the bus-plan caches (audited for PR 3)
-------------------------------------------------------
:mod:`repro.ppa.segments` caches resolved bus plans keyed on the **bytes
of the effective switch plane** (plus direction/shape/batch). Faults are
applied *before* the kernel is entered — the machine hands the kernels
the already-faulted plane — so a faulted transaction and a faultless one
can never share a cache entry: a stuck-at fault changes the plane bytes,
hence the key. Intermittent faults that happen to be inactive for a
transaction leave the plane bytes untouched and correctly *reuse* the
faultless plan. Transient flips never touch switch planes at all (they
corrupt values after the kernel returns), so they are cache-invisible by
construction. ``tests/ppa/test_fault_batched.py`` pins all three
properties against the serial, lane-expanded and per-lane-stack fast
paths.

:mod:`repro.ppa.selftest` localises the permanent faults from the outside
using only bus operations; :mod:`repro.resilience` builds the online
detect → diagnose → recover loop for all three classes on top.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "FaultKind",
    "SwitchFault",
    "IntermittentFault",
    "TransientFault",
    "FaultPlan",
]


class FaultKind(enum.Enum):
    STUCK_SHORT = "stuck-short"
    STUCK_OPEN = "stuck-open"


@dataclass(frozen=True)
class SwitchFault:
    """One permanently faulty switch-box.

    Attributes
    ----------
    row, col
        PE coordinates.
    kind
        Stuck-at mode.
    axis
        0 = the column-bus switch, 1 = the row-bus switch, None = both.
    """

    row: int
    col: int
    kind: FaultKind
    axis: int | None = None

    def affects_axis(self, axis: int) -> bool:
        return self.axis is None or self.axis == axis


@dataclass(frozen=True)
class IntermittentFault:
    """A stuck-at fault that activates per transaction with probability
    :attr:`probability` (drawn from the plan's seeded RNG)."""

    row: int
    col: int
    kind: FaultKind
    probability: float = 1.0
    axis: int | None = None

    def affects_axis(self, axis: int) -> bool:
        return self.axis is None or self.axis == axis


@dataclass(frozen=True)
class TransientFault:
    """A per-transaction bit-flip on the word received at one PE.

    Attributes
    ----------
    row, col
        PE coordinates whose *received* value is corrupted.
    bit
        Bit position inverted. Flips wider than the transaction's operand
        (e.g. ``bit >= 1`` on a 1-bit wired-OR transfer) have no physical
        lane to hit and are no-ops for that transaction.
    probability
        Per-transaction activation probability.
    axis
        Restrict to one bus axis (0 = column buses, 1 = row buses), or
        ``None`` for both.
    """

    row: int
    col: int
    bit: int = 0
    probability: float = 1.0
    axis: int | None = None

    def affects_axis(self, axis: int) -> bool:
        return self.axis is None or self.axis == axis


def _check_probability(probability: float) -> None:
    if not (0.0 < probability <= 1.0):
        raise ConfigurationError(
            f"activation probability must be in (0, 1], got {probability}"
        )


@dataclass
class FaultPlan:
    """A set of switch/bus faults applied to every bus transaction.

    ``faults`` are the permanent stuck-ats; ``intermittents`` and
    ``transients`` are the probabilistic classes, activated per
    transaction from a :class:`numpy.random.Generator` seeded with
    :attr:`seed` (call :meth:`reseed` to replay a campaign).
    """

    faults: list[SwitchFault] = field(default_factory=list)
    intermittents: list[IntermittentFault] = field(default_factory=list)
    transients: list[TransientFault] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(
        self,
        row: int,
        col: int,
        kind: FaultKind,
        axis: int | None = None,
    ) -> "FaultPlan":
        """Add a permanent stuck-at fault; returns ``self`` for chaining."""
        self._check_axis_kind(kind, axis)
        self.faults.append(SwitchFault(row, col, kind, axis))
        return self

    def add_intermittent(
        self,
        row: int,
        col: int,
        kind: FaultKind,
        probability: float,
        axis: int | None = None,
    ) -> "FaultPlan":
        """Add an intermittent stuck-at fault; returns ``self``."""
        self._check_axis_kind(kind, axis)
        _check_probability(probability)
        self.intermittents.append(
            IntermittentFault(row, col, kind, probability, axis)
        )
        return self

    def add_transient(
        self,
        row: int,
        col: int,
        bit: int,
        probability: float,
        axis: int | None = None,
    ) -> "FaultPlan":
        """Add a transient bus-word bit-flip; returns ``self``."""
        if axis not in (None, 0, 1):
            raise ConfigurationError(f"axis must be 0, 1 or None, got {axis}")
        if bit < 0:
            raise ConfigurationError(f"bit index must be >= 0, got {bit}")
        _check_probability(probability)
        self.transients.append(
            TransientFault(row, col, bit, probability, axis)
        )
        return self

    @staticmethod
    def _check_axis_kind(kind: FaultKind, axis: int | None) -> None:
        if axis not in (None, 0, 1):
            raise ConfigurationError(f"axis must be 0, 1 or None, got {axis}")
        if not isinstance(kind, FaultKind):
            raise ConfigurationError(f"kind must be a FaultKind, got {kind!r}")

    def reseed(self, seed: int | None = None) -> "FaultPlan":
        """Reset the activation RNG (to :attr:`seed` or a new one)."""
        if seed is not None:
            self.seed = seed
        self._rng = np.random.default_rng(self.seed)
        return self

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(
        self, shape: tuple[int, int], word_bits: int | None = None
    ) -> None:
        """Reject out-of-grid coordinates, conflicting duplicates on the
        same physical switch/axis, invalid probabilities and (when
        *word_bits* is given) bit indices outside the machine word."""
        stuck = [*self.faults, *self.intermittents]
        for f in [*stuck, *self.transients]:
            if not (0 <= f.row < shape[0] and 0 <= f.col < shape[1]):
                raise ConfigurationError(
                    f"fault at ({f.row}, {f.col}) outside grid {shape}"
                )
        # Two stuck-at faults on the same physical switch (same PE, same
        # bus axis) are contradictory when the kinds differ and redundant
        # otherwise — either way the plan is malformed.
        for axis in (0, 1):
            seen: set[tuple[int, int]] = set()
            for f in stuck:
                if not f.affects_axis(axis):
                    continue
                key = (f.row, f.col)
                if key in seen:
                    raise ConfigurationError(
                        f"duplicate stuck-at fault on switch ({f.row}, "
                        f"{f.col}) axis {axis}"
                    )
                seen.add(key)
            seen_t: set[tuple[int, int, int]] = set()
            for t in self.transients:
                if not t.affects_axis(axis):
                    continue
                key_t = (t.row, t.col, t.bit)
                if key_t in seen_t:
                    raise ConfigurationError(
                        f"duplicate transient fault on PE ({t.row}, "
                        f"{t.col}) bit {t.bit} axis {axis}"
                    )
                seen_t.add(key_t)
        for f in self.intermittents:
            _check_probability(f.probability)
        for t in self.transients:
            _check_probability(t.probability)
            if word_bits is not None and t.bit >= word_bits:
                raise ConfigurationError(
                    f"transient bit {t.bit} outside the {word_bits}-bit "
                    "machine word"
                )

    def __len__(self) -> int:
        return len(self.faults) + len(self.intermittents) + len(self.transients)

    @property
    def is_static(self) -> bool:
        """True when the plan has no probabilistic (RNG-driven) faults."""
        return not self.intermittents and not self.transients

    # ------------------------------------------------------------------
    # Per-transaction application
    # ------------------------------------------------------------------

    def apply(self, open_plane: np.ndarray, axis: int) -> np.ndarray:
        """Effective switch plane after the *permanent* stuck-at faults.

        Works on a single ``(n, n)`` plane or a batched ``(B, n, n)`` lane
        stack — a hardware fault afflicts the same physical switch-box in
        every lane, so the fault is applied across the leading axis.
        Deterministic and RNG-free; :meth:`effective_plane` is the
        per-transaction entry point that adds the intermittent class.
        """
        return self._apply_stuck(open_plane, axis, self.faults)

    @staticmethod
    def _apply_stuck(open_plane: np.ndarray, axis: int, stuck) -> np.ndarray:
        active = [f for f in stuck if f.affects_axis(axis)]
        if not active:
            return open_plane
        out = open_plane.copy()
        for f in active:
            out[..., f.row, f.col] = f.kind is FaultKind.STUCK_OPEN
        return out

    def effective_plane(self, open_plane: np.ndarray, axis: int) -> np.ndarray:
        """Effective switch plane for **one bus transaction**.

        Applies every permanent fault plus the intermittent faults whose
        activation draw fires for this transaction. Exactly one RNG draw
        is consumed per intermittent fault per call, in list order,
        regardless of *axis* — keeping the activation stream independent
        of the direction sequence an algorithm happens to issue.
        """
        stuck: list = list(self.faults)
        if self.intermittents:
            draws = self._rng.random(len(self.intermittents))
            stuck.extend(
                f
                for f, u in zip(self.intermittents, draws)
                if u < f.probability
            )
        return self._apply_stuck(open_plane, axis, stuck)

    def corrupt(
        self, values: np.ndarray, axis: int, *, width: int
    ) -> np.ndarray:
        """Apply this transaction's transient bit-flips to *values*.

        *values* is the array of received words (``(n, n)`` or a batched
        ``(B, n, n)`` stack — a flip at a physical PE hits every lane, as
        with stuck-ats); *width* is the operand width of the transfer
        (1 for boolean wired-OR traffic, the machine word otherwise).
        Flips at ``bit >= width`` have no lane to hit and are skipped.
        One RNG draw is consumed per transient fault per call, in list
        order, regardless of *axis*. Returns *values* unchanged (no copy)
        when nothing fires.
        """
        if not self.transients:
            return values
        draws = self._rng.random(len(self.transients))
        active = [
            f
            for f, u in zip(self.transients, draws)
            if u < f.probability and f.affects_axis(axis) and f.bit < width
        ]
        if not active:
            return values
        out = np.array(values, copy=True)
        for f in active:
            if out.dtype == np.bool_:
                out[..., f.row, f.col] ^= True
            else:
                out[..., f.row, f.col] = np.bitwise_xor(
                    out[..., f.row, f.col], np.int64(1) << np.int64(f.bit)
                )
        return out
