"""Switch-box fault injection.

Reference [2]'s argument for the PPA is that its restricted switch-box is
*hardware implementable*; a hardware artefact can fail. This module models
the two stuck-at faults a two-state switch-box admits:

``STUCK_SHORT``
    The switch can no longer disconnect the bus: it behaves as Short even
    when the instruction's ``L`` operand marks it Open. The PE silently
    stops driving its cluster — downstream nodes hear the *previous* head.

``STUCK_OPEN``
    The switch can no longer close: it behaves as Open even when ``L``
    marks it Short, splitting its ring and injecting the PE's (stale)
    register value into the bus.

A :class:`FaultPlan` rewrites the effective switch plane of every bus
transaction; attach one with ``machine.inject_faults(plan)``. Faults apply
per bus *axis* (each PE has one switch-box per bus set, so a fault may
afflict the row switch, the column switch, or both).

:mod:`repro.ppa.selftest` shows that the faults are not just destructive
decoration: a short diagnostic program localises every faulty switch from
the outside, using only bus operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FaultKind", "SwitchFault", "FaultPlan"]


class FaultKind(enum.Enum):
    STUCK_SHORT = "stuck-short"
    STUCK_OPEN = "stuck-open"


@dataclass(frozen=True)
class SwitchFault:
    """One faulty switch-box.

    Attributes
    ----------
    row, col
        PE coordinates.
    kind
        Stuck-at mode.
    axis
        0 = the column-bus switch, 1 = the row-bus switch, None = both.
    """

    row: int
    col: int
    kind: FaultKind
    axis: int | None = None

    def affects_axis(self, axis: int) -> bool:
        return self.axis is None or self.axis == axis


@dataclass
class FaultPlan:
    """A set of switch faults applied to every bus transaction."""

    faults: list[SwitchFault] = field(default_factory=list)

    def add(
        self,
        row: int,
        col: int,
        kind: FaultKind,
        axis: int | None = None,
    ) -> "FaultPlan":
        if axis not in (None, 0, 1):
            raise ConfigurationError(f"axis must be 0, 1 or None, got {axis}")
        if not isinstance(kind, FaultKind):
            raise ConfigurationError(f"kind must be a FaultKind, got {kind!r}")
        self.faults.append(SwitchFault(row, col, kind, axis))
        return self

    def validate(self, shape: tuple[int, int]) -> None:
        for f in self.faults:
            if not (0 <= f.row < shape[0] and 0 <= f.col < shape[1]):
                raise ConfigurationError(
                    f"fault at ({f.row}, {f.col}) outside grid {shape}"
                )

    def __len__(self) -> int:
        return len(self.faults)

    def apply(self, open_plane: np.ndarray, axis: int) -> np.ndarray:
        """Effective switch plane after the stuck-at faults, for one axis.

        Works on a single ``(n, n)`` plane or a batched ``(B, n, n)`` lane
        stack — a hardware fault afflicts the same physical switch-box in
        every lane, so the fault is applied across the leading axis.
        """
        if not self.faults:
            return open_plane
        out = open_plane.copy()
        for f in self.faults:
            if not f.affects_axis(axis):
                continue
            out[..., f.row, f.col] = f.kind is FaultKind.STUCK_OPEN
        return out
