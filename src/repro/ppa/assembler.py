"""Two-pass assembler for PPA assembly text.

Syntax, one instruction per line::

    ; semicolon comments
    init:   ldi   r1, 0          ; labels end with ':'
            bcast r2, r1, SOUTH, r6
            saddi s3, -1
            sjge  s3, init
            halt

Registers ``r0..r15`` / ``s0..s7``, directions ``NORTH EAST SOUTH WEST``
(case-insensitive), immediates decimal or ``0x`` hex (negative allowed
where meaningful). Pass 1 collects label addresses, pass 2 encodes
operands against :data:`repro.ppa.isa.SIGNATURES`.
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError
from repro.ppa.directions import Direction
from repro.ppa.isa import Instruction, N_PREGS, N_SREGS, Opcode, SIGNATURES

__all__ = ["assemble", "AssemblyError"]


class AssemblyError(ConfigurationError):
    """Malformed assembly source."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


_LABEL_RE = re.compile(r"^[A-Za-z_]\w*$")
_OPCODES = {op.value: op for op in Opcode}
_DIRECTIONS = {d.name: d for d in Direction}


def _parse_operand(kind: str, text: str, labels: dict[str, int], line: int):
    text = text.strip()
    if kind == "preg":
        m = re.fullmatch(r"[rR](\d+)", text)
        if not m or not (0 <= int(m.group(1)) < N_PREGS):
            raise AssemblyError(
                f"expected parallel register r0..r{N_PREGS - 1}, got {text!r}",
                line,
            )
        return int(m.group(1))
    if kind == "sreg":
        m = re.fullmatch(r"[sS](\d+)", text)
        if not m or not (0 <= int(m.group(1)) < N_SREGS):
            raise AssemblyError(
                f"expected scalar register s0..s{N_SREGS - 1}, got {text!r}",
                line,
            )
        return int(m.group(1))
    if kind == "imm":
        try:
            return int(text, 0)
        except ValueError:
            raise AssemblyError(f"expected an integer, got {text!r}", line)
    if kind == "dir":
        d = _DIRECTIONS.get(text.upper())
        if d is None:
            raise AssemblyError(f"expected a direction, got {text!r}", line)
        return d
    if kind == "label":
        if text not in labels:
            raise AssemblyError(f"undefined label {text!r}", line)
        return labels[text]
    raise AssemblyError(f"internal: unknown operand kind {kind!r}", line)


def _split_lines(source: str):
    """Yield (line_number, label_or_None, mnemonic_or_None, operand_text)."""
    for number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split(";", 1)[0].strip()
        if not text:
            continue
        label = None
        if ":" in text:
            label, text = text.split(":", 1)
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblyError(f"invalid label {label!r}", number)
            text = text.strip()
        if not text:
            yield number, label, None, ""
            continue
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        yield number, label, mnemonic, rest


def assemble(source: str) -> list[Instruction]:
    """Assemble *source* into an instruction list (labels resolved)."""
    # Pass 1: label addresses.
    labels: dict[str, int] = {}
    address = 0
    for number, label, mnemonic, _ in _split_lines(source):
        if label is not None:
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", number)
            labels[label] = address
        if mnemonic is not None:
            address += 1

    # Pass 2: encode.
    program: list[Instruction] = []
    for number, _, mnemonic, rest in _split_lines(source):
        if mnemonic is None:
            continue
        opcode = _OPCODES.get(mnemonic)
        if opcode is None:
            raise AssemblyError(f"unknown instruction {mnemonic!r}", number)
        signature = SIGNATURES[opcode]
        raw_ops = [o for o in (p.strip() for p in rest.split(",")) if o] if rest else []
        if len(raw_ops) != len(signature):
            raise AssemblyError(
                f"{mnemonic} expects {len(signature)} operand(s) "
                f"({', '.join(signature)}), got {len(raw_ops)}",
                number,
            )
        operands = tuple(
            _parse_operand(kind, text, labels, number)
            for kind, text in zip(signature, raw_ops)
        )
        program.append(Instruction(opcode, operands, number))
    if not any(i.opcode is Opcode.HALT for i in program):
        raise AssemblyError("program has no halt instruction", 0)
    return program
