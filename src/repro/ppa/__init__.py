"""Polymorphic Processor Array (PPA) machine simulator.

This package models the architecture of Maresca, Li and Baglietto's
Polymorphic Processor Array: an ``n x n`` SIMD mesh of processing elements
(PEs), each equipped with a switch-box that either injects the PE's value
into the row/column bus (*Open*) or lets data propagate through (*Short*).
At every instruction the central controller selects a single data-movement
direction for the whole array; the per-PE switch configuration may differ,
which dynamically partitions each bus into independent sub-buses.

Public surface
--------------
:class:`~repro.ppa.machine.PPAMachine`
    The simulator facade: parallel variables, ``shift``, ``broadcast``,
    wired-OR, activity masks and cycle counters.
:class:`~repro.ppa.directions.Direction`
    The four SIMD data-movement directions.
:class:`~repro.ppa.topology.PPAConfig`
    Machine configuration (size, word width, bus cost model, ...).
"""

from repro.ppa.directions import Direction, opposite
from repro.ppa.switchbox import OPEN, SHORT
from repro.ppa.topology import BusCostModel, PPAConfig
from repro.ppa.counters import CycleCounters
from repro.ppa.machine import PPAMachine
from repro.ppa.faults import FaultKind, FaultPlan, SwitchFault
from repro.ppa.selftest import SelfTestReport, diagnose_switches
from repro.ppa.isa import Instruction, Opcode
from repro.ppa.assembler import assemble
from repro.ppa.executor import ExecutionState, execute

__all__ = [
    "Direction",
    "opposite",
    "OPEN",
    "SHORT",
    "BusCostModel",
    "PPAConfig",
    "CycleCounters",
    "PPAMachine",
    "FaultKind",
    "FaultPlan",
    "SwitchFault",
    "SelfTestReport",
    "diagnose_switches",
    "Instruction",
    "Opcode",
    "assemble",
    "ExecutionState",
    "execute",
]
