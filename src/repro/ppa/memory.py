"""Per-PE local memory model.

The PPA allocates ``parallel`` variables as one word per PE (paper,
Section 2: "a memorization class called parallel ... allocated in multiple
copies in the local memory of each PE"). :class:`ParallelMemory` is the
named-variable table used by the PPC interpreter and available to the DSL;
it tracks allocation so experiments can report per-PE memory footprints.

Grid state is stored as ``int64`` numpy arrays regardless of the machine's
logical word width ``h``; ``h`` constrains *values* (enforced by the
algorithms), not storage, which keeps the simulator vectorisable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import VariableError

__all__ = ["ParallelMemory"]

_DTYPES = {"int": np.int64, "logical": np.bool_}


class ParallelMemory:
    """A named table of parallel (per-PE) variables on one machine grid."""

    def __init__(self, shape: tuple[int, ...]):
        #: grid shape — ``(n, n)``, or ``(B, n, n)`` on a batched machine
        #: (one copy of every variable per lane; see ``PPAMachine(batch=B)``)
        self._shape = tuple(shape)
        self._vars: dict[str, np.ndarray] = {}
        self._kinds: dict[str, str] = {}

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    def declare(self, name: str, kind: str = "int", init=None) -> np.ndarray:
        """Allocate variable *name* of *kind* (``"int"`` or ``"logical"``).

        Re-declaring an existing name is an error (mirrors C block scoping
        handled one level up by the interpreter's scopes).
        """
        if kind not in _DTYPES:
            raise VariableError(f"unknown parallel kind {kind!r}")
        if name in self._vars:
            raise VariableError(f"parallel variable {name!r} already declared")
        dtype = _DTYPES[kind]
        if init is None:
            arr = np.zeros(self._shape, dtype=dtype)
        else:
            arr = np.array(np.broadcast_to(init, self._shape), dtype=dtype)
        self._vars[name] = arr
        self._kinds[name] = kind
        return arr

    def read(self, name: str) -> np.ndarray:
        try:
            return self._vars[name]
        except KeyError:
            raise VariableError(f"undeclared parallel variable {name!r}") from None

    def write(self, name: str, value, mask: np.ndarray | None = None) -> None:
        """Store *value* into *name*, optionally under an activity *mask*."""
        arr = self.read(name)
        value = np.broadcast_to(np.asarray(value, dtype=arr.dtype), self._shape)
        if mask is None:
            arr[...] = value
        else:
            np.copyto(arr, value, where=mask)

    def kind(self, name: str) -> str:
        self.read(name)
        return self._kinds[name]

    def free(self, name: str) -> None:
        if name not in self._vars:
            raise VariableError(f"undeclared parallel variable {name!r}")
        del self._vars[name]
        del self._kinds[name]

    def names(self) -> list[str]:
        return sorted(self._vars)

    def words_allocated(self) -> int:
        """Number of per-PE words currently allocated (one per variable)."""
        return len(self._vars)

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def __len__(self) -> int:
        return len(self._vars)
