"""Instruction and bus-cycle accounting.

All experiment tables in EXPERIMENTS.md are expressed in these counters, so
results are deterministic and independent of the host machine. The
convention follows the paper's cost statements:

* every SIMD instruction issued by the controller bumps ``instructions``;
* ``bus_cycles`` weighs bus transactions by the machine's
  :class:`~repro.ppa.topology.BusCostModel` (1 each under the paper's
  unit-cost assumption);
* local ALU work (adds, compares, mask updates) is tracked separately so
  that the *communication* complexity the paper analyses can be isolated.

``snapshot``/``diff``/``merge`` are **round-trip safe**: a snapshot always
carries every counter field, ``diff`` and ``merge`` reject dictionaries
whose key set does not match (a silent ``get(k, 0)`` fallback previously
hid typos and version skew between recorded snapshots), and
:meth:`CycleCounters.from_snapshot` reconstructs a bundle such that
``CycleCounters.from_snapshot(c.snapshot()).snapshot() == c.snapshot()``.

:meth:`CycleCounters.checkpoint` is the measurement primitive the
:mod:`repro.telemetry` span tracer is built on: it reads counters at entry
and exit and exposes the delta, without ever *writing* a counter — which is
what guarantees telemetry adds zero counter overhead.

Two kinds of accounting live here:

* **machine-cost counters** — the priced cost model above. These make up
  the snapshot vocabulary (:meth:`CycleCounters.field_names`) and every
  recorded golden value.
* **host-side metrics** — measurements of the *simulator* itself, not the
  simulated machine: :class:`PlanCacheStats` tracks the bus-plan LRU of
  :mod:`repro.ppa.segments`. They are deliberately **excluded** from
  ``snapshot``/``diff``/``merge`` so that golden counter values, profile
  drift checks and the batched/serial counter-parity guarantees stay
  independent of host cache state.

:class:`LaneCounters` adds the batch dimension: a batched machine
(``PPAMachine(..., batch=B)``) carries one *counter plane* per lane, so a
lane that converges early stops accruing and its delta prices exactly what
a serial run of that lane would have cost (see ``core/batched.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Iterator, Mapping

import numpy as np

__all__ = [
    "CycleCounters",
    "CounterCheckpoint",
    "LaneCounters",
    "PlanCacheStats",
]


@dataclass
class PlanCacheStats:
    """Hit/miss tallies of the bus-plan LRU (host-side metric).

    One hit or miss is recorded per *public* bus resolution
    (:func:`repro.ppa.segments.broadcast_values` /
    :func:`~repro.ppa.segments.segmented_reduce`): a hit means the resolved
    gather/``reduceat`` plan for the call's switch plane (or plane *stack*,
    in batched mode) was served from cache. Per-lane plan lookups made
    while assembling a batched stack plan are not double-counted.

    Not part of the :class:`CycleCounters` snapshot vocabulary — cache
    behaviour depends on process history, so it must never leak into golden
    counter values or profile drift comparisons.
    """

    broadcast_hits: int = 0
    broadcast_misses: int = 0
    reduce_hits: int = 0
    reduce_misses: int = 0

    @property
    def hits(self) -> int:
        return self.broadcast_hits + self.reduce_hits

    @property
    def misses(self) -> int:
        return self.broadcast_misses + self.reduce_misses

    def snapshot(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def diff(self, before: Mapping[str, int]) -> dict[str, int]:
        """Stats accumulated since *before* (a prior :meth:`snapshot`)."""
        return {k: v - int(before.get(k, 0)) for k, v in self.snapshot().items()}

    def merge(self, other: "PlanCacheStats | Mapping[str, int]") -> None:
        if isinstance(other, PlanCacheStats):
            other = other.snapshot()
        for k, v in other.items():
            setattr(self, k, getattr(self, k) + int(v))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


@dataclass
class CounterCheckpoint:
    """Handle yielded by :meth:`CycleCounters.checkpoint`.

    ``before`` is the snapshot taken at entry; ``delta`` is ``None`` while
    the ``with`` block is still open and holds the counts accumulated
    inside the block once it exits (including on exceptions).
    """

    before: dict[str, int]
    delta: dict[str, int] | None = None


@dataclass
class CycleCounters:
    """Mutable counter bundle attached to a machine instance."""

    instructions: int = 0
    broadcasts: int = 0
    reductions: int = 0
    shifts: int = 0
    alu_ops: int = 0
    global_ors: int = 0
    bus_cycles: int = 0
    bit_cycles: int = 0
    """Bus cycles weighted by operand width: a word transaction on a 1-bit
    bus costs ``word_bits`` bit-cycles, a wired-OR of flags costs 1. This is
    the metric that compares bit-serial machines (PPA, GCN) with
    word-stepped ones (hypercube) on equal footing; see experiment T5."""

    plan_cache: PlanCacheStats = field(
        default_factory=PlanCacheStats,
        repr=False,
        compare=False,
        metadata={"host": True},
    )
    """Host-side bus-plan cache hit/miss tallies for this machine. Excluded
    from the snapshot vocabulary (see module docstring); read it directly
    (``machine.counters.plan_cache.hits``) or via its own ``snapshot()``."""

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """The machine-cost counter vocabulary, in declaration order.

        Host-side metric fields (``metadata={"host": True}``) are excluded:
        they are not part of the priced cost model.
        """
        return tuple(
            f.name for f in fields(cls) if not f.metadata.get("host")
        )

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy of the current counts (always every cost field)."""
        return {name: getattr(self, name) for name in self.field_names()}

    def reset(self) -> None:
        for name in self.field_names():
            setattr(self, name, 0)
        self.plan_cache.reset()

    def _require_full(self, mapping: Mapping[str, int], what: str) -> None:
        names = set(self.field_names())
        unknown = set(mapping) - names
        missing = names - set(mapping)
        if unknown or missing:
            parts = []
            if unknown:
                parts.append(f"unknown keys {sorted(unknown)}")
            if missing:
                parts.append(f"missing keys {sorted(missing)}")
            raise ValueError(
                f"{what} is not a complete counter snapshot: "
                + "; ".join(parts)
            )

    def diff(self, before: Mapping[str, int]) -> dict[str, int]:
        """Counts accumulated since *before* (a prior :meth:`snapshot`).

        *before* must be a complete snapshot — partial dictionaries raise
        :class:`ValueError` instead of being silently zero-filled.
        """
        self._require_full(before, "diff() argument")
        return {k: v - before[k] for k, v in self.snapshot().items()}

    def merge(self, other: "CycleCounters | Mapping[str, int]") -> None:
        """Add *other*'s counts into this bundle (for aggregating runs).

        Accepts another :class:`CycleCounters` or a complete snapshot dict.
        When *other* is a :class:`CycleCounters`, its host-side
        :attr:`plan_cache` stats are merged too.
        """
        if isinstance(other, CycleCounters):
            self.plan_cache.merge(other.plan_cache)
            other = other.snapshot()
        self._require_full(other, "merge() argument")
        for k, v in other.items():
            setattr(self, k, getattr(self, k) + v)

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, int]) -> "CycleCounters":
        """Rebuild a bundle from a complete :meth:`snapshot` dict."""
        c = cls()
        c._require_full(snapshot, "from_snapshot() argument")
        for k, v in snapshot.items():
            setattr(c, k, int(v))
        return c

    @contextmanager
    def checkpoint(self) -> Iterator[CounterCheckpoint]:
        """Measure the counts accumulated inside a ``with`` block.

        >>> c = CycleCounters()
        >>> with c.checkpoint() as cp:
        ...     c.instructions += 3
        >>> cp.delta["instructions"]
        3

        Read-only with respect to the counters themselves: the span tracer
        uses this to attribute cycles to phases without perturbing them.
        """
        cp = CounterCheckpoint(before=self.snapshot())
        try:
            yield cp
        finally:
            cp.delta = self.diff(cp.before)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"CycleCounters({parts})"


class LaneCounters:
    """Per-lane counter planes for a batched machine.

    A batched :class:`~repro.ppa.machine.PPAMachine` executes one SIMD
    instruction across ``B`` independent problem lanes; its scalar
    :class:`CycleCounters` bundle counts that instruction **once** (it is
    one controller issue on the batched machine), while this structure
    prices it **per lane** — each active lane is charged what a serial run
    of that lane would have been charged. Lanes masked inactive (converged)
    accrue nothing, which is what makes a batched run's per-lane deltas
    bit-identical to the corresponding serial runs.

    Vocabulary and exactness rules mirror :class:`CycleCounters`:
    ``snapshot``/``diff``/``merge`` are round-trip safe over the same
    field set, with one int64 vector of length ``lanes`` per field.
    """

    __slots__ = ("lanes", "_data")

    def __init__(self, lanes: int):
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.lanes = int(lanes)
        self._data: dict[str, np.ndarray] = {
            name: np.zeros(self.lanes, dtype=np.int64)
            for name in CycleCounters.field_names()
        }

    # -- accumulation ----------------------------------------------------

    def add(
        self,
        increments: Mapping[str, int],
        mask: np.ndarray | None = None,
    ) -> None:
        """Charge *increments* to every lane (or only to masked lanes).

        *mask* is a boolean vector of length :attr:`lanes`; ``None`` means
        all lanes. Unknown counter names raise :class:`ValueError` (same
        typo protection as :meth:`CycleCounters.diff`).
        """
        for name, value in increments.items():
            try:
                plane = self._data[name]
            except KeyError:
                raise ValueError(
                    f"unknown counter {name!r}; vocabulary is "
                    f"{CycleCounters.field_names()}"
                ) from None
            if mask is None:
                plane += value
            else:
                plane[mask] += value

    # -- snapshots -------------------------------------------------------

    def _require_full(self, mapping: Mapping, what: str) -> None:
        names = set(self._data)
        unknown = set(mapping) - names
        missing = names - set(mapping)
        if unknown or missing:
            parts = []
            if unknown:
                parts.append(f"unknown keys {sorted(unknown)}")
            if missing:
                parts.append(f"missing keys {sorted(missing)}")
            raise ValueError(
                f"{what} is not a complete lane-counter snapshot: "
                + "; ".join(parts)
            )

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copies of every per-lane counter plane."""
        return {k: v.copy() for k, v in self._data.items()}

    def diff(self, before: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Per-lane counts accumulated since *before* (a full snapshot)."""
        self._require_full(before, "diff() argument")
        return {k: v - np.asarray(before[k]) for k, v in self._data.items()}

    def merge(self, other: "LaneCounters | Mapping[str, np.ndarray]") -> None:
        """Add *other*'s per-lane counts into this bundle, lane for lane."""
        if isinstance(other, LaneCounters):
            if other.lanes != self.lanes:
                raise ValueError(
                    f"cannot merge {other.lanes} lanes into {self.lanes}"
                )
            other = other._data
        self._require_full(other, "merge() argument")
        for k, v in other.items():
            self._data[k] += np.asarray(v, dtype=np.int64)

    def reset(self) -> None:
        for plane in self._data.values():
            plane[...] = 0

    # -- views -----------------------------------------------------------

    def lane(self, index: int) -> dict[str, int]:
        """One lane's counts as a plain :class:`CycleCounters`-style dict."""
        return {k: int(v[index]) for k, v in self._data.items()}

    def total(self) -> dict[str, int]:
        """Counts summed over all lanes (= the serial-equivalent total)."""
        return {k: int(v.sum()) for k, v in self._data.items()}

    @staticmethod
    def lane_of(delta: Mapping[str, np.ndarray], index: int) -> dict[str, int]:
        """Extract one lane from a :meth:`diff`-style per-lane delta dict."""
        return {k: int(np.asarray(v)[index]) for k, v in delta.items()}

    @staticmethod
    def total_of(delta: Mapping[str, np.ndarray]) -> dict[str, int]:
        """Sum a :meth:`diff`-style per-lane delta dict over lanes."""
        return {k: int(np.asarray(v).sum()) for k, v in delta.items()}

    def __len__(self) -> int:
        return self.lanes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LaneCounters(lanes={self.lanes})"
