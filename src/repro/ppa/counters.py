"""Instruction and bus-cycle accounting.

All experiment tables in EXPERIMENTS.md are expressed in these counters, so
results are deterministic and independent of the host machine. The
convention follows the paper's cost statements:

* every SIMD instruction issued by the controller bumps ``instructions``;
* ``bus_cycles`` weighs bus transactions by the machine's
  :class:`~repro.ppa.topology.BusCostModel` (1 each under the paper's
  unit-cost assumption);
* local ALU work (adds, compares, mask updates) is tracked separately so
  that the *communication* complexity the paper analyses can be isolated.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["CycleCounters"]


@dataclass
class CycleCounters:
    """Mutable counter bundle attached to a machine instance."""

    instructions: int = 0
    broadcasts: int = 0
    reductions: int = 0
    shifts: int = 0
    alu_ops: int = 0
    global_ors: int = 0
    bus_cycles: int = 0
    bit_cycles: int = 0
    """Bus cycles weighted by operand width: a word transaction on a 1-bit
    bus costs ``word_bits`` bit-cycles, a wired-OR of flags costs 1. This is
    the metric that compares bit-serial machines (PPA, GCN) with
    word-stepped ones (hypercube) on equal footing; see experiment T5."""

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy of the current counts."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def diff(self, before: dict[str, int]) -> dict[str, int]:
        """Counts accumulated since *before* (a prior :meth:`snapshot`)."""
        return {k: v - before.get(k, 0) for k, v in self.snapshot().items()}

    def merge(self, other: "CycleCounters") -> None:
        """Add *other*'s counts into this bundle (for aggregating runs)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"CycleCounters({parts})"
