"""Instruction and bus-cycle accounting.

All experiment tables in EXPERIMENTS.md are expressed in these counters, so
results are deterministic and independent of the host machine. The
convention follows the paper's cost statements:

* every SIMD instruction issued by the controller bumps ``instructions``;
* ``bus_cycles`` weighs bus transactions by the machine's
  :class:`~repro.ppa.topology.BusCostModel` (1 each under the paper's
  unit-cost assumption);
* local ALU work (adds, compares, mask updates) is tracked separately so
  that the *communication* complexity the paper analyses can be isolated.

``snapshot``/``diff``/``merge`` are **round-trip safe**: a snapshot always
carries every counter field, ``diff`` and ``merge`` reject dictionaries
whose key set does not match (a silent ``get(k, 0)`` fallback previously
hid typos and version skew between recorded snapshots), and
:meth:`CycleCounters.from_snapshot` reconstructs a bundle such that
``CycleCounters.from_snapshot(c.snapshot()).snapshot() == c.snapshot()``.

:meth:`CycleCounters.checkpoint` is the measurement primitive the
:mod:`repro.telemetry` span tracer is built on: it reads counters at entry
and exit and exposes the delta, without ever *writing* a counter — which is
what guarantees telemetry adds zero counter overhead.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Iterator, Mapping

__all__ = ["CycleCounters", "CounterCheckpoint"]


@dataclass
class CounterCheckpoint:
    """Handle yielded by :meth:`CycleCounters.checkpoint`.

    ``before`` is the snapshot taken at entry; ``delta`` is ``None`` while
    the ``with`` block is still open and holds the counts accumulated
    inside the block once it exits (including on exceptions).
    """

    before: dict[str, int]
    delta: dict[str, int] | None = None


@dataclass
class CycleCounters:
    """Mutable counter bundle attached to a machine instance."""

    instructions: int = 0
    broadcasts: int = 0
    reductions: int = 0
    shifts: int = 0
    alu_ops: int = 0
    global_ors: int = 0
    bus_cycles: int = 0
    bit_cycles: int = 0
    """Bus cycles weighted by operand width: a word transaction on a 1-bit
    bus costs ``word_bits`` bit-cycles, a wired-OR of flags costs 1. This is
    the metric that compares bit-serial machines (PPA, GCN) with
    word-stepped ones (hypercube) on equal footing; see experiment T5."""

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """The counter vocabulary, in declaration order."""
        return tuple(f.name for f in fields(cls))

    def snapshot(self) -> dict[str, int]:
        """Plain-dict copy of the current counts (always every field)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def _require_full(self, mapping: Mapping[str, int], what: str) -> None:
        names = set(self.field_names())
        unknown = set(mapping) - names
        missing = names - set(mapping)
        if unknown or missing:
            parts = []
            if unknown:
                parts.append(f"unknown keys {sorted(unknown)}")
            if missing:
                parts.append(f"missing keys {sorted(missing)}")
            raise ValueError(
                f"{what} is not a complete counter snapshot: "
                + "; ".join(parts)
            )

    def diff(self, before: Mapping[str, int]) -> dict[str, int]:
        """Counts accumulated since *before* (a prior :meth:`snapshot`).

        *before* must be a complete snapshot — partial dictionaries raise
        :class:`ValueError` instead of being silently zero-filled.
        """
        self._require_full(before, "diff() argument")
        return {k: v - before[k] for k, v in self.snapshot().items()}

    def merge(self, other: "CycleCounters | Mapping[str, int]") -> None:
        """Add *other*'s counts into this bundle (for aggregating runs).

        Accepts another :class:`CycleCounters` or a complete snapshot dict.
        """
        if isinstance(other, CycleCounters):
            other = other.snapshot()
        self._require_full(other, "merge() argument")
        for k, v in other.items():
            setattr(self, k, getattr(self, k) + v)

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, int]) -> "CycleCounters":
        """Rebuild a bundle from a complete :meth:`snapshot` dict."""
        c = cls()
        c._require_full(snapshot, "from_snapshot() argument")
        for k, v in snapshot.items():
            setattr(c, k, int(v))
        return c

    @contextmanager
    def checkpoint(self) -> Iterator[CounterCheckpoint]:
        """Measure the counts accumulated inside a ``with`` block.

        >>> c = CycleCounters()
        >>> with c.checkpoint() as cp:
        ...     c.instructions += 3
        >>> cp.delta["instructions"]
        3

        Read-only with respect to the counters themselves: the span tracer
        uses this to attribute cycles to phases without perturbing them.
        """
        cp = CounterCheckpoint(before=self.snapshot())
        try:
            yield cp
        finally:
            cp.delta = self.diff(cp.before)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"CycleCounters({parts})"
