"""Deterministic graph generators.

Every generator returns an ``n x n`` ``int64`` weight matrix in the library
convention (zero diagonal, *inf_value* for missing edges) and takes an
explicit ``seed``. ``inf_value`` should be the target machine's ``maxint``;
the default ``2**16 - 1`` matches the default 16-bit word.

The families cover the evaluation's needs:

* :func:`gnp_digraph` — Erdős–Rényi digraphs, the generic correctness
  workload (T1);
* :func:`grid_graph` — 4-neighbour road-style grids, the paper's natural
  mesh-matching workload and the routing examples;
* :func:`ring_graph`, :func:`random_tree`, :func:`complete_graph` —
  structured extremes (maximum p, in-tree, p = 1);
* :func:`layered_graph` — DAG with an exact, controllable maximum MCP
  length ``p`` (experiment F4);
* :func:`geometric_graph` — random geometric digraphs (locality-heavy).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.workloads.weights import WeightSpec

__all__ = [
    "gnp_digraph",
    "grid_graph",
    "ring_graph",
    "layered_graph",
    "random_tree",
    "geometric_graph",
    "complete_graph",
    "DEFAULT_INF",
]

DEFAULT_INF = (1 << 16) - 1


def _finish(
    adj: np.ndarray,
    weights: WeightSpec | None,
    seed: int,
    inf_value: int,
) -> np.ndarray:
    spec = weights if weights is not None else WeightSpec()
    rng = np.random.default_rng(seed ^ 0x5EED)
    return spec.apply(adj, rng, inf_value)


def _check_n(n: int) -> None:
    if n < 1:
        raise GraphError(f"graph size must be >= 1, got {n}")


def gnp_digraph(
    n: int,
    p: float,
    *,
    seed: int = 0,
    weights: WeightSpec | None = None,
    inf_value: int = DEFAULT_INF,
) -> np.ndarray:
    """Erdős–Rényi directed graph: each ordered pair is an edge w.p. *p*."""
    _check_n(n)
    if not (0.0 <= p <= 1.0):
        raise GraphError(f"edge probability must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    adj = rng.random((n, n)) < p
    np.fill_diagonal(adj, False)
    return _finish(adj, weights, seed, inf_value)


def grid_graph(
    side: int,
    *,
    seed: int = 0,
    weights: WeightSpec | None = None,
    inf_value: int = DEFAULT_INF,
    bidirectional: bool = True,
) -> np.ndarray:
    """4-neighbour ``side x side`` grid; vertex ``(r, c)`` is ``r*side + c``.

    The returned matrix has ``side**2`` vertices — square it against a
    machine of that size.
    """
    _check_n(side)
    n = side * side
    adj = np.zeros((n, n), dtype=bool)
    idx = np.arange(n).reshape(side, side)
    # East and south neighbours; mirrored when bidirectional.
    adj[idx[:, :-1].ravel(), idx[:, 1:].ravel()] = True
    adj[idx[:-1, :].ravel(), idx[1:, :].ravel()] = True
    if bidirectional:
        adj |= adj.T
    return _finish(adj, weights, seed, inf_value)


def ring_graph(
    n: int,
    *,
    seed: int = 0,
    weights: WeightSpec | None = None,
    inf_value: int = DEFAULT_INF,
) -> np.ndarray:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0`` (maximum-diameter case:
    the longest MCP to any destination has ``n - 1`` edges)."""
    _check_n(n)
    adj = np.zeros((n, n), dtype=bool)
    src = np.arange(n)
    adj[src, (src + 1) % n] = True
    if n == 1:
        adj[...] = False
    return _finish(adj, weights, seed, inf_value)


def layered_graph(
    layers: int,
    width: int,
    *,
    seed: int = 0,
    weights: WeightSpec | None = None,
    inf_value: int = DEFAULT_INF,
) -> tuple[np.ndarray, int]:
    """Layered DAG whose longest MCP to vertex 0 has exactly ``layers`` edges.

    Vertex 0 is the sink; layer ``k`` (1-based) holds ``width`` vertices,
    each with edges to *every* vertex of layer ``k - 1`` (layer 1 connects
    to the sink). Returns ``(W, destination)`` with ``destination = 0``:
    every vertex of layer ``k`` is exactly ``k`` hops from the sink, so the
    PPA do-while runs exactly ``layers`` iterations (``layers - 1``
    productive + 1 convergence check when ``layers >= 2``... measured in
    experiment F4).
    """
    _check_n(layers)
    _check_n(width)
    n = 1 + layers * width
    adj = np.zeros((n, n), dtype=bool)

    def layer_vertices(k: int) -> np.ndarray:
        if k == 0:
            return np.array([0])
        return 1 + (k - 1) * width + np.arange(width)

    for k in range(1, layers + 1):
        src = layer_vertices(k)
        dst = layer_vertices(k - 1)
        adj[np.ix_(src, dst)] = True
    return _finish(adj, weights, seed, inf_value), 0


def random_tree(
    n: int,
    *,
    seed: int = 0,
    weights: WeightSpec | None = None,
    inf_value: int = DEFAULT_INF,
) -> np.ndarray:
    """Random in-tree toward vertex 0: each vertex points at one earlier
    vertex, so every MCP is the unique tree path."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    adj = np.zeros((n, n), dtype=bool)
    for v in range(1, n):
        adj[v, int(rng.integers(0, v))] = True
    return _finish(adj, weights, seed, inf_value)


def geometric_graph(
    n: int,
    radius: float,
    *,
    seed: int = 0,
    weights: WeightSpec | None = None,
    inf_value: int = DEFAULT_INF,
) -> np.ndarray:
    """Random geometric digraph on the unit square: an edge links vertices
    closer than *radius* (both directions), modelling locality-heavy
    workloads such as road networks."""
    _check_n(n)
    if radius <= 0:
        raise GraphError(f"radius must be positive, got {radius}")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
    adj = d2 < radius * radius
    np.fill_diagonal(adj, False)
    return _finish(adj, weights, seed, inf_value)


def complete_graph(
    n: int,
    *,
    seed: int = 0,
    weights: WeightSpec | None = None,
    inf_value: int = DEFAULT_INF,
) -> np.ndarray:
    """Complete digraph (p is at most 2 for any destination)."""
    _check_n(n)
    adj = ~np.eye(n, dtype=bool)
    return _finish(adj, weights, seed, inf_value)
