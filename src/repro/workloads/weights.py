"""Edge-weight assignment policies.

Generators in :mod:`repro.workloads.generators` first build a boolean
adjacency structure, then apply a :class:`WeightSpec` to obtain the integer
weight matrix in the library's convention (``inf_value`` where no edge,
zero diagonal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError

__all__ = ["WeightSpec", "uniform_weights", "unit_weights"]


@dataclass(frozen=True)
class WeightSpec:
    """Integer weights drawn uniformly from ``[low, high]``.

    ``low >= 1`` by default so that a missing edge is never confused with a
    free edge; pass ``low=0`` explicitly for workloads that need zero-cost
    edges.
    """

    low: int = 1
    high: int = 15

    def __post_init__(self) -> None:
        if not (0 <= self.low <= self.high):
            raise GraphError(
                f"invalid weight range [{self.low}, {self.high}]"
            )

    def apply(
        self,
        adjacency: np.ndarray,
        rng: np.random.Generator,
        inf_value: int,
    ) -> np.ndarray:
        """Weight matrix for boolean *adjacency* (diagonal forced to 0)."""
        adj = np.asarray(adjacency, dtype=bool)
        n = adj.shape[0]
        W = np.full((n, n), inf_value, dtype=np.int64)
        weights = rng.integers(self.low, self.high + 1, size=(n, n))
        W[adj] = weights[adj]
        np.fill_diagonal(W, 0)
        return W


def uniform_weights(low: int = 1, high: int = 15) -> WeightSpec:
    """Shorthand constructor for a uniform :class:`WeightSpec`."""
    return WeightSpec(low=low, high=high)


def unit_weights() -> WeightSpec:
    """All edges weigh 1 (hop-count workloads; closure/BFS experiments)."""
    return WeightSpec(low=1, high=1)
