"""Graph workload generation for tests, examples and benchmarks."""

from repro.workloads.generators import (
    gnp_digraph,
    grid_graph,
    ring_graph,
    layered_graph,
    random_tree,
    geometric_graph,
    complete_graph,
)
from repro.workloads.weights import WeightSpec, uniform_weights, unit_weights
from repro.workloads.suites import (
    SUITES,
    BatchedWorkloadCase,
    WorkloadCase,
    batch_suite,
    run_batched_suite,
    suite_cases,
)

__all__ = [
    "gnp_digraph",
    "grid_graph",
    "ring_graph",
    "layered_graph",
    "random_tree",
    "geometric_graph",
    "complete_graph",
    "WeightSpec",
    "uniform_weights",
    "unit_weights",
    "SUITES",
    "WorkloadCase",
    "suite_cases",
    "BatchedWorkloadCase",
    "batch_suite",
    "run_batched_suite",
]
