"""Named workload suites used by tests and the experiment harness.

A suite is a reproducible list of :class:`WorkloadCase` (weight matrix +
destination + provenance string). Keeping the parameters here — rather than
scattered through benchmarks — makes every EXPERIMENTS.md row regenerable
from one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import GraphError
from repro.workloads import generators as g
from repro.workloads.weights import WeightSpec, unit_weights

__all__ = ["WorkloadCase", "SUITES", "suite_cases"]


@dataclass(frozen=True)
class WorkloadCase:
    """One concrete MCP problem instance."""

    name: str
    W: np.ndarray
    destination: int

    @property
    def n(self) -> int:
        return int(self.W.shape[0])


def _correctness_suite(inf_value: int) -> list[WorkloadCase]:
    """T1: a spread of families, sizes and seeds."""
    cases: list[WorkloadCase] = []
    spec = WeightSpec(1, 9)
    for n in (4, 8, 13, 16):
        for seed in (0, 1, 2):
            for p in (0.15, 0.4, 0.8):
                W = g.gnp_digraph(n, p, seed=seed, weights=spec, inf_value=inf_value)
                cases.append(WorkloadCase(f"gnp(n={n},p={p},s={seed})", W, seed % n))
    for side in (3, 4, 5):
        W = g.grid_graph(side, seed=7, weights=spec, inf_value=inf_value)
        cases.append(WorkloadCase(f"grid({side}x{side})", W, 0))
    for n in (6, 12):
        cases.append(
            WorkloadCase(
                f"ring({n})",
                g.ring_graph(n, seed=3, weights=spec, inf_value=inf_value),
                n // 2,
            )
        )
        cases.append(
            WorkloadCase(
                f"tree({n})",
                g.random_tree(n, seed=5, weights=spec, inf_value=inf_value),
                0,
            )
        )
    cases.append(
        WorkloadCase(
            "complete(8)",
            g.complete_graph(8, seed=11, weights=spec, inf_value=inf_value),
            3,
        )
    )
    for n, radius in ((10, 0.35), (14, 0.3)):
        cases.append(
            WorkloadCase(
                f"geometric(n={n},r={radius})",
                g.geometric_graph(n, radius, seed=13, weights=spec,
                                  inf_value=inf_value),
                n // 3,
            )
        )
    return cases


def _unit_suite(inf_value: int) -> list[WorkloadCase]:
    """Closure / BFS workloads (T9)."""
    cases = []
    for n, p, seed in ((8, 0.2, 0), (12, 0.15, 1), (16, 0.1, 2)):
        W = g.gnp_digraph(n, p, seed=seed, weights=unit_weights(), inf_value=inf_value)
        cases.append(WorkloadCase(f"unit-gnp(n={n},p={p})", W, 0))
    return cases


SUITES: dict[str, Callable[[int], list[WorkloadCase]]] = {
    "correctness": _correctness_suite,
    "unit": _unit_suite,
}


def suite_cases(name: str, *, inf_value: int) -> list[WorkloadCase]:
    """Instantiate suite *name* with the target machine's ``maxint``."""
    try:
        factory = SUITES[name]
    except KeyError:
        raise GraphError(
            f"unknown suite {name!r}; available: {sorted(SUITES)}"
        ) from None
    return factory(inf_value)
