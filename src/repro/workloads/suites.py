"""Named workload suites used by tests and the experiment harness.

A suite is a reproducible list of :class:`WorkloadCase` (weight matrix +
destination + provenance string). Keeping the parameters here — rather than
scattered through benchmarks — makes every EXPERIMENTS.md row regenerable
from one place.

Batched driving
---------------
:func:`batch_suite` groups same-size cases of a suite into
:class:`BatchedWorkloadCase` lane stacks — ``(B, n, n)`` weights plus a
``(B,)`` destination vector — and :func:`run_batched_suite` executes each
stack as **one** batched MCP kernel (`repro.core.batched`), returning the
same per-case :class:`~repro.core.result.MCPResult` objects (bit-identical
results *and* counters) a serial sweep would produce. This is how the
benchmarks drive whole suites at SIMD speed with a ``--lanes`` knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.workloads import generators as g
from repro.workloads.weights import WeightSpec, unit_weights

__all__ = [
    "WorkloadCase",
    "BatchedWorkloadCase",
    "SUITES",
    "suite_cases",
    "batch_suite",
    "run_batched_suite",
]


@dataclass(frozen=True)
class WorkloadCase:
    """One concrete MCP problem instance."""

    name: str
    W: np.ndarray
    destination: int

    @property
    def n(self) -> int:
        return int(self.W.shape[0])


def _correctness_suite(inf_value: int) -> list[WorkloadCase]:
    """T1: a spread of families, sizes and seeds."""
    cases: list[WorkloadCase] = []
    spec = WeightSpec(1, 9)
    for n in (4, 8, 13, 16):
        for seed in (0, 1, 2):
            for p in (0.15, 0.4, 0.8):
                W = g.gnp_digraph(n, p, seed=seed, weights=spec, inf_value=inf_value)
                cases.append(WorkloadCase(f"gnp(n={n},p={p},s={seed})", W, seed % n))
    for side in (3, 4, 5):
        W = g.grid_graph(side, seed=7, weights=spec, inf_value=inf_value)
        cases.append(WorkloadCase(f"grid({side}x{side})", W, 0))
    for n in (6, 12):
        cases.append(
            WorkloadCase(
                f"ring({n})",
                g.ring_graph(n, seed=3, weights=spec, inf_value=inf_value),
                n // 2,
            )
        )
        cases.append(
            WorkloadCase(
                f"tree({n})",
                g.random_tree(n, seed=5, weights=spec, inf_value=inf_value),
                0,
            )
        )
    cases.append(
        WorkloadCase(
            "complete(8)",
            g.complete_graph(8, seed=11, weights=spec, inf_value=inf_value),
            3,
        )
    )
    for n, radius in ((10, 0.35), (14, 0.3)):
        cases.append(
            WorkloadCase(
                f"geometric(n={n},r={radius})",
                g.geometric_graph(n, radius, seed=13, weights=spec,
                                  inf_value=inf_value),
                n // 3,
            )
        )
    return cases


def _unit_suite(inf_value: int) -> list[WorkloadCase]:
    """Closure / BFS workloads (T9)."""
    cases = []
    for n, p, seed in ((8, 0.2, 0), (12, 0.15, 1), (16, 0.1, 2)):
        W = g.gnp_digraph(n, p, seed=seed, weights=unit_weights(), inf_value=inf_value)
        cases.append(WorkloadCase(f"unit-gnp(n={n},p={p})", W, 0))
    return cases


SUITES: dict[str, Callable[[int], list[WorkloadCase]]] = {
    "correctness": _correctness_suite,
    "unit": _unit_suite,
}


def suite_cases(name: str, *, inf_value: int) -> list[WorkloadCase]:
    """Instantiate suite *name* with the target machine's ``maxint``."""
    try:
        factory = SUITES[name]
    except KeyError:
        raise GraphError(
            f"unknown suite {name!r}; available: {sorted(SUITES)}"
        ) from None
    return factory(inf_value)


@dataclass(frozen=True)
class BatchedWorkloadCase:
    """Several same-size MCP instances stacked into one lane batch."""

    name: str
    W: np.ndarray  # (B, n, n) per-lane weight stack
    destinations: np.ndarray  # (B,) per-lane destination
    members: tuple[str, ...]  # source case names, lane order

    @property
    def n(self) -> int:
        return int(self.W.shape[-1])

    @property
    def batch(self) -> int:
        return int(self.W.shape[0])


def batch_suite(
    cases: Iterable[WorkloadCase], *, lanes: int | None = None
) -> list[BatchedWorkloadCase]:
    """Group *cases* by grid size into lane stacks of at most *lanes* each.

    Order within a stack follows suite order, so results map back to the
    originating cases deterministically. ``lanes=None`` packs every
    same-size case into a single stack.
    """
    if lanes is not None and lanes < 1:
        raise GraphError(f"lanes must be >= 1, got {lanes}")
    groups: dict[int, list[WorkloadCase]] = {}
    for case in cases:
        groups.setdefault(case.n, []).append(case)
    stacks: list[BatchedWorkloadCase] = []
    for n in sorted(groups):
        members = groups[n]
        cap = len(members) if lanes is None else lanes
        for start in range(0, len(members), cap):
            chunk = members[start : start + cap]
            stacks.append(
                BatchedWorkloadCase(
                    name=f"batch(n={n},lanes={len(chunk)},#{start // cap})",
                    W=np.stack([c.W for c in chunk]),
                    destinations=np.array(
                        [c.destination for c in chunk], dtype=np.int64
                    ),
                    members=tuple(c.name for c in chunk),
                )
            )
    return stacks


def run_batched_suite(
    cases: Sequence[WorkloadCase],
    *,
    word_bits: int = 16,
    lanes: int | None = None,
    **kwargs,
):
    """Execute a whole suite through the batched MCP kernel.

    Returns ``{case.name: MCPResult}`` with results and per-case counters
    bit-identical to running :func:`repro.core.mcp.minimum_cost_path` on
    each case serially — but one SIMD kernel per same-size stack instead
    of one machine pass per case.
    """
    from repro.core.batched import batched_mcp_on_new_machine

    results = {}
    for stack in batch_suite(cases, lanes=lanes):
        res = batched_mcp_on_new_machine(
            stack.W, stack.destinations, word_bits=word_bits, **kwargs
        )
        for b, member in enumerate(stack.members):
            results[member] = res.lane(b)
    return results
