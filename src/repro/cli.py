"""Command-line interface.

``python -m repro <command>``:

* ``mcp``      — run minimum cost path on a generated or file-loaded graph,
  on any of the four simulated architectures;
* ``apsp``     — all-pairs minimum cost paths; batched (lane-parallel) by
  default with a ``--lanes`` knob, ``--serial`` for the literal sweep;
* ``report``   — regenerate the evaluation artefacts (see EXPERIMENTS.md);
* ``ppc``      — run (or pretty-print) a Polymorphic Parallel C source file;
* ``lint``     — statically verify PPC sources and bundled programs
  (bus races, use-before-def, word-width, cost audit; see
  docs/static-analysis.md) with text or ``--json`` findings;
* ``selftest`` — run the bus diagnostic, optionally with injected faults;
* ``profile``  — run MCP under the span tracer and print the per-phase
  cost breakdown (see docs/observability.md);
* ``serve``    — run the fault-tolerant async path-query service
  (admission control, deadlines/retries, degradation ladder, circuit
  breaker; see docs/robustness.md, "Serving and failure handling");
* ``loadgen``  — drive a running service (or ``--self-serve`` one
  in-process) with a seeded query stream; reports latency percentiles
  and independently validates sampled answers;
* ``chaos``    — run the seeded service-level chaos campaign and check
  its invariants (0 silent-wrong, 0 leaked shared memory).

``mcp`` and ``selftest`` accept ``--profile PATH`` (write the run's span
profile; ``--trace-format chrome`` emits Chrome ``trace_event`` JSON for
chrome://tracing / Perfetto instead of the native schema) and ``--trace``
(print the bus transaction log summary; PPA architecture only).

``mcp``, ``apsp`` and ``profile`` accept ``--engine {auto,cycle,fused}``
(see docs/performance.md, "Choosing an engine"). ``auto`` — the default —
runs the fused analytic-cost engine whenever the machine is eligible and
silently falls back to the faithful cycle engine otherwise. An explicit
``--engine fused`` combined with anything that needs per-transaction
execution (``--resilient``, ``--fault*``, ``--trace``, ``--profile``,
``--word-parallel``, a non-PPA ``--arch``) prints a note naming the
blocking condition and runs the cycle engine — exit code 0, results and
counters identical either way.

``mcp``, ``apsp`` and ``selftest`` accept fault-injection flags
(``--fault``, ``--fault-intermittent``, ``--fault-transient``,
``--fault-seed``; see :mod:`repro.ppa.faults`). ``mcp`` and ``apsp``
additionally accept ``--screen`` (pre-flight self-test that refuses a
diagnosed-faulty array) and ``--resilient`` with its policy knobs
(``--array-n``, ``--checkpoint-every``, ``--max-retries``,
``--detect-every``) to run under the detect/diagnose/recover runtime of
:mod:`repro.resilience` — see docs/robustness.md.

Graphs load from ``.npy``/``.npz`` (array ``W``) or whitespace/CSV text via
:func:`numpy.loadtxt`; ``inf`` entries mean "no edge".
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro import __version__
from repro.baselines import GCNMachine, HypercubeMachine, MeshMachine
from repro.core import minimum_cost_path, minimum_cost_path_word
from repro.errors import ReproError
from repro.ppa import FaultKind, FaultPlan, PPAConfig, PPAMachine
from repro.ppa.selftest import diagnose_switches
from repro.workloads import WeightSpec, generators

__all__ = ["main", "build_parser"]

_FAMILIES = {
    "gnp": lambda n, seed, density, inf: generators.gnp_digraph(
        n, density, seed=seed, weights=WeightSpec(1, 9), inf_value=inf
    ),
    "grid": lambda n, seed, density, inf: generators.grid_graph(
        int(round(n ** 0.5)), seed=seed, weights=WeightSpec(1, 9), inf_value=inf
    ),
    "ring": lambda n, seed, density, inf: generators.ring_graph(
        n, seed=seed, weights=WeightSpec(1, 9), inf_value=inf
    ),
    "tree": lambda n, seed, density, inf: generators.random_tree(
        n, seed=seed, weights=WeightSpec(1, 9), inf_value=inf
    ),
    "complete": lambda n, seed, density, inf: generators.complete_graph(
        n, seed=seed, weights=WeightSpec(1, 9), inf_value=inf
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Minimum Cost Path on the Polymorphic Processor Array "
        "(IPPS'98 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    mcp = sub.add_parser("mcp", help="run minimum cost path")
    src = mcp.add_mutually_exclusive_group(required=True)
    src.add_argument("--graph", type=Path, help=".npy/.npz/.txt weight matrix")
    src.add_argument("--generate", choices=sorted(_FAMILIES), help="workload family")
    mcp.add_argument("--n", type=int, default=8, help="vertex count (generated)")
    mcp.add_argument("--seed", type=int, default=0)
    mcp.add_argument("--density", type=float, default=0.3, help="gnp density")
    mcp.add_argument("-d", "--destination", type=int, default=0)
    mcp.add_argument(
        "--arch",
        choices=["ppa", "gcn", "hypercube", "mesh", "rmesh"],
        default="ppa",
    )
    mcp.add_argument("--word-bits", type=int, default=16)
    mcp.add_argument(
        "--word-parallel",
        action="store_true",
        help="A7 variant: word-wide bus minimum (ppa only)",
    )
    mcp.add_argument(
        "--paths",
        action="store_true",
        help="print the full path for every reachable vertex",
    )
    _add_engine_flag(mcp)
    _add_fault_flags(mcp)
    _add_resilience_flags(mcp)
    _add_observability_flags(mcp)

    apsp = sub.add_parser(
        "apsp",
        help="all-pairs minimum cost paths (batched lanes by default)",
    )
    src = apsp.add_mutually_exclusive_group(required=True)
    src.add_argument("--graph", type=Path, help=".npy/.npz/.txt weight matrix")
    src.add_argument("--generate", choices=sorted(_FAMILIES), help="workload family")
    apsp.add_argument("--n", type=int, default=16, help="vertex count (generated)")
    apsp.add_argument("--seed", type=int, default=0)
    apsp.add_argument("--density", type=float, default=0.3, help="gnp density")
    apsp.add_argument("--word-bits", type=int, default=16)
    apsp.add_argument(
        "--word-parallel",
        action="store_true",
        help="A7 variant: word-wide bus minimum",
    )
    apsp.add_argument(
        "--lanes",
        type=int,
        default=None,
        metavar="B",
        help="destinations per batched pass (default: all n)",
    )
    apsp.add_argument(
        "--serial",
        action="store_true",
        help="force the literal one-destination-per-pass host loop",
    )
    apsp.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="P",
        help="shard destinations over P worker processes (shared-memory "
        "planes; results and serial-equivalent counters are bit-identical "
        "to the inline sweep)",
    )
    apsp.add_argument(
        "--matrix",
        action="store_true",
        help="print the full distance matrix (default: summary only)",
    )
    _add_engine_flag(apsp)
    _add_fault_flags(apsp)
    _add_resilience_flags(apsp)
    _add_observability_flags(apsp)

    prof = sub.add_parser(
        "profile",
        help="run MCP under the span tracer; print per-phase costs",
    )
    src = prof.add_mutually_exclusive_group(required=True)
    src.add_argument("--graph", type=Path, help=".npy/.npz/.txt weight matrix")
    src.add_argument("--generate", choices=sorted(_FAMILIES), help="workload family")
    prof.add_argument("--n", type=int, default=16, help="vertex count (generated)")
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument("--density", type=float, default=0.3, help="gnp density")
    prof.add_argument("-d", "--destination", type=int, default=0)
    prof.add_argument(
        "--arch",
        choices=["ppa", "gcn", "hypercube", "mesh", "rmesh"],
        default="ppa",
    )
    prof.add_argument("--word-bits", type=int, default=16)
    prof.add_argument(
        "--out", type=Path, help="also write the profile to this path"
    )
    prof.add_argument(
        "--trace-format",
        choices=["json", "chrome"],
        default="json",
        help="serialisation for --out (native schema or Chrome trace_event)",
    )
    prof.add_argument(
        "--compare",
        type=Path,
        help="diff the per-phase counters against a saved profile",
    )
    _add_engine_flag(prof)

    report = sub.add_parser("report", help="regenerate the evaluation")
    report.add_argument("--quick", action="store_true")
    report.add_argument("--markdown", action="store_true")
    report.add_argument("experiments", nargs="*", metavar="ID")

    ppc = sub.add_parser("ppc", help="run or format a PPC source file")
    ppc.add_argument("file", type=Path)
    ppc.add_argument("--entry", default="main")
    ppc.add_argument("--n", type=int, default=8, help="machine side")
    ppc.add_argument("--word-bits", type=int, default=16)
    ppc.add_argument(
        "--format",
        action="store_true",
        help="pretty-print the program instead of running it",
    )
    ppc.add_argument(
        "--compile",
        dest="compile_only",
        action="store_true",
        help="emit PPA assembly instead of interpreting",
    )
    ppc.add_argument(
        "--run-compiled",
        action="store_true",
        help="compile to the ISA and execute the instruction stream",
    )
    ppc.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="NAME=INT",
        help="initialise a scalar program global",
    )
    ppc.add_argument(
        "--graph",
        type=Path,
        help="weight matrix loaded into the parallel global W",
    )

    lint = sub.add_parser(
        "lint",
        help="statically verify PPC sources / bundled programs",
    )
    lint.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="PPC source files; .py files are scanned for module-level "
        "PPC string listings",
    )
    lint.add_argument(
        "--program",
        action="append",
        default=[],
        choices=sorted(_LINT_PROGRAMS) + ["all"],
        help="lint a bundled program ('all' = every bundled listing plus "
        "the assembly MCP)",
    )
    lint.add_argument("--n", type=int, default=8, help="analysis grid side")
    lint.add_argument("--word-bits", type=int, default=16)
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable diagnostics instead of text",
    )
    lint.add_argument(
        "--no-cost-audit",
        action="store_true",
        help="skip the three-way cost audit leg of asm-mcp linting",
    )
    lint.add_argument(
        "--host",
        action="store_true",
        help="run the host-* concurrency/resource-safety rules over "
        "Python files or directories instead of PPC listings "
        "(default target: src/repro)",
    )

    st = sub.add_parser("selftest", help="bus switch diagnostic")
    st.add_argument("--n", type=int, default=8)
    _add_fault_flags(st)
    _add_observability_flags(st)

    serve = sub.add_parser(
        "serve",
        help="run the fault-tolerant path-query service (JSON lines over "
        "TCP; see docs/robustness.md, 'Serving and failure handling')",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7464,
                       help="TCP port (0 = ephemeral, printed on startup)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="concurrently computing requests")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="admission wait-queue bound (beyond: shed)")
    serve.add_argument("--workers", type=int, default=2,
                       help="APSP shard workers at the top ladder rung")
    serve.add_argument("--shard-timeout", type=float, default=30.0,
                       help="per-shard-attempt deadline (seconds)")
    serve.add_argument("--deadline-ms", type=float, default=30_000.0,
                       help="default per-request deadline")
    serve.add_argument("--seed", type=int, default=0,
                       help="retry-jitter RNG seed")
    serve.add_argument("--coalesce-window-ms", type=float, default=2.0,
                       help="how long a micro-batch collects concurrent "
                       "column requests before dispatching")
    serve.add_argument("--max-lanes", type=int, default=32,
                       help="distinct destinations per coalesced batch "
                       "(a full batch dispatches early)")
    serve.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable request coalescing / single-flight dedup (one "
        "engine run per request, the pre-coalescing behaviour)",
    )
    serve.add_argument(
        "--no-verify",
        action="store_true",
        help="skip Bellman-fixpoint verification of computed answers "
        "(forfeits the 0-silent-wrong guarantee; benchmarking only)",
    )

    lg = sub.add_parser(
        "loadgen",
        help="drive a running service with a seeded query stream and "
        "report latency percentiles + independent answer validation",
    )
    lg.add_argument("--host", default="127.0.0.1")
    lg.add_argument("--port", type=int, default=7464)
    lg.add_argument("--requests", type=int, default=2000)
    lg.add_argument("--concurrency", type=int, default=256,
                    help="maximum in-flight requests")
    lg.add_argument("--connections", type=int, default=8,
                    help="TCP connections to multiplex over")
    lg.add_argument("--n", type=int, default=24, help="graph vertex count")
    lg.add_argument("--density", type=float, default=0.35)
    lg.add_argument("--deadline-ms", type=float, default=5_000.0)
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--graph", default="loadgen", help="graph name to use")
    lg.add_argument("--zipf", type=float, default=None,
                    help="skew destination choice to a Zipf law with this "
                    "exponent (hot-key workload; default: uniform)")
    lg.add_argument("--update-every", type=int, default=0,
                    help="issue a seeded sparse edge-delta update after "
                    "every N requests (0 = never); answers are validated "
                    "per graph version")
    lg.add_argument(
        "--self-serve",
        action="store_true",
        help="start an in-process service on an ephemeral port and drive "
        "that (no separate 'repro serve' needed)",
    )
    lg.add_argument("--json", action="store_true",
                    help="emit the result as JSON")

    chaos = sub.add_parser(
        "chaos",
        help="run the seeded service-level chaos campaign (worker kill / "
        "slow worker / overload / bus faults / update storms) and check "
        "its invariants",
    )
    chaos.add_argument("--runs", type=int, default=50)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--n", type=int, default=10)
    chaos.add_argument("--requests-per-run", type=int, default=12)
    chaos.add_argument("--max-p99-ms", type=float, default=None,
                       help="also fail (exit 1) if the campaign's p99 "
                       "latency exceeds this bound")
    chaos.add_argument("--json", action="store_true",
                       help="emit the campaign report as JSON")
    return parser


def _add_engine_flag(sub: argparse.ArgumentParser) -> None:
    from repro.engine import ENGINE_NAMES

    sub.add_argument(
        "--engine",
        choices=ENGINE_NAMES,
        default="auto",
        help="execution engine: 'auto' (default) runs the fastest eligible "
        "analytic tier — cache-blocked 'compiled' kernels on large grids, "
        "'fused' whole-array kernels below — and falls back to the "
        "faithful cycle engine otherwise; results and counters are "
        "bit-identical (see docs/performance.md)",
    )


def _effective_engine(
    args,
    machine: PPAMachine | None = None,
    *,
    ppa: bool = True,
    word_parallel: bool = False,
    resilient: bool = False,
) -> str:
    """The engine to forward down the library call.

    ``auto``/``cycle`` pass through untouched (``auto`` falls back
    silently inside :func:`repro.engine.select.resolve_engine`). An
    explicit ``fused`` or ``compiled`` request that cannot be honoured
    prints a note naming the blocking condition and downgrades to
    ``cycle`` — the CLI never fails a run over an engine preference
    (exit 0).
    """
    engine = getattr(args, "engine", "auto")
    if engine not in ("fused", "compiled"):
        return engine
    from repro.engine import fused_block_reason

    reason = None
    if not ppa:
        reason = f"--arch {args.arch} has no {engine} engine (PPA only)"
    elif resilient:
        reason = (
            "--resilient detects and recovers per-transaction faults, "
            "which only the cycle engine executes"
        )
    elif word_parallel:
        reason = "--word-parallel swaps in non-default reduction routines"
    elif machine is not None:
        reason = fused_block_reason(machine)
    if reason is None:
        return engine
    print(f"note: engine '{engine}' unavailable: {reason}; "
          "running the cycle engine (results are identical)")
    return "cycle"


def _add_fault_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="ROW,COL,KIND[,AXIS]",
        help="inject a permanent switch fault (KIND: open|short; "
        "AXIS: 0|1|both)",
    )
    sub.add_argument(
        "--fault-intermittent",
        action="append",
        default=[],
        metavar="ROW,COL,KIND,PROB[,AXIS]",
        help="inject an intermittent stuck-at that fires with "
        "probability PROB per bus transaction",
    )
    sub.add_argument(
        "--fault-transient",
        action="append",
        default=[],
        metavar="ROW,COL,BIT,PROB[,AXIS]",
        help="inject a transient bit-flip on the word PE (ROW, COL) "
        "receives, with probability PROB per bus transaction",
    )
    sub.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="RNG seed for stochastic fault activation",
    )


def _add_resilience_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--resilient",
        action="store_true",
        help="run under the resilient executor: screen, online "
        "detectors, checkpoint/rollback/replay, spare-row remap "
        "(ppa only; see docs/robustness.md)",
    )
    sub.add_argument(
        "--array-n",
        type=int,
        default=None,
        metavar="N_PHYS",
        help="physical array side, >= the problem size; the slack is "
        "spare capacity for quarantine (default: exactly the problem "
        "size, i.e. no spares)",
    )
    sub.add_argument(
        "--checkpoint-every",
        type=int,
        default=4,
        metavar="K",
        help="commit a verified checkpoint every K productive "
        "iterations (resilient mode)",
    )
    sub.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="R",
        help="rollback/replay attempts per recovery episode "
        "(resilient mode)",
    )
    sub.add_argument(
        "--detect-every",
        type=int,
        default=1,
        metavar="K",
        help="run the online detectors every K productive iterations "
        "(resilient mode)",
    )
    sub.add_argument(
        "--screen",
        action="store_true",
        help="pre-flight self-test; without --resilient a diagnosed-"
        "faulty array is refused",
    )


def _add_observability_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--profile",
        type=Path,
        metavar="PATH",
        help="record a span profile of the run and write it to PATH",
    )
    sub.add_argument(
        "--trace-format",
        choices=["json", "chrome"],
        default="json",
        help="profile serialisation (native schema or Chrome trace_event)",
    )
    sub.add_argument(
        "--trace",
        action="store_true",
        help="print the bus transaction log summary (ppa only)",
    )


def _load_graph(path: Path, inf: int) -> np.ndarray:
    if not path.exists():
        raise ReproError(f"graph file not found: {path}")
    if path.suffix == ".npy":
        W = np.load(path)
    elif path.suffix == ".npz":
        data = np.load(path)
        if "W" not in data:
            raise ReproError(f"{path} has no array named 'W'")
        W = data["W"]
    else:
        W = np.loadtxt(path, delimiter="," if path.suffix == ".csv" else None)
    W = np.asarray(W, dtype=float)
    out = np.where(np.isfinite(W), W, inf)
    return out.astype(np.int64)


def _make_machine_and_runner(arch: str, n: int, word_bits: int,
                             word_parallel: bool = False):
    """One (machine, run(W, d)) pair per architecture choice."""
    if arch == "ppa":
        machine = PPAMachine(PPAConfig(n=n, word_bits=word_bits))
        runner = minimum_cost_path_word if word_parallel else minimum_cost_path
        return machine, (
            lambda W, d, engine="auto": runner(machine, W, d, engine=engine)
        )
    if word_parallel:
        raise ReproError("--word-parallel applies to --arch ppa only")
    if arch == "rmesh":
        from repro.rmesh import RMeshMachine, rmesh_mcp

        machine = RMeshMachine(n, word_bits=word_bits)
        return machine, lambda W, d, engine="auto": rmesh_mcp(machine, W, d)
    cls = {"gcn": GCNMachine, "hypercube": HypercubeMachine,
           "mesh": MeshMachine}[arch]
    machine = cls(n, word_bits=word_bits)
    return machine, lambda W, d, engine="auto": machine.mcp(W, d)


def _export_profile(machine, path: Path, trace_format: str, **meta) -> None:
    from repro.telemetry import RunProfile, save_profile

    profile = RunProfile.from_tracer(machine.telemetry, **meta)
    save_profile(profile, path, trace_format=trace_format)
    print(f"profile written to {path} ({trace_format})")


def _print_trace_summary(machine) -> None:
    by_kind: dict[str, list[int]] = {}
    for t in machine.trace.records:
        by_kind.setdefault(t.kind, []).append(t.max_span)
    print(f"bus transactions: {len(machine.trace)}")
    for kind in sorted(by_kind):
        spans = by_kind[kind]
        print(f"  {kind:>10}: {len(spans):>5}   max cluster span "
              f"{max(spans)}")


def _check_trace_supported(args) -> None:
    if args.trace and args.arch != "ppa":
        raise ReproError("--trace records the PPA bus; use --arch ppa")


_FAULT_KINDS = {"open": FaultKind.STUCK_OPEN, "short": FaultKind.STUCK_SHORT}


def _parse_axis(token: str, spec: str) -> int | None:
    if token == "both":
        return None
    if token in ("0", "1"):
        return int(token)
    raise ReproError(f"fault axis must be 0, 1 or both, got {token!r} "
                     f"in {spec!r}")


def _build_fault_plan(args) -> FaultPlan | None:
    """Assemble a :class:`FaultPlan` from the ``--fault*`` flags."""
    if not (args.fault or args.fault_intermittent or args.fault_transient):
        return None
    plan = FaultPlan(seed=args.fault_seed)
    try:
        for spec in args.fault:
            parts = spec.split(",")
            if len(parts) not in (3, 4) or parts[2] not in _FAULT_KINDS:
                raise ReproError(
                    f"--fault expects ROW,COL,open|short[,AXIS], got {spec!r}"
                )
            axis = _parse_axis(parts[3], spec) if len(parts) == 4 else None
            plan.add(
                int(parts[0]), int(parts[1]), _FAULT_KINDS[parts[2]], axis
            )
        for spec in args.fault_intermittent:
            parts = spec.split(",")
            if len(parts) not in (4, 5) or parts[2] not in _FAULT_KINDS:
                raise ReproError(
                    "--fault-intermittent expects ROW,COL,open|short,PROB"
                    f"[,AXIS], got {spec!r}"
                )
            axis = _parse_axis(parts[4], spec) if len(parts) == 5 else None
            plan.add_intermittent(
                int(parts[0]), int(parts[1]), _FAULT_KINDS[parts[2]],
                probability=float(parts[3]), axis=axis,
            )
        for spec in args.fault_transient:
            parts = spec.split(",")
            if len(parts) not in (4, 5):
                raise ReproError(
                    "--fault-transient expects ROW,COL,BIT,PROB[,AXIS], "
                    f"got {spec!r}"
                )
            axis = _parse_axis(parts[4], spec) if len(parts) == 5 else None
            plan.add_transient(
                int(parts[0]), int(parts[1]), bit=int(parts[2]),
                probability=float(parts[3]), axis=axis,
            )
    except ValueError as exc:  # int()/float() on a malformed token
        raise ReproError(f"malformed fault spec: {exc}") from exc
    return plan


def _preflight_screen(machine: PPAMachine) -> None:
    """``--screen`` without ``--resilient``: refuse a faulty array."""
    report = diagnose_switches(machine)
    if report.healthy:
        print(f"pre-flight screen: all switch-boxes healthy "
              f"({report.transactions} probe transactions)")
        return
    raise ReproError(
        f"pre-flight screen diagnosed {len(report.faults)} fault(s) and "
        f"{len(report.undiagnosable_rings)} undiagnosable ring(s); rerun "
        "with --resilient to quarantine and continue"
    )


def _resilience_config(args):
    from repro.resilience import (
        CheckpointPolicy,
        ResilienceConfig,
        RetryPolicy,
    )

    return ResilienceConfig(
        detect_every=args.detect_every,
        retry=RetryPolicy(max_retries=args.max_retries),
        checkpoint=CheckpointPolicy(every=args.checkpoint_every),
    )


def _resilient_executor(args, m: int):
    """Machine + executor for ``--resilient`` runs (PPA only)."""
    from repro.resilience import ResilientExecutor

    n_phys = args.array_n if args.array_n is not None else m
    if n_phys < m:
        raise ReproError(
            f"--array-n {n_phys} is smaller than the {m}-vertex problem"
        )
    machine = PPAMachine(PPAConfig(n=n_phys, word_bits=args.word_bits))
    plan = _build_fault_plan(args)
    if plan is not None:
        machine.inject_faults(plan)
    if args.profile is not None:
        machine.telemetry.enable()
    if args.trace:
        machine.trace.enabled = True
    if args.word_parallel:
        from repro.core.variants import _word_selected_min
        from repro.ppc.reductions import word_parallel_min

        executor = ResilientExecutor(
            machine, _resilience_config(args),
            min_routine=word_parallel_min,
            selected_min_routine=_word_selected_min,
        )
    else:
        executor = ResilientExecutor(machine, _resilience_config(args))
    return machine, executor


def _print_resilient_summary(res) -> None:
    e = res.embedding
    print(f"resilience: status {res.status.value}"
          + ("" if res.failure is None else f" ({res.failure})"))
    print(f"  embedding: {e.m} logical on {e.n_phys}x{e.n_phys} physical, "
          f"quarantined {sorted(e.quarantined) or '[]'}, "
          f"spares left {e.spares_left}")
    print(f"  rounds {res.rounds} (furthest {res.furthest_round}, "
          f"replayed {res.replayed_rounds}), checkpoints {res.checkpoints}, "
          f"rollbacks {res.rollbacks}, remaps {res.remaps}, "
          f"detections {res.detections}, benign glitches "
          f"{res.benign_glitches}")
    for name, delta in res.overhead.items():
        if delta:
            body = ", ".join(f"{k}={v}" for k, v in sorted(delta.items()))
            print(f"  overhead[{name}]: {body}")
    for ev in res.events:
        print(f"  round {ev.round:>3}  {ev.kind}: {ev.detail}")


def _print_vertices(result, n: int, paths: bool) -> None:
    for v in range(n):
        if not result.reachable[v]:
            print(f"  {v:>3}: unreachable")
        elif paths:
            chain = " -> ".join(map(str, result.path(v)))
            print(f"  {v:>3}: cost {int(result.sow[v]):>6}   {chain}")
        else:
            print(f"  {v:>3}: cost {int(result.sow[v]):>6}   "
                  f"next {int(result.ptn[v])}")


def _check_ppa_only_flags(args) -> None:
    uses_faults = bool(
        args.fault or args.fault_intermittent or args.fault_transient
    )
    if args.arch != "ppa" and (
        uses_faults or args.resilient or args.screen
        or args.array_n is not None
    ):
        raise ReproError(
            "fault injection, --screen and --resilient drive the PPA "
            "switch fabric; use --arch ppa"
        )


def _cmd_mcp(args) -> int:
    inf = (1 << args.word_bits) - 1
    if args.graph is not None:
        W = _load_graph(args.graph, inf)
    else:
        W = _FAMILIES[args.generate](args.n, args.seed, args.density, inf)
    n = W.shape[0]
    d = args.destination
    _check_trace_supported(args)
    _check_ppa_only_flags(args)

    if args.resilient:
        _effective_engine(args, resilient=True)  # note on --engine fused
        machine, executor = _resilient_executor(args, n)
        res = executor.run(W, d, raise_on_failure=False)
        print(f"minimum cost paths to vertex {d} on resilient ppa "
              f"({res.embedding.n_phys}x{res.embedding.n_phys} physical, "
              f"h={args.word_bits})")
        _print_resilient_summary(res)
        lane = res.lane(0)
        print(f"iterations: {lane.iterations}")
        _print_vertices(lane, n, args.paths)
        print("counters: " + ", ".join(
            f"{k}={v}" for k, v in res.counters.items()))
        if args.trace:
            _print_trace_summary(machine)
        if args.profile is not None:
            _export_profile(
                machine, args.profile, args.trace_format,
                command="mcp", arch="ppa", n=n, d=d,
                word_bits=args.word_bits, resilient=True,
            )
        return 0 if res.trustworthy else 1

    machine, run = _make_machine_and_runner(
        args.arch, n, args.word_bits, args.word_parallel
    )
    plan = _build_fault_plan(args)
    if plan is not None:
        machine.inject_faults(plan)
    if args.screen:
        _preflight_screen(machine)
    if args.profile is not None:
        machine.telemetry.enable()
    if args.trace:
        machine.trace.enabled = True
    engine = _effective_engine(
        args,
        machine if args.arch == "ppa" else None,
        ppa=args.arch == "ppa",
        word_parallel=args.word_parallel,
    )
    result = run(W, d, engine=engine)

    print(f"minimum cost paths to vertex {d} on {args.arch} ({n}x{n}, "
          f"h={args.word_bits})")
    print(f"iterations: {result.iterations}")
    _print_vertices(result, n, args.paths)
    print("counters: " + ", ".join(f"{k}={v}" for k, v in result.counters.items()))
    if args.trace:
        _print_trace_summary(machine)
    if args.profile is not None:
        _export_profile(
            machine, args.profile, args.trace_format,
            command="mcp", arch=args.arch, n=n, d=d,
            word_bits=args.word_bits,
        )
    return 0


def _cmd_apsp(args) -> int:
    from repro.core import all_pairs_minimum_cost

    inf = (1 << args.word_bits) - 1
    if args.graph is not None:
        W = _load_graph(args.graph, inf)
    else:
        W = _FAMILIES[args.generate](args.n, args.seed, args.density, inf)
    n = W.shape[0]

    if args.resilient:
        if args.serial:
            raise ReproError(
                "--resilient runs all destinations as batched lanes; "
                "drop --serial"
            )
        if args.workers is not None and args.workers > 1:
            print("note: --workers ignored with --resilient (fault "
                  "recovery observes individual transactions; running "
                  "inline)")
        _effective_engine(args, resilient=True)  # note on --engine fused
        machine, executor = _resilient_executor(args, n)
        res = executor.run_batched(
            W, list(range(n)), raise_on_failure=False
        )
        print(f"all-pairs minimum cost on resilient ppa "
              f"({res.embedding.n_phys}x{res.embedding.n_phys} physical, "
              f"h={args.word_bits}, lanes={n})")
        _print_resilient_summary(res)
        reachable = res.sow < res.maxint
        off_diag = int(reachable.sum()) - n
        print(f"reachable ordered pairs: {off_diag}/{n * (n - 1)}")
        print(f"iterations per destination: "
              f"min {int(res.iterations.min())}, "
              f"max {int(res.iterations.max())}")
        if args.matrix:
            shown = np.where(reachable, res.sow, -1)
            print("distance matrix (row = destination, -1 = unreachable):")
            print(shown)
        print("counters: " + ", ".join(
            f"{k}={v}" for k, v in res.counters.items()))
        if args.trace:
            _print_trace_summary(machine)
        if args.profile is not None:
            _export_profile(
                machine, args.profile, args.trace_format,
                command="apsp", arch="ppa", n=n,
                word_bits=args.word_bits, resilient=True,
            )
        return 0 if res.trustworthy else 1

    machine = PPAMachine(PPAConfig(n=n, word_bits=args.word_bits))
    plan = _build_fault_plan(args)
    if plan is not None:
        machine.inject_faults(plan)
    if args.screen:
        _preflight_screen(machine)
    if args.profile is not None:
        machine.telemetry.enable()
    if args.trace:
        machine.trace.enabled = True
    engine = _effective_engine(
        args, machine, word_parallel=args.word_parallel
    )
    res = all_pairs_minimum_cost(
        machine,
        W,
        word_parallel=args.word_parallel,
        serial=args.serial,
        lanes=args.lanes,
        engine=engine,
        workers=args.workers,
    )

    report = res.shard_report
    if report.get("blocked"):
        print(f"note: --workers {report['requested_workers']} unavailable: "
              f"{report['blocked']}; running the inline sweep (results "
              "are identical)")
    mode = "serial sweep" if args.serial else (
        f"batched lanes={args.lanes or n}"
    )
    if report.get("workers", 1) > 1:
        mode += (f", {report['workers']} workers "
                 f"({report['engine']} engine per shard)")
    print(f"all-pairs minimum cost on ppa ({n}x{n}, h={args.word_bits}, "
          f"{mode})")
    reachable = res.dist < res.maxint
    off_diag = int(reachable.sum()) - n
    print(f"reachable ordered pairs: {off_diag}/{n * (n - 1)}")
    print(f"iterations per destination: min {int(res.iterations.min())}, "
          f"max {int(res.iterations.max())}")
    if args.matrix:
        shown = np.where(reachable, res.dist, -1)
        print("distance matrix (-1 = unreachable):")
        print(shown)
    print("counters (serial-equivalent): "
          + ", ".join(f"{k}={v}" for k, v in res.counters.items()))
    if res.machine_counters != res.counters:
        print("counters (batched machine):  "
              + ", ".join(f"{k}={v}" for k, v in res.machine_counters.items()))
    if args.trace:
        _print_trace_summary(machine)
    if args.profile is not None:
        _export_profile(
            machine, args.profile, args.trace_format,
            command="apsp", arch="ppa", n=n, word_bits=args.word_bits,
            serial=bool(args.serial), lanes=args.lanes,
        )
    return 0


def _cmd_profile(args) -> int:
    from repro.telemetry import (
        RunProfile,
        compare_profiles,
        load_profile,
        phase_table,
        save_profile,
    )

    inf = (1 << args.word_bits) - 1
    if args.graph is not None:
        W = _load_graph(args.graph, inf)
    else:
        W = _FAMILIES[args.generate](args.n, args.seed, args.density, inf)
    n = W.shape[0]
    d = args.destination

    machine, run = _make_machine_and_runner(args.arch, n, args.word_bits)
    engine = getattr(args, "engine", "auto")
    if engine == "fused":
        print("note: engine 'fused' unavailable: the profiler's span "
              "tracer needs per-transaction cycle spans; running the "
              "cycle engine (results are identical)")
        engine = "cycle"
    with machine.telemetry.capture():
        result = run(W, d, engine=engine)
    profile = RunProfile.from_tracer(
        machine.telemetry, command="profile", arch=args.arch, n=n, d=d,
        word_bits=args.word_bits,
    )
    print(phase_table(profile).render())
    print(f"iterations: {result.iterations}")
    if args.out is not None:
        save_profile(profile, args.out, trace_format=args.trace_format)
        print(f"profile written to {args.out} ({args.trace_format})")
    if args.compare is not None:
        diffs = compare_profiles(load_profile(args.compare), profile)
        if diffs:
            print(f"drift against {args.compare}:")
            for line in diffs:
                print(f"  {line}")
            return 1
        print(f"no drift against {args.compare}")
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import main as report_main

    argv = []
    if args.quick:
        argv.append("--quick")
    if args.markdown:
        argv.append("--markdown")
    argv.extend(args.experiments)
    return report_main(argv)


def _cmd_ppc(args) -> int:
    from repro.core.graph import normalize_weights
    from repro.ppc.lang import compile_ppc
    from repro.ppc.lang.formatter import format_program
    from repro.ppc.lang.parser import parse

    if not args.file.exists():
        raise ReproError(f"PPC source not found: {args.file}")
    source = args.file.read_text()
    if args.format:
        print(format_program(parse(source)), end="")
        return 0
    machine = PPAMachine(PPAConfig(n=args.n, word_bits=args.word_bits))
    globals_: dict[str, object] = {}
    for item in args.set:
        name, _, value = item.partition("=")
        if not _:
            raise ReproError(f"--set expects NAME=INT, got {item!r}")
        globals_[name] = int(value, 0)
    if args.graph is not None:
        W = _load_graph(args.graph, machine.maxint)
        globals_["W"] = normalize_weights(W, machine)
    if args.compile_only or args.run_compiled:
        from repro.ppc.lang.codegen import compile_to_asm

        compiled = compile_to_asm(
            source, args.n, args.word_bits, entry=args.entry
        )
        if args.compile_only:
            print(compiled.asm, end="")
            return 0
        run = compiled.run(machine, globals=globals_)
        for name, value in run.globals.items():
            if isinstance(value, np.ndarray):
                print(f"{name} =\n{value}")
            else:
                print(f"{name} = {value}")
        print("counters: " + ", ".join(
            f"{k}={v}" for k, v in run.counters.items()))
        return 0
    program = compile_ppc(source)
    run = program.run(machine, args.entry, globals=globals_)
    if run.value is not None:
        print(f"return value: {run.value}")
    for name, value in run.globals.items():
        if isinstance(value, np.ndarray):
            print(f"{name} =\n{value}")
        else:
            print(f"{name} = {value}")
    print("counters: " + ", ".join(f"{k}={v}" for k, v in run.counters.items()))
    return 0


#: bundled PPC listings lintable by name (plus "asm-mcp", handled apart).
_LINT_PPC_PROGRAMS = {
    "min": "MIN_CODE",
    "selected-min": "SELECTED_MIN_CODE",
    "mcp": "MCP_CODE",
    "mcp-library-min": "MCP_WITH_LIBRARY_MIN",
    "distance-transform": "DISTANCE_TRANSFORM_CODE",
}
_LINT_PROGRAMS = {**_LINT_PPC_PROGRAMS, "asm-mcp": None}


def _extract_ppc_strings(path: Path) -> list[tuple[str, str]]:
    """Module-level PPC listings embedded in a Python file.

    A string constant assigned at module level counts as a PPC listing
    when it mentions the ``parallel`` keyword and parses as a PPC
    program. Strings inside functions (e.g. deliberately-broken demo
    snippets) are not scanned.
    """
    import ast as pyast

    from repro.errors import PPCError
    from repro.ppc.lang.parser import parse as ppc_parse

    tree = pyast.parse(path.read_text())
    found: list[tuple[str, str]] = []
    for node in tree.body:
        targets = []
        if isinstance(node, pyast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, pyast.Name)
            ]
            value = node.value
        elif isinstance(node, pyast.AnnAssign) and node.value is not None:
            if isinstance(node.target, pyast.Name):
                targets = [node.target.id]
            value = node.value
        else:
            continue
        if not (
            targets
            and isinstance(value, pyast.Constant)
            and isinstance(value.value, str)
            and "parallel" in value.value
        ):
            continue
        try:
            program = ppc_parse(value.value)
        except PPCError:
            continue  # a string, but not a PPC program
        if program.functions:
            found.append((targets[0], value.value))
    return found


def _lint_asm_mcp(args) -> "object":
    """Verify + cost-audit the bundled assembly MCP stream."""
    from repro.core.asm_mcp import mcp_assembly
    from repro.ppa.assembler import assemble
    from repro.verify import audit_mcp_cost, verify_isa
    from repro.verify.diagnostics import Report

    config = PPAConfig(n=args.n, word_bits=args.word_bits)
    program = assemble(mcp_assembly(config.n, config.word_bits))
    report = Report(source="asm-mcp")
    for d in sorted({0, args.n // 2, args.n - 1}):
        verify_isa(
            program, config, inputs={"r0": None, "s0": d}, report=report
        )
    if not args.no_cost_audit:
        report.extend(audit_mcp_cost(config))
    return report


#: bumped whenever the shape of `repro lint --json` changes; downstream
#: tooling gates on it (tests/verify/test_cli_lint.py pins the golden).
LINT_SCHEMA_VERSION = 1


def _cmd_lint_host(args) -> int:
    from repro.verify.host_checks import analyze_host_file, \
        iter_python_files

    targets = args.files or [Path("src/repro")]
    reports = [analyze_host_file(p) for p in iter_python_files(targets)]
    # keep only units with findings in text mode; JSON keeps everything
    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    if args.json:
        import json

        print(json.dumps(
            {
                "schema_version": LINT_SCHEMA_VERSION,
                "mode": "host",
                "errors": errors,
                "warnings": warnings,
                "reports": [r.to_dict() for r in reports],
            },
            indent=2,
        ))
    else:
        for report in reports:
            if report.diagnostics:
                print(report.render())
        print(
            f"lint --host: {len(reports)} file(s), {errors} error(s), "
            f"{warnings} warning(s)"
        )
    return 1 if errors else 0


def _cmd_lint(args) -> int:
    from repro.ppc.lang import programs as bundled
    from repro.verify import verify_ppc_source

    if args.host:
        return _cmd_lint_host(args)

    selected = list(args.program)
    if not selected and not args.files:
        selected = ["all"]
    if "all" in selected:
        selected = sorted(_LINT_PROGRAMS)

    reports = []
    for name in selected:
        if name == "asm-mcp":
            reports.append(_lint_asm_mcp(args))
            continue
        source = getattr(bundled, _LINT_PPC_PROGRAMS[name])
        reports.append(
            verify_ppc_source(
                source,
                n=args.n,
                word_bits=args.word_bits,
                source_name=name,
            )
        )
    for path in args.files:
        if not path.exists():
            raise ReproError(f"lint target not found: {path}")
        if path.suffix == ".py":
            listings = _extract_ppc_strings(path)
            for var, source in listings:
                reports.append(
                    verify_ppc_source(
                        source,
                        n=args.n,
                        word_bits=args.word_bits,
                        source_name=f"{path}:{var}",
                    )
                )
            if not listings and not args.json:
                print(f"{path}: no module-level PPC listings found")
        else:
            reports.append(
                verify_ppc_source(
                    path.read_text(),
                    n=args.n,
                    word_bits=args.word_bits,
                    source_name=str(path),
                )
            )

    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    if args.json:
        import json

        print(json.dumps(
            {
                "schema_version": LINT_SCHEMA_VERSION,
                "mode": "ppc",
                "errors": errors,
                "warnings": warnings,
                "reports": [r.to_dict() for r in reports],
            },
            indent=2,
        ))
    else:
        for report in reports:
            print(report.render())
        print(
            f"lint: {len(reports)} unit(s), {errors} error(s), "
            f"{warnings} warning(s)"
        )
    return 1 if errors else 0


def _cmd_selftest(args) -> int:
    machine = PPAMachine(PPAConfig(n=args.n, word_bits=16))
    plan = _build_fault_plan(args)
    if plan is not None:
        machine.inject_faults(plan)
    if args.profile is not None:
        machine.telemetry.enable()
    if args.trace:
        machine.trace.enabled = True
    report = diagnose_switches(machine)
    if args.trace:
        _print_trace_summary(machine)
    if args.profile is not None:
        _export_profile(
            machine, args.profile, args.trace_format,
            command="selftest", arch="ppa", n=args.n,
        )
    if report.healthy:
        print(f"all {2 * args.n * args.n} switch-boxes healthy "
              f"({report.transactions} probe transactions)")
        return 0
    for f in report.faults:
        print(f"{f.kind.value} switch at ({f.row}, {f.col}) on "
              f"{'column' if f.axis == 0 else 'row'} bus")
    for axis, ring in report.undiagnosable_rings:
        print(f"{'column' if axis == 0 else 'row'} ring {ring}: "
              "undiagnosable (too few working switches)")
    return 1


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import PathQueryService, ServiceConfig

    config = ServiceConfig(
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        workers=args.workers,
        shard_timeout=args.shard_timeout,
        default_deadline_ms=args.deadline_ms,
        seed=args.seed,
        verify=not args.no_verify,
        coalesce=not args.no_coalesce,
        coalesce_window_ms=args.coalesce_window_ms,
        max_lanes=args.max_lanes,
    )

    def summary(service: "PathQueryService") -> None:
        stats = service.stats()
        co = stats.get("coalescer")
        if co is not None:
            print(f"repro serve: coalescer dispatched {co['batches']} "
                  f"batches for {co['requests']} requests "
                  f"({co['single_flight_hits']} single-flight hits); "
                  f"lane fill {co['lane_fill'] or '{}'}")
        eng = stats.get("engine", {})
        plan, cost = eng.get("plan_cache", {}), eng.get("cost_cache", {})
        if plan or cost:
            print("repro serve: engine plan cache "
                  f"{plan.get('broadcast_hits', 0) + plan.get('reduce_hits', 0)} hits / "
                  f"{plan.get('broadcast_misses', 0) + plan.get('reduce_misses', 0)} misses; "
                  f"cost cache {cost.get('hits', 0)} hits / "
                  f"{cost.get('misses', 0)} misses")

    async def run() -> None:
        service = PathQueryService(config)
        server = await service.start(args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"repro serve: listening on {host}:{port} "
              f"(max_inflight={config.max_inflight}, "
              f"max_queue={config.max_queue}, workers={config.workers}, "
              f"coalesce={'on' if config.coalesce else 'OFF'}, "
              f"verify={'on' if config.verify else 'OFF'})")
        try:
            await server.serve_forever()
        finally:
            await service.stop()
            summary(service)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("repro serve: shut down")
    return 0


def _cmd_loadgen(args) -> int:
    import asyncio
    import json

    from repro.serve.loadgen import run_loadgen

    async def run():
        service = None
        host, port = args.host, args.port
        if args.self_serve:
            from repro.serve import PathQueryService, ServiceConfig

            service = PathQueryService(ServiceConfig(seed=args.seed))
            server = await service.start("127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
        try:
            return await run_loadgen(
                host, port,
                requests=args.requests,
                concurrency=args.concurrency,
                connections=args.connections,
                graph=args.graph,
                n=args.n,
                density=args.density,
                deadline_ms=args.deadline_ms,
                seed=args.seed,
                zipf=args.zipf,
                update_every=args.update_every,
            )
        finally:
            if service is not None:
                await service.stop()

    result = asyncio.run(run())
    body = result.to_dict()
    if args.json:
        print(json.dumps(body, indent=2))
    else:
        lat = body["latency_ms"]
        print(f"requests      {body['requests']}")
        print(f"statuses      {body['by_status']}")
        print(f"degraded      {body['degraded']}")
        if body.get("updates"):
            print(f"updates       {body['updates']}")
        print(f"validated     {body['validated']} (wrong: {body['wrong']})")
        if lat:
            print(f"latency ms    p50={lat['p50']}  p90={lat['p90']}  "
                  f"p99={lat['p99']}  max={lat['max']}")
        print(f"throughput    {body['throughput_rps']} req/s "
              f"(goodput {body['goodput_rps']} ok/s) over "
              f"{body['wall_s']} s")
    return 1 if result.wrong else 0


def _cmd_chaos(args) -> int:
    import json

    from repro.serve.chaos import run_chaos_campaign

    report = run_chaos_campaign(
        runs=args.runs,
        seed=args.seed,
        n=args.n,
        requests_per_run=args.requests_per_run,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(f"chaos campaign: {report['runs']} runs, seed {report['seed']}")
        print(f"statuses        {report['by_status']}")
        print(f"degraded        {report['degraded_responses']} "
              f"(verify rejections: {report['verify_rejections']}, "
              f"ladder downgrades: {report['ladder_downgrades']}, "
              f"breaker trips: {report['breaker_trips']})")
        print(f"latency ms      {report['latency_ms']}")
        print(f"silent wrong    {report['silent_wrong']}")
        print(f"leaked shm      {report['leaked_shm'] or 'none'}")
        print(f"digest          {report['digest']}")
    failed = bool(report["silent_wrong"] or report["leaked_shm"])
    p99 = report["latency_ms"].get("p99")
    if args.max_p99_ms is not None and (p99 is None
                                        or p99 > args.max_p99_ms):
        print(f"p99 latency {p99} ms exceeds --max-p99-ms "
              f"{args.max_p99_ms}", file=sys.stderr)
        failed = True
    if failed:
        print("chaos campaign FAILED its invariants", file=sys.stderr)
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "mcp": _cmd_mcp,
        "apsp": _cmd_apsp,
        "profile": _cmd_profile,
        "report": _cmd_report,
        "ppc": _cmd_ppc,
        "lint": _cmd_lint,
        "selftest": _cmd_selftest,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "chaos": _cmd_chaos,
    }[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
