"""Plain (non-reconfigurable) mesh baseline.

The foil the PPA's bus design is measured against in experiment F2/T5: the
same ``n x n`` SIMD torus of PEs, but the only communication primitive is a
nearest-neighbour word shift. Everything the PPA does in O(1) bus
transactions here takes Θ(n) shifts:

* a row-to-all column broadcast is ``n - 1`` south shifts;
* a row minimum is a systolic ring sweep — after ``n - 1``
  shift-and-combine steps every PE holds the min (and arg-min) of its whole
  ring, word-parallel per step;
* the controller's global-OR is a reduction to one corner, ``2(n - 1)``
  shifts.

Each shift moves a full word, so ``bit_cycles = shifts * h``. The MCP
structure is otherwise identical to the PPA listing (same DP, same
iteration count), making the communication cost the only variable —
exactly the comparison the paper's Section 1 argues ("it shortens, with
respect to the simple mesh, the distance between the nodes").
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import ComparatorMachine
from repro.core.graph import normalize_weights
from repro.core.result import MCPResult
from repro.errors import GraphError

__all__ = ["MeshMachine"]


class MeshMachine(ComparatorMachine):
    """SIMD torus mesh with nearest-neighbour shifts only."""

    architecture = "mesh"

    # -- primitives ------------------------------------------------------

    def shift_south(self, a: np.ndarray, *, bits: int | None = None) -> np.ndarray:
        """One south shift (each PE receives its north neighbour's word)."""
        self._count_comm(1, bits if bits is not None else self.word_bits)
        return np.roll(a, 1, axis=0)

    def shift_east(self, a: np.ndarray, *, bits: int | None = None) -> np.ndarray:
        self._count_comm(1, bits if bits is not None else self.word_bits)
        return np.roll(a, 1, axis=1)

    def row_to_all(self, values: np.ndarray, row: int) -> np.ndarray:
        """Column broadcast of row *row* to the whole grid: n-1 shifts.

        A carry register starts as row *row*'s values and is shifted south
        ``n - 1`` times; each PE latches it when the wavefront passes.
        """
        n = self.n
        out = values.copy()
        carry = values.copy()
        self.count_alu(2)
        for k in range(1, n):
            carry = self.shift_south(carry)
            arrived = (np.arange(n) == (row + k) % n)[:, None]
            out = np.where(arrived, carry, out)
            self.count_alu()
        return out

    def diag_to_all_south(self, values: np.ndarray) -> np.ndarray:
        """Column broadcast from the diagonal: n-1 south shifts."""
        n = self.n
        out = values.copy()
        carry = values.copy()
        self.count_alu(2)
        rows = np.arange(n)[:, None]
        cols = np.arange(n)[None, :]
        for k in range(1, n):
            carry = self.shift_south(carry)
            arrived = rows == (cols + k) % n
            out = np.where(arrived, carry, out)
            self.count_alu()
        return out

    def row_min_argmin(
        self, values: np.ndarray, args: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Systolic ring min over each row, carrying an argument word.

        ``n - 1`` steps; each step shifts two words (value + arg) and does
        one compare-select. Ties keep the smaller argument, matching
        ``selected_min``'s smallest-column rule.
        """
        n = self.n
        best_v = values.copy()
        best_a = args.copy()
        self.count_alu(2)
        for _ in range(n - 1):
            in_v = self.shift_east(best_v)
            in_a = self.shift_east(best_a)
            take = (in_v < best_v) | ((in_v == best_v) & (in_a < best_a))
            best_v = np.where(take, in_v, best_v)
            best_a = np.where(take, in_a, best_a)
            self.count_alu(3)
        return best_v, best_a

    def global_or(self, flags: np.ndarray) -> bool:
        """OR-reduce to a corner: 2(n - 1) single-bit shifts."""
        self._count_comm(2 * (self.n - 1), 1)
        self.count_alu(2 * (self.n - 1))
        return bool(np.asarray(flags, dtype=bool).any())

    # -- algorithm --------------------------------------------------------

    def mcp(self, W, d: int, **kwargs) -> MCPResult:
        """Minimum cost path to *d*, PPA listing re-targeted to shifts."""
        Wm = normalize_weights(W, self, **kwargs)
        n = self.n
        if not (0 <= d < n):
            raise GraphError(f"destination {d} outside [0, {n})")
        before = self.counters.snapshot()
        tele = self.telemetry

        with tele.span("mcp", arch=self.architecture, n=n, d=d):
            with tele.span("mcp.init"):
                COL = np.broadcast_to(
                    np.arange(n, dtype=np.int64)[None, :], (n, n)
                )
                rows = np.arange(n)

                SOW = np.zeros((n, n), dtype=np.int64)
                PTN = np.zeros((n, n), dtype=np.int64)
                MIN_SOW = np.zeros((n, n), dtype=np.int64)
                # Initialise row d with the 1-edge costs *to* d (column d
                # of W, transposed onto row d): an east sweep to align
                # column d with the diagonal followed by a south sweep to
                # row d - 2(n-1) word shifts.
                SOW[d] = Wm[:, d]
                PTN[d] = d
                self._count_comm(2 * (n - 1), self.word_bits)
                self.count_alu(2)

                not_d = (rows != d)[:, None]

            iterations = 0
            converged = False
            while not converged:
                iterations += 1
                with tele.span("mcp.iteration", k=iterations):
                    with tele.span("mcp.broadcast"):
                        # Column broadcast of the d-row SOW, then form
                        # candidates.
                        cand = self.sat_add(self.row_to_all(SOW, d), Wm)
                        SOW = np.where(not_d, cand, SOW)
                        self.count_alu()
                    with tele.span("mcp.min"):
                        # Row minima (and best successor) by systolic sweep.
                        mv, ma = self.row_min_argmin(SOW, COL.copy())
                        MIN_SOW = np.where(not_d, mv, MIN_SOW)
                        PTN_new = np.where(not_d, ma, PTN)
                        self.count_alu(2)
                    with tele.span("mcp.writeback"):
                        # Diagonal values travel back to row d.
                        old_row = SOW[d].copy()
                        back_v = self.diag_to_all_south(MIN_SOW)
                        back_p = self.diag_to_all_south(PTN_new)
                        SOW[d] = back_v[d]
                        changed = SOW[d] != old_row
                        PTN_new[d] = np.where(changed, back_p[d], PTN[d])
                        PTN = PTN_new
                        self.count_alu(3)
                    with tele.span("mcp.convergence"):
                        converged = not self.global_or(changed)
                if not converged and iterations > n:
                    raise GraphError("MCP did not converge; invalid input")

        return MCPResult(
            destination=d,
            sow=SOW[d].copy(),
            ptn=PTN[d].copy(),
            iterations=iterations,
            maxint=self.maxint,
            counters=self.counters.diff(before),
        )
