"""Δ-stepping: the native CPU shortest-path baseline for the roofline study.

The PPA simulator answers "how many *bus cycles* does the array spend?";
experiment P18 asks the complementary question: how fast can a modern CPU
solve the same instances natively, with the best practical parallel
shortest-path algorithm, so the compiled tier's wall-clock can be judged
against a competitive yardstick rather than only against our own slower
engines. Δ-stepping (Meyer & Sanders 2003) is the standard choice — it is
the algorithm behind the parallel SSSP baselines in the related GPU/CPU
literature (see PAPERS.md) and degenerates gracefully to Dijkstra
(``delta = 1`` on integer weights) and Bellman-Ford (``delta = inf``).

Orientation and conventions match :mod:`repro.baselines.sequential`: costs
from every vertex *i* **to** destination *d* (shortest paths from ``d`` in
the reversed graph), ``maxint``-coded missing edges, non-negative integer
weights, zero diagonal. ``sow`` is validated exactly against Dijkstra in
the tests; ``ptn`` is a *cost-consistent* successor (``sow[i] ==
w[i, ptn[i]] + sow[ptn[i]]``) but not necessarily the smallest-index one —
Δ-stepping's relaxation order is bucket-driven, so pinning the PPA's
``selected_min`` tie-break would be artificial.

The bucket phases are vectorised: one light-edge relaxation of a frontier
is a masked min-plus product over the frontier's columns (numpy), not a
per-edge Python loop, and the all-pairs driver can shard destinations
over ``fork`` worker processes — the same worker topology as
``all_pairs_minimum_cost(workers=...)``, which is exactly what the P18
roofline compares against.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass

import numpy as np

from repro.baselines.sequential import SequentialResult, _check
from repro.errors import GraphError

__all__ = [
    "DeltaAPSPResult",
    "default_delta",
    "delta_stepping",
    "delta_stepping_all_pairs",
]


def default_delta(W, *, maxint: int) -> int:
    """The Meyer-Sanders heuristic bucket width ``max(1, wmax / dmax)``.

    ``wmax`` is the largest finite edge weight and ``dmax`` the maximum
    out-degree of the reversed graph; the ratio balances the number of
    bucket phases against re-relaxation within a bucket. Any positive
    ``delta`` is correct — this only tunes performance.
    """
    W = np.asarray(W, dtype=np.int64)
    edges = (W < maxint) & (W > 0)
    if not edges.any():
        return 1
    wmax = int(W[edges].max())
    dmax = int(edges.sum(axis=1).max())
    return max(1, wmax // max(1, dmax))


def delta_stepping(
    W, d: int, *, maxint: int, delta: int | None = None
) -> SequentialResult:
    """Destination-oriented Δ-stepping toward *d*.

    Returns a :class:`~repro.baselines.sequential.SequentialResult` whose
    ``iterations`` field counts processed bucket phases (the algorithm's
    parallel-depth proxy, as Bellman-Ford's counts relaxation sweeps).
    """
    W = _check(W, d, maxint)
    n = W.shape[0]
    if delta is None:
        delta = default_delta(W, maxint=maxint)
    delta = int(delta)
    if delta < 1:
        raise GraphError(f"delta must be >= 1, got {delta}")

    finite = W < maxint
    np.fill_diagonal(finite, False)
    # Edge (u -> v) of weight W[u, v] is, viewed from the destination, a
    # relaxation of u *through* v; light/heavy masked matrices keep
    # non-qualifying entries at maxint so they never win a min.
    light = np.where(finite & (W <= delta), W, maxint)
    heavy = np.where(finite & (W > delta), W, maxint)
    has_heavy = bool((heavy < maxint).any())

    tent = np.full(n, maxint, dtype=np.int64)
    ptn = np.full(n, d, dtype=np.int64)
    tent[d] = 0
    in_bucket = np.zeros(n, dtype=bool)
    in_bucket[d] = True

    def relax(frontier: np.ndarray, Wmask: np.ndarray) -> None:
        """Relax all Wmask-edges out of *frontier* (vertex index array)."""
        if frontier.size == 0:
            return
        block = Wmask[:, frontier] + tent[frontier][None, :]
        np.minimum(block, maxint, out=block)
        cand = block.min(axis=1)
        improved = cand < tent
        if not improved.any():
            return
        arg = frontier[block[improved].argmin(axis=1)]
        tent[improved] = cand[improved]
        ptn[improved] = arg
        in_bucket[improved] = True

    phases = 0
    # Each bucket is emptied at most once per phase value; 1 + n * wmax /
    # delta bounds the bucket indices, and the inner loop strictly
    # decreases tentative values — the guard only trips on corrupt input.
    max_phases = n * max(1, int(W[finite].max()) if finite.any() else 1)
    while in_bucket.any():
        phases += 1
        if phases > max_phases + 1:  # pragma: no cover - invariant
            raise GraphError("delta-stepping failed to converge")
        k = int((tent[in_bucket] // delta).min())
        removed = np.zeros(n, dtype=bool)
        while True:
            frontier_mask = in_bucket & (tent // delta == k)
            if not frontier_mask.any():
                break
            in_bucket[frontier_mask] = False
            removed |= frontier_mask
            relax(np.flatnonzero(frontier_mask), light)
        if has_heavy:
            relax(np.flatnonzero(removed), heavy)

    return SequentialResult(
        destination=d, sow=tent, ptn=ptn, iterations=phases, maxint=maxint
    )


@dataclass(frozen=True)
class DeltaAPSPResult:
    """All-pairs Δ-stepping outcome (native baseline for P18).

    ``dist[i, j]``/``succ[i, j]`` follow the
    :class:`~repro.core.apsp.APSPResult` convention; ``phases[j]`` is the
    bucket-phase count of destination ``j``'s run.
    """

    dist: np.ndarray
    succ: np.ndarray
    phases: np.ndarray
    maxint: int
    delta: int
    workers: int


# Worker-side state for the fork pool (set by the initializer).
_ap_ctx: dict = {}


def _ap_init(W: np.ndarray, maxint: int, delta: int) -> None:
    _ap_ctx.update(W=W, maxint=maxint, delta=delta)


def _ap_shard(span: tuple[int, int]):
    start, stop = span
    ctx = _ap_ctx
    n = ctx["W"].shape[0]
    dist = np.empty((n, stop - start), dtype=np.int64)
    succ = np.empty((n, stop - start), dtype=np.int64)
    phases = np.empty(stop - start, dtype=np.int64)
    for i, d in enumerate(range(start, stop)):
        res = delta_stepping(
            ctx["W"], d, maxint=ctx["maxint"], delta=ctx["delta"]
        )
        dist[:, i] = res.sow
        succ[:, i] = res.ptn
        phases[i] = res.iterations
    return start, stop, dist, succ, phases


def delta_stepping_all_pairs(
    W,
    *,
    maxint: int,
    delta: int | None = None,
    workers: int | None = None,
) -> DeltaAPSPResult:
    """All-pairs shortest costs via one Δ-stepping run per destination.

    ``workers > 1`` shards the destination range over ``fork`` worker
    processes (the weight matrix rides into the children at fork; shard
    outputs are stitched deterministically by destination range). The
    result is identical for every worker count.
    """
    W = np.asarray(W, dtype=np.int64)
    n = W.shape[0]
    _check(W, 0, maxint)
    if delta is None:
        delta = default_delta(W, maxint=maxint)
    delta = int(delta)

    nworkers = 1 if workers is None else max(1, min(int(workers), n))
    if nworkers > 1 and "fork" not in mp.get_all_start_methods():
        nworkers = 1  # pragma: no cover - non-fork platforms only

    dist = np.empty((n, n), dtype=np.int64)
    succ = np.empty((n, n), dtype=np.int64)
    phases = np.empty(n, dtype=np.int64)

    if nworkers == 1:
        for d in range(n):
            res = delta_stepping(W, d, maxint=maxint, delta=delta)
            dist[:, d] = res.sow
            succ[:, d] = res.ptn
            phases[d] = res.iterations
    else:
        pieces = np.array_split(np.arange(n), nworkers)
        spans = [(int(p[0]), int(p[-1]) + 1) for p in pieces if p.size]
        ctx = mp.get_context("fork")
        with ctx.Pool(
            processes=len(spans),
            initializer=_ap_init,
            initargs=(W, maxint, delta),
        ) as pool:
            for start, stop, dcols, scols, ph in pool.map(_ap_shard, spans):
                dist[:, start:stop] = dcols
                succ[:, start:stop] = scols
                phases[start:stop] = ph

    return DeltaAPSPResult(
        dist=dist,
        succ=succ,
        phases=phases,
        maxint=maxint,
        delta=delta,
        workers=nworkers,
    )
