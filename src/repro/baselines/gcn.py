"""Gated Connection Network baseline (paper reference [5], Shu & Nash).

The GCN is the PPA's closest relative: an ``n x n`` array whose rows and
columns are *bidirectional wired lines* with a gate between every pair of
adjacent PEs. Closing all gates of a line makes it a single wire — any PE
can drive it and every PE reads it in one cycle; opening gates splits the
line into independent segments. Unlike the PPA there is no global
data-movement direction and lines are linear, not circular.

Like the original (designed for dynamic programming with 1-bit drivers),
values travel bit-serially: a word broadcast costs ``h`` line cycles and
the segment minimum uses the same MSB-first wired-OR elimination as the
PPA's ``min()`` — O(h) cycles. The MCP therefore lands at O(p*h), the same
complexity class the paper claims for the PPA, with slightly different
constants (no circular wrap means the diagonal-to-row-d return needs one
driver per column segment, not a torus trick).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import ComparatorMachine
from repro.core.graph import normalize_weights
from repro.core.result import MCPResult
from repro.errors import BusError, GraphError

__all__ = ["GCNMachine"]


class GCNMachine(ComparatorMachine):
    """Array of PEs joined by gated row/column wired lines."""

    architecture = "gcn"

    # -- line primitives ---------------------------------------------------
    #
    # ``axis=1``: row lines (segments along columns); ``axis=0``: column
    # lines. ``cuts`` is a boolean grid: cuts[..., j] True means the gate
    # *before* element j on its line is open (j = 0 entries are ignored —
    # there is no gate before the first element). All-closed gates = whole
    # line is one segment.

    def _segment_ids(self, cuts: np.ndarray | None, axis: int) -> np.ndarray:
        n = self.n
        if cuts is None:
            return np.zeros((n, n), dtype=np.int64)
        cuts = np.asarray(cuts, dtype=bool).copy()
        if axis == 1:
            cuts[:, 0] = False
            return np.cumsum(cuts, axis=1)
        cuts[0, :] = False
        return np.cumsum(cuts, axis=0)

    def _per_segment(self, values, seg, axis, ufunc):
        """Apply a segmented reduction and fan the result back (one cycle)."""
        v = np.ascontiguousarray(values if axis == 1 else values.T)
        s = np.ascontiguousarray(seg if axis == 1 else seg.T)
        n = self.n
        flat_v = v.reshape(-1)
        # Segment starts: position 0 of each line plus every id change.
        change = np.ones_like(s, dtype=bool)
        change[:, 1:] = s[:, 1:] != s[:, :-1]
        starts = np.flatnonzero(change.reshape(-1))
        red = ufunc.reduceat(flat_v, starts)
        ids = np.cumsum(change.reshape(-1)) - 1
        out = red[ids].reshape(n, n)
        return out if axis == 1 else out.T

    def line_or(self, bits, axis: int, cuts=None) -> np.ndarray:
        """Wired-OR per segment, visible to every segment member (1 cycle)."""
        seg = self._segment_ids(cuts, axis)
        self._count_comm(1, 1)
        return self._per_segment(
            np.asarray(bits, dtype=bool), seg, axis, np.logical_or
        ).astype(bool)

    def line_broadcast(
        self, values, drivers, axis: int, cuts=None, *, bits: int | None = None
    ) -> np.ndarray:
        """Each segment's unique driver puts its word on the line.

        Bit-serial: charged ``h`` cycles (or *bits*). Raises
        :class:`BusError` if any segment has two drivers with conflicting
        values (a real GCN would see garbage); segments with no driver keep
        their old values.
        """
        values = np.asarray(values, dtype=np.int64)
        drivers = np.asarray(drivers, dtype=bool)
        seg = self._segment_ids(cuts, axis)
        self._count_comm(1, bits if bits is not None else self.word_bits)

        staged_min = np.where(drivers, values, np.iinfo(np.int64).max)
        staged_max = np.where(drivers, values, np.iinfo(np.int64).min)
        lo = self._per_segment(staged_min, seg, axis, np.minimum)
        hi = self._per_segment(staged_max, seg, axis, np.maximum)
        driven = self._per_segment(drivers, seg, axis, np.logical_or)
        if bool((driven & (lo != hi)).any()):
            raise BusError("conflicting drivers on one GCN line segment")
        return np.where(driven, lo, values)

    def line_min(
        self, values, axis: int, cuts=None, *, args: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Bit-serial segment minimum (and optional arg-min), PPA-style.

        ``h`` wired-OR elimination cycles for the value; arg-min resolution
        re-runs the elimination over the argument word among survivors
        (another ``h`` cycles), then one word broadcast each.
        """
        with self.telemetry.span("min"):
            values = np.asarray(values, dtype=np.int64)
            enable = np.ones(self.shape, dtype=bool)
            self.count_alu()
            enable = self._eliminate(values, enable, axis, cuts)
            # Every survivor of a segment holds the same (minimal) value,
            # so all of them may drive the line together without conflict.
            min_v = self.line_broadcast(values, enable, axis, cuts)
            if args is None:
                return min_v, None
            args = np.asarray(args, dtype=np.int64)
            surv = self._eliminate(args, enable, axis, cuts)
            min_a = self.line_broadcast(args, surv, axis, cuts)
            return min_v, min_a

    def _eliminate(self, values, enable, axis, cuts) -> np.ndarray:
        """MSB-first elimination: survivors hold the segment minimum."""
        enable = enable.copy()
        tele = self.telemetry
        for j in range(self.word_bits - 1, -1, -1):
            with tele.span("min.bit_slice", j=j):
                bit_j = (values >> j) & 1 == 1
                self.count_alu()
                zero_seen = self.line_or(enable & ~bit_j, axis, cuts)
                enable &= ~(zero_seen & bit_j)
                self.count_alu(3)
        return enable

    def global_or(self, flags) -> bool:
        """One row wired-OR plus one column wired-OR into the controller."""
        self._count_comm(2, 1)
        return bool(np.asarray(flags, dtype=bool).any())

    # -- algorithm ----------------------------------------------------------

    def mcp(self, W, d: int, **kwargs) -> MCPResult:
        """Minimum cost path to *d* on the GCN."""
        Wm = normalize_weights(W, self, **kwargs)
        n = self.n
        if not (0 <= d < n):
            raise GraphError(f"destination {d} outside [0, {n})")
        before = self.counters.snapshot()
        tele = self.telemetry

        with tele.span("mcp", arch=self.architecture, n=n, d=d):
            with tele.span("mcp.init"):
                COL = np.broadcast_to(
                    np.arange(n, dtype=np.int64)[None, :], (n, n)
                )
                rows = np.arange(n)
                not_d = (rows != d)[:, None]
                diag = np.eye(n, dtype=bool)

                SOW = np.zeros((n, n), dtype=np.int64)
                PTN = np.zeros((n, n), dtype=np.int64)
                # Row d holds the 1-edge costs *to* d: column d of W
                # transposed via a row-line broadcast from column d plus a
                # diagonal-driven column broadcast - two word transactions.
                SOW[d] = Wm[:, d]
                PTN[d] = d
                self._count_comm(2, self.word_bits)
                self.count_alu(2)

                row_d_drivers = (
                    (rows == d)[:, None] & np.ones((n, n), dtype=bool)
                )

            iterations = 0
            converged = False
            while not converged:
                iterations += 1
                with tele.span("mcp.iteration", k=iterations):
                    with tele.span("mcp.broadcast"):
                        # Row d drives every column line (all gates closed).
                        down = self.line_broadcast(SOW, row_d_drivers, axis=0)
                        cand = self.sat_add(down, Wm)
                        SOW = np.where(not_d, cand, SOW)
                        self.count_alu()
                    with tele.span("mcp.min"):
                        # Per-row bit-serial min + arg-min.
                        mv, ma = self.line_min(SOW, axis=1, args=COL.copy())
                        MIN_SOW = np.where(not_d, mv, 0)
                        PTN_new = np.where(not_d, ma, PTN)
                        self.count_alu(2)
                    with tele.span("mcp.writeback"):
                        # Diagonal drives each column line back to row d.
                        back_v = self.line_broadcast(MIN_SOW, diag, axis=0)
                        back_p = self.line_broadcast(PTN_new, diag, axis=0)
                        old_row = SOW[d].copy()
                        SOW[d] = back_v[d]
                        changed = SOW[d] != old_row
                        PTN_new[d] = np.where(changed, back_p[d], PTN[d])
                        PTN = PTN_new
                        self.count_alu(3)
                    with tele.span("mcp.convergence"):
                        converged = not self.global_or(changed)
                if not converged and iterations > n:
                    raise GraphError("MCP did not converge; invalid input")

        return MCPResult(
            destination=d,
            sow=SOW[d].copy(),
            ptn=PTN[d].copy(),
            iterations=iterations,
            maxint=self.maxint,
            counters=self.counters.diff(before),
        )
