"""Shared plumbing for comparator machines.

Every comparator exposes the same surface as the PPA path:

* a ``counters`` bundle using the common vocabulary
  (:class:`~repro.ppa.counters.CycleCounters`) — ``bus_cycles`` is the
  unified "communication steps" metric of experiment T5 and ``bit_cycles``
  weighs each transfer by its operand width;
* ``maxint``/``word_bits``/``require_square_fit`` so
  :func:`repro.core.graph.normalize_weights` validates inputs identically;
* an ``mcp(W, d) -> MCPResult`` entry point.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MaskError
from repro.ppa.counters import CycleCounters
from repro.telemetry.spans import Tracer

__all__ = ["ComparatorMachine"]


class ComparatorMachine:
    """Base class: grid geometry, word width and counter bookkeeping."""

    #: human-readable architecture tag, overridden by subclasses
    architecture = "abstract"

    def __init__(self, n: int, word_bits: int = 16):
        from repro.ppa.topology import PPAConfig  # reuse validation

        cfg = PPAConfig(n=n, word_bits=word_bits)
        self.n = cfg.n
        self.word_bits = cfg.word_bits
        self.counters = CycleCounters()
        #: span tracer (see :mod:`repro.telemetry`); disabled by default.
        self.telemetry = Tracer(self.counters)

    @property
    def maxint(self) -> int:
        return (1 << self.word_bits) - 1

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    def require_square_fit(self, size: int) -> None:
        if size != self.n:
            raise MaskError(
                f"problem of size {size} requires an {size}x{size} machine; "
                f"this machine is {self.n}x{self.n}"
            )

    # -- counter helpers -------------------------------------------------
    def _count_comm(self, steps: int, bits_per_step: int) -> None:
        """Charge *steps* communication operations of *bits_per_step* each."""
        c = self.counters
        c.instructions += steps
        c.bus_cycles += steps
        c.bit_cycles += steps * bits_per_step

    def count_alu(self, k: int = 1) -> None:
        self.counters.instructions += k
        self.counters.alu_ops += k

    def sat_add(self, a, b) -> np.ndarray:
        out = np.minimum(
            np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64),
            self.maxint,
        )
        self.count_alu()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.n}, word_bits={self.word_bits})"
        )
