"""Comparator systems.

* :mod:`~repro.baselines.sequential` — Bellman-Ford and Dijkstra oracles.
* :mod:`~repro.baselines.delta_stepping` — Meyer-Sanders Δ-stepping, the
  native parallel-CPU yardstick for the P18 roofline study.
* :mod:`~repro.baselines.mesh` — plain (non-reconfigurable) mesh, the foil
  the paper's bus design improves on: O(n) per sweep.
* :mod:`~repro.baselines.hypercube` — Connection-Machine-style hypercube
  (paper reference [4]): O(log n) word-parallel combining.
* :mod:`~repro.baselines.gcn` — Gated Connection Network (reference [5]):
  O(1) gated broadcast with bit-serial O(h) minima, the PPA's closest peer.

Every machine exposes the same ``mcp(W, d) -> MCPResult`` entry point and
the same counter vocabulary, so experiment T5 compares like with like.
"""

from repro.baselines.sequential import bellman_ford, dijkstra
from repro.baselines.delta_stepping import (
    DeltaAPSPResult,
    default_delta,
    delta_stepping,
    delta_stepping_all_pairs,
)
from repro.baselines.mesh import MeshMachine
from repro.baselines.hypercube import HypercubeMachine
from repro.baselines.gcn import GCNMachine

__all__ = [
    "bellman_ford",
    "dijkstra",
    "DeltaAPSPResult",
    "default_delta",
    "delta_stepping",
    "delta_stepping_all_pairs",
    "MeshMachine",
    "HypercubeMachine",
    "GCNMachine",
]
