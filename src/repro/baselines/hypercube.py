"""Connection-Machine-style hypercube baseline (paper reference [4]).

Hillis' Connection Machine solves the same dynamic program with its
``n**2`` processors wired as a boolean hypercube. Mapping the weight matrix
onto the grid exactly as the PPA does, every row (and every column) of the
matrix occupies one ``log2(n)``-dimensional *subcube*, so the two
communication patterns of the DP become standard hypercube collectives:

* **one-to-all broadcast** within a subcube — ``log2 n`` dimension
  exchanges (each PE forwards to its partner across one cube dimension);
* **all-reduce minimum** within a subcube — ``log2 n`` exchange-and-compare
  steps, word-parallel.

Per DP iteration the hypercube therefore spends Θ(log n) word transfers
where the PPA spends Θ(h) single-bit bus cycles — the comparison behind the
paper's closing claim, quantified by experiment T5 in both metrics.

``n`` must be a power of two (the usual CM constraint).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import ComparatorMachine
from repro.core.graph import normalize_weights
from repro.core.result import MCPResult
from repro.errors import ConfigurationError, GraphError

__all__ = ["HypercubeMachine"]


def _is_pow2(x: int) -> bool:
    return x >= 1 and (x & (x - 1)) == 0


class HypercubeMachine(ComparatorMachine):
    """SIMD hypercube of ``n**2`` PEs holding the weight matrix grid."""

    architecture = "hypercube"

    def __init__(self, n: int, word_bits: int = 16):
        if not _is_pow2(n):
            raise ConfigurationError(
                f"hypercube grid side must be a power of two, got {n}"
            )
        super().__init__(n, word_bits)
        self.dim = int(np.log2(n))  # dimensions per row/column subcube

    # -- collectives ------------------------------------------------------
    #
    # axis=1: the subcube spans the columns of each row (row collective);
    # axis=0: spans the rows of each column (column collective).

    def _exchange(self, a: np.ndarray, axis: int, k: int) -> np.ndarray:
        """Swap values with the partner across cube dimension *k*."""
        idx = np.arange(self.n) ^ (1 << k)
        self._count_comm(1, self.word_bits if a.dtype != np.bool_ else 1)
        return a[:, idx] if axis == 1 else a[idx, :]

    def allreduce_min(
        self, values: np.ndarray, args: np.ndarray, axis: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Subcube all-reduce min with argument, smallest-arg tie-break.

        ``log2 n`` exchange steps; each moves the value and the argument
        word (2 transfers) and performs one compare-select.
        """
        best_v = values.copy()
        best_a = args.copy()
        self.count_alu(2)
        for k in range(self.dim):
            in_v = self._exchange(best_v, axis, k)
            in_a = self._exchange(best_a, axis, k)
            take = (in_v < best_v) | ((in_v == best_v) & (in_a < best_a))
            best_v = np.where(take, in_v, best_v)
            best_a = np.where(take, in_a, best_a)
            self.count_alu(3)
        return best_v, best_a

    def one_to_all(self, values: np.ndarray, root: int, axis: int) -> np.ndarray:
        """Subcube broadcast from index *root* along *axis*.

        Classic doubling: after step ``k``, the ``2**(k+1)`` PEs whose index
        agrees with *root* outside the low ``k + 1`` bits hold the value.
        """
        out = values.copy()
        idx = np.arange(self.n)
        have = idx == root
        self.count_alu(2)
        for k in range(self.dim):
            in_v = self._exchange(out, axis, k)
            have_partner = have[idx ^ (1 << k)]
            newly = ~have & have_partner
            sel = newly[None, :] if axis == 1 else newly[:, None]
            out = np.where(sel, in_v, out)
            have = have | have_partner
            self.count_alu(2)
        return out

    def global_or(self, flags: np.ndarray) -> bool:
        """OR-reduce over the full ``2 log2 n``-dimensional cube (1-bit)."""
        self._count_comm(2 * self.dim, 1)
        self.count_alu(2 * self.dim)
        return bool(np.asarray(flags, dtype=bool).any())

    # -- algorithm --------------------------------------------------------

    def mcp(self, W, d: int, **kwargs) -> MCPResult:
        """Minimum cost path to *d* with hypercube collectives."""
        Wm = normalize_weights(W, self, **kwargs)
        n = self.n
        if not (0 <= d < n):
            raise GraphError(f"destination {d} outside [0, {n})")
        before = self.counters.snapshot()
        tele = self.telemetry

        with tele.span("mcp", arch=self.architecture, n=n, d=d):
            with tele.span("mcp.init"):
                COL = np.broadcast_to(
                    np.arange(n, dtype=np.int64)[None, :], (n, n)
                )
                rows = np.arange(n)
                not_d = (rows != d)[:, None]

                SOW = np.zeros((n, n), dtype=np.int64)
                PTN = np.zeros((n, n), dtype=np.int64)
                # Row d holds the 1-edge costs *to* d: column d of W
                # transposed via a row-subcube broadcast from column d plus
                # a diagonal-rooted column broadcast - 2 log2(n) word
                # exchanges.
                SOW[d] = Wm[:, d]
                PTN[d] = d
                self._count_comm(2 * self.dim, self.word_bits)
                self.count_alu(2)

            iterations = 0
            converged = False
            while not converged:
                iterations += 1
                with tele.span("mcp.iteration", k=iterations):
                    with tele.span("mcp.broadcast"):
                        cand = self.sat_add(
                            self.one_to_all(SOW, d, axis=0), Wm
                        )
                        SOW = np.where(not_d, cand, SOW)
                        self.count_alu()
                    with tele.span("mcp.min"):
                        mv, ma = self.allreduce_min(SOW, COL.copy(), axis=1)
                    with tele.span("mcp.writeback"):
                        # Every PE of a row now holds the row min; column
                        # j's diagonal holds row j's result, so a column
                        # broadcast from the diagonal is unnecessary:
                        # instead broadcast within each column from the row
                        # that equals the column index. On the hypercube
                        # this is the general one-to-all with a per-column
                        # root, realised as log n exchanges with diagonal
                        # latching.
                        back_v = self._diag_to_all(mv)
                        back_p = self._diag_to_all(np.where(not_d, ma, PTN))
                        old_row = SOW[d].copy()
                        new_row = back_v[d].copy()
                        # cost d -> d (MIN_SOW never computed on row d)
                        new_row[d] = 0
                        changed = new_row != old_row
                        SOW[d] = new_row
                        PTN_row = np.where(changed, back_p[d], PTN[d])
                        PTN = np.where(not_d, ma, PTN)
                        PTN[d] = PTN_row
                        self.count_alu(4)
                    with tele.span("mcp.convergence"):
                        converged = not self.global_or(changed)
                if not converged and iterations > n:
                    raise GraphError("MCP did not converge; invalid input")

        return MCPResult(
            destination=d,
            sow=SOW[d].copy(),
            ptn=PTN[d].copy(),
            iterations=iterations,
            maxint=self.maxint,
            counters=self.counters.diff(before),
        )

    def _diag_to_all(self, values: np.ndarray) -> np.ndarray:
        """Column broadcast whose root differs per column (the diagonal).

        Standard doubling works unchanged because "holds the value" is a
        per-PE predicate: start with the diagonal marked, exchange along
        each of the ``log2 n`` row dimensions and latch.
        """
        n = self.n
        out = values.copy()
        have = np.eye(n, dtype=bool)
        self.count_alu(2)
        for k in range(self.dim):
            idx = np.arange(n) ^ (1 << k)
            in_v = out[idx, :]
            in_have = have[idx, :]
            self._count_comm(1, self.word_bits)
            newly = ~have & in_have
            out = np.where(newly, in_v, out)
            have = have | in_have
            self.count_alu(2)
        return out
