"""Sequential shortest-path oracles.

These are the ground truth every parallel machine is validated against
(the paper's "validated through simulation"). Both operate directly on the
library's weight-matrix convention (``maxint``-coded missing edges) and
solve the paper's *to-one-destination* orientation: costs from every vertex
``i`` **to** ``d``, i.e. shortest paths in the reversed graph.

``bellman_ford`` mirrors the DP structure of the parallel algorithm (its
iteration count is the same ``p`` the PPA loop executes, useful for F4);
``dijkstra`` is the independent oracle with a different algorithmic shape.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError

__all__ = ["SequentialResult", "bellman_ford", "dijkstra"]


@dataclass(frozen=True)
class SequentialResult:
    """Costs/successors toward one destination, plus iteration metadata."""

    destination: int
    sow: np.ndarray  # cost i -> d, maxint when unreachable
    ptn: np.ndarray  # successor of i toward d (d where i == d / unreachable)
    iterations: int  # Bellman-Ford rounds executed (0 for Dijkstra)
    maxint: int

    @property
    def reachable(self) -> np.ndarray:
        return self.sow < self.maxint


def _check(W: np.ndarray, d: int, maxint: int) -> np.ndarray:
    W = np.asarray(W, dtype=np.int64)
    n = W.shape[0]
    if W.ndim != 2 or W.shape[1] != n:
        raise GraphError(f"weight matrix must be square, got {W.shape}")
    if not (0 <= d < n):
        raise GraphError(f"destination {d} outside [0, {n})")
    if (W < 0).any():
        raise GraphError("edge weights must be non-negative")
    if (np.diag(W) != 0).any():
        raise GraphError("diagonal must be zero")
    if (W > maxint).any():
        raise GraphError(f"weights exceed maxint={maxint}")
    return W


def bellman_ford(W, d: int, *, maxint: int) -> SequentialResult:
    """Destination-oriented Bellman-Ford with early exit.

    Relaxes ``sow[i] = min_j (w[i, j] + sow[j])`` in full sweeps until a
    fixed point, matching the parallel algorithm's round structure. Ties
    resolve toward the smallest successor index, like ``selected_min``.
    """
    W = _check(W, d, maxint)
    n = W.shape[0]
    sow = W[:, d].copy()  # 1-edge paths (statement 5 of the listing)
    sow[d] = 0
    ptn = np.full(n, d, dtype=np.int64)

    iterations = 0
    while True:
        iterations += 1
        # candidate[i] = min_j (w[i, j] + sow[j]), saturating at maxint.
        totals = np.minimum(W + sow[None, :], maxint)
        candidates = totals.min(axis=1)
        arg = totals.argmin(axis=1)  # numpy argmin = smallest index on ties
        changed = candidates < sow
        changed[d] = False
        if not changed.any():
            break
        sow = np.where(changed, candidates, sow)
        ptn = np.where(changed, arg, ptn)
        if iterations > n:
            raise GraphError("negative cycle or corrupt input")
    return SequentialResult(
        destination=d,
        sow=sow,
        ptn=ptn,
        iterations=iterations,
        maxint=maxint,
    )


def dijkstra(W, d: int, *, maxint: int) -> SequentialResult:
    """Destination-oriented Dijkstra (binary heap) on the reversed graph."""
    W = _check(W, d, maxint)
    n = W.shape[0]
    sow = np.full(n, maxint, dtype=np.int64)
    ptn = np.full(n, d, dtype=np.int64)
    sow[d] = 0
    done = np.zeros(n, dtype=bool)
    heap: list[tuple[int, int]] = [(0, d)]
    while heap:
        cost, v = heapq.heappop(heap)
        if done[v]:
            continue
        done[v] = True
        # Relax reversed edges: predecessors u with an edge u -> v.
        col = W[:, v]
        for u in np.flatnonzero(col < maxint):
            u = int(u)
            if done[u] or u == v:
                continue
            alt = cost + int(col[u])
            if alt < sow[u] or (alt == sow[u] and v < ptn[u]):
                sow[u] = alt
                ptn[u] = v
                heapq.heappush(heap, (alt, u))
    return SequentialResult(
        destination=d, sow=sow, ptn=ptn, iterations=0, maxint=maxint
    )
