"""Full evaluation report: run every experiment and render the results.

``python -m repro.analysis.report`` prints the complete reproduction of the
paper's evaluation (the source of EXPERIMENTS.md's measured numbers);
``--quick`` shrinks the sweeps.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.experiments import ALL_EXPERIMENTS
from repro.metrics.tables import Series, Table

__all__ = ["run_all", "render_report"]


def run_all(quick: bool = False, only: list[str] | None = None):
    """Execute experiments (all, or the ids in *only*) and return
    ``{id: Table|Series}`` in DESIGN.md order."""
    results = {}
    for exp_id, fn in ALL_EXPERIMENTS.items():
        if only and exp_id not in only:
            continue
        results[exp_id] = fn(quick=quick)
    return results


def render_report(
    results: dict[str, Table | Series],
    *,
    markdown: bool = False,
    chart: bool = False,
) -> str:
    """Render experiment results as one text (or markdown) document.

    With ``chart=True``, Series artefacts (the "figures") render as ASCII
    bar charts instead of tables.
    """
    chunks = []
    for exp_id, result in results.items():
        if chart and isinstance(result, Series):
            chunks.append(result.render_chart())
            continue
        table = result.as_table() if isinstance(result, Series) else result
        chunks.append(table.to_markdown() if markdown else table.render())
    return "\n\n".join(chunks)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sweeps")
    parser.add_argument("--markdown", action="store_true")
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figure-style series as ASCII bar charts",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also save the results as JSON (see repro.analysis.store)",
    )
    parser.add_argument(
        "--compare",
        metavar="FILE",
        help="diff this run against a previously saved JSON run",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all of {list(ALL_EXPERIMENTS)})",
    )
    args = parser.parse_args(argv)
    unknown = [e for e in args.experiments if e not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids {unknown}")
    t0 = time.perf_counter()
    results = run_all(quick=args.quick, only=args.experiments or None)
    print(render_report(results, markdown=args.markdown, chart=args.chart))
    print(
        f"\n[{len(results)} experiment(s) in {time.perf_counter() - t0:.1f}s]",
        file=sys.stderr,
    )
    if args.json:
        from repro.analysis.store import save_results

        save_results(results, args.json)
        print(f"[saved to {args.json}]", file=sys.stderr)
    if args.compare:
        from repro.analysis.store import compare_results, load_results

        diffs = compare_results(load_results(args.compare), results)
        if diffs:
            print("\n".join(f"DIFF {d}" for d in diffs))
            return 1
        print(f"[matches {args.compare}]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
