"""One function per evaluation artefact.

Every ``run_*`` returns a :class:`~repro.metrics.tables.Table` or
:class:`~repro.metrics.tables.Series` whose rows are what EXPERIMENTS.md
reports. ``quick=True`` shrinks sweeps for CI-speed smoke runs; the
benchmarks and the report use the full parameters. All workloads are
seeded, so every number in EXPERIMENTS.md is exactly regenerable.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    GCNMachine,
    HypercubeMachine,
    MeshMachine,
    bellman_ford,
    dijkstra,
)
from repro.core import (
    all_pairs_minimum_cost,
    minimum_cost_path,
    minimum_cost_path_word,
    transitive_closure,
    validate_tree,
)
from repro.core.graph import normalize_weights
from repro.errors import GraphError
from repro.metrics import Series, Table, linear_fit, loglog_slope
from repro.ppa import BusCostModel, PPAConfig, PPAMachine
from repro.ppc.lang import compile_ppc, programs
from repro.workloads import (
    WeightSpec,
    complete_graph,
    gnp_digraph,
    layered_graph,
    suite_cases,
)

__all__ = [
    "run_t1",
    "run_f2",
    "run_f3",
    "run_f4",
    "run_t5",
    "run_t5p",
    "run_t6",
    "run_a7",
    "run_a8",
    "run_t9",
    "run_a11",
    "run_a12",
    "run_a13",
    "run_t13",
    "run_t14",
    "run_t15",
    "run_t16",
    "run_t16_campaign",
    "ALL_EXPERIMENTS",
]

_H = 16
_INF16 = (1 << _H) - 1


def _machine(n: int, h: int = _H, **kw) -> PPAMachine:
    return PPAMachine(PPAConfig(n=n, word_bits=h, **kw))


# ---------------------------------------------------------------------------
# T1 — correctness ("validated through simulation")
# ---------------------------------------------------------------------------


def run_t1(quick: bool = False) -> Table:
    """Every machine variant against both sequential oracles."""
    table = Table(
        "T1 - correctness of the PPA MCP against sequential oracles",
        ["workload", "n", "d", "iterations", "sow=BF", "sow=Dijkstra",
         "word-variant=BF", "PTN tree valid"],
    )
    cases = suite_cases("correctness", inf_value=_INF16)
    if quick:
        cases = cases[::6]
    for case in cases:
        m = _machine(case.n)
        res = minimum_cost_path(m, case.W, case.destination)
        bf = bellman_ford(case.W, case.destination, maxint=m.maxint)
        dj = dijkstra(case.W, case.destination, maxint=m.maxint)
        word = minimum_cost_path_word(_machine(case.n), case.W, case.destination)
        try:
            validate_tree(res, case.W)
            tree_ok = True
        except GraphError:
            tree_ok = False
        table.add_row(
            case.name,
            case.n,
            case.destination,
            res.iterations,
            bool(np.array_equal(res.sow, bf.sow)),
            bool(np.array_equal(res.sow, dj.sow)),
            bool(np.array_equal(word.sow, bf.sow)),
            tree_ok,
        )
    table.note(
        "paper: 'has been validated through simulation' - reproduced as "
        "exact agreement with Bellman-Ford and Dijkstra on every workload"
    )
    return table


# ---------------------------------------------------------------------------
# F2 — communication cost vs n (reconfigurable bus vs plain mesh)
# ---------------------------------------------------------------------------


def run_f2(quick: bool = False) -> Series:
    """Per-iteration bus cycles as the array grows, at fixed p and h.

    Complete graphs pin the iteration count at 2 for every n, isolating the
    per-iteration communication cost. The PPA (and GCN) stay flat; the
    plain mesh grows linearly.
    """
    series = Series(
        "F2 - per-iteration communication cost vs array size "
        "(fixed p = 2, h = 16)",
        "n",
    )
    ns = (4, 8, 16) if quick else (4, 8, 16, 32, 48, 64)
    for n in ns:
        W = complete_graph(n, seed=2, weights=WeightSpec(1, 9), inf_value=_INF16)
        d = n // 2
        ppa = minimum_cost_path(_machine(n), W, d)
        mesh = MeshMachine(n).mcp(W, d)
        gcn = GCNMachine(n).mcp(W, d)
        assert ppa.iterations == mesh.iterations == gcn.iterations
        it = ppa.iterations
        series.add_point(
            n,
            ppa_bus_per_iter=ppa.counters["bus_cycles"] / it,
            mesh_bus_per_iter=mesh.counters["bus_cycles"] / it,
            gcn_bus_per_iter=gcn.counters["bus_cycles"] / it,
        )
    ppa_order = loglog_slope(series.x, series.ys["ppa_bus_per_iter"])
    mesh_order = loglog_slope(series.x, series.ys["mesh_bus_per_iter"])
    series.note(
        f"empirical order in n: PPA {ppa_order:.2f} (flat), "
        f"mesh {mesh_order:.2f} (linear) - the reconfigurable bus removes "
        "the Theta(n) distance penalty, as the paper's Section 1 argues"
    )
    return series


# ---------------------------------------------------------------------------
# F3 — communication cost vs word width h
# ---------------------------------------------------------------------------


def run_f3(quick: bool = False) -> Series:
    """Per-iteration PPA bus cycles as the word width grows.

    Section 3 derives O(h) per min()/selected_min(); the abstract claims
    "log h". The measurement decides: the series is linear in h (slope ~ 2
    transactions per bit, one per routine), not logarithmic.
    """
    series = Series(
        "F3 - PPA per-iteration bus cycles vs word width h (fixed graph)",
        "h",
    )
    hs = (8, 16, 32) if quick else (8, 10, 12, 16, 20, 24, 32)
    n = 16
    for h in hs:
        inf = (1 << h) - 1
        W = gnp_digraph(n, 0.35, seed=1, weights=WeightSpec(1, 7), inf_value=inf)
        res = minimum_cost_path(_machine(n, h), W, 3)
        series.add_point(
            h,
            bus_per_iter=res.counters["bus_cycles"] / res.iterations,
            iterations=res.iterations,
        )
    fit = linear_fit(series.x, series.ys["bus_per_iter"])
    series.note(
        f"linear fit: bus/iter = {fit.slope:.2f}*h + {fit.intercept:.2f} "
        f"(R^2 = {fit.r2:.4f}) - O(h) per iteration, confirming Section 3's "
        "derivation; the abstract's 'O(p log h)' is the paper-internal "
        "inconsistency discussed in DESIGN.md"
    )
    return series


# ---------------------------------------------------------------------------
# F4 — iteration count vs maximum MCP length p
# ---------------------------------------------------------------------------


def run_f4(quick: bool = False) -> Series:
    """The do-while executes exactly p iterations (p = max MCP length)."""
    series = Series(
        "F4 - iterations and total bus cycles vs max MCP length p "
        "(layered DAGs, h = 16)",
        "p",
    )
    ps = (1, 2, 4, 6) if quick else (1, 2, 3, 4, 6, 8, 10, 12, 16)
    for p in ps:
        W, d = layered_graph(p, 2, seed=0, weights=WeightSpec(1, 5), inf_value=_INF16)
        n = W.shape[0]
        res = minimum_cost_path(_machine(n), W, d)
        bf = bellman_ford(W, d, maxint=_INF16)
        series.add_point(
            p,
            iterations=res.iterations,
            bellman_rounds=bf.iterations,
            total_bus=res.counters["bus_cycles"],
        )
    fit = linear_fit(series.x, series.ys["total_bus"])
    series.note(
        "iterations == p on every layered DAG (one productive round per "
        "path edge beyond the first, plus the convergence check)"
    )
    series.note(
        f"total bus cycles vs p: slope {fit.slope:.1f} cycles/iteration, "
        f"R^2 = {fit.r2:.4f} - the O(p * h) total of Section 3"
    )
    return series


# ---------------------------------------------------------------------------
# T5 — cross-architecture comparison (the paper's closing claim)
# ---------------------------------------------------------------------------


def run_t5(quick: bool = False) -> Table:
    """PPA vs GCN vs CM-hypercube vs plain mesh on identical inputs."""
    table = Table(
        "T5 - MCP cost across architectures (gnp graphs, h = 16)",
        ["n", "architecture", "iterations", "comm transactions",
         "bit-cycles", "sow = oracle"],
    )
    ns = (8, 16) if quick else (8, 16, 32)
    for n in ns:
        W = gnp_digraph(n, 0.3, seed=4, weights=WeightSpec(1, 9), inf_value=_INF16)
        d = 1
        bf = bellman_ford(W, d, maxint=_INF16)
        runs = [
            ("ppa", minimum_cost_path(_machine(n), W, d)),
            ("gcn", GCNMachine(n).mcp(W, d)),
            ("hypercube", HypercubeMachine(n).mcp(W, d)),
            ("mesh", MeshMachine(n).mcp(W, d)),
        ]
        for arch, res in runs:
            table.add_row(
                n,
                arch,
                res.iterations,
                res.counters["bus_cycles"],
                res.counters["bit_cycles"],
                bool(np.array_equal(res.sow, bf.sow)),
            )
    table.note(
        "paper's claim: the PPA 'delivers the same performance, in terms of "
        "computational complexity, as the hypercube ... and as the GCN'. "
        "Measured: PPA and GCN are O(p*h) bit-cycles; the hypercube is "
        "O(p*h*log n) bit-cycles but O(p*log n) word transactions; the "
        "plain mesh is O(p*n) - an order worse than all three."
    )
    return table


# ---------------------------------------------------------------------------
# T5P — per-phase breakdown of T5 (telemetry companion)
# ---------------------------------------------------------------------------


def run_t5p(quick: bool = False) -> Table:
    """Where each architecture spends its cycles, phase by phase.

    The telemetry companion to T5: the same cross-architecture MCP runs,
    but attributed per algorithm phase via :mod:`repro.telemetry` spans.
    The iteration phases (broadcast / min / selected_min / writeback /
    convergence) are disjoint siblings under the ``mcp`` root, so their
    inclusive counters *partition* each run's totals exactly — asserted in
    ``tests/telemetry/test_attribution.py``. This is the per-phase evidence
    behind the T5 note: the PPA's cost is concentrated in the two O(h)
    bit-serial selection phases, the mesh's in the O(n) broadcast phase.
    """
    from repro.telemetry import RunProfile

    table = Table(
        "T5P - per-phase MCP cost across architectures (gnp graphs, h = 16)",
        ["n", "architecture", "phase", "spans", "bus cycles", "bit cycles",
         "alu ops"],
    )
    phases = (
        "mcp.init", "mcp.broadcast", "mcp.min", "mcp.selected_min",
        "mcp.writeback", "mcp.convergence",
    )
    ns = (8,) if quick else (8, 16)
    for n in ns:
        W = gnp_digraph(n, 0.3, seed=4, weights=WeightSpec(1, 9), inf_value=_INF16)
        d = 1
        runs = [
            ("ppa", _machine(n), lambda m: minimum_cost_path(m, W, d)),
            ("gcn", GCNMachine(n), lambda m: m.mcp(W, d)),
            ("hypercube", HypercubeMachine(n), lambda m: m.mcp(W, d)),
            ("mesh", MeshMachine(n), lambda m: m.mcp(W, d)),
        ]
        for arch, machine, runner in runs:
            with machine.telemetry.capture():
                runner(machine)
            profile = RunProfile.from_tracer(
                machine.telemetry, arch=arch, n=n, d=d
            )
            for phase in phases:
                spans = profile.find(phase)
                if not spans:  # baselines fold selected_min into min
                    continue
                totals: dict[str, int] = {}
                for s in spans:
                    for k, v in s.counters.items():
                        totals[k] = totals.get(k, 0) + v
                table.add_row(
                    n, arch, phase, len(spans),
                    totals.get("bus_cycles", 0),
                    totals.get("bit_cycles", 0),
                    totals.get("alu_ops", 0),
                )
    table.note(
        "phases are disjoint siblings under the 'mcp' span, so each "
        "architecture's phase rows sum exactly to its T5 totals (minus "
        "the mcp.init row, which T5's per-run counters also include)"
    )
    table.note(
        "the PPA concentrates cost in the O(h) bit-serial min/selected_min "
        "phases; the plain mesh in the O(n) broadcast/writeback sweeps"
    )
    return table


# ---------------------------------------------------------------------------
# T6 — PPC language parity
# ---------------------------------------------------------------------------


def run_t6(quick: bool = False) -> Table:
    """The paper's PPC listing vs the native implementation."""
    table = Table(
        "T6 - PPC interpreter parity (gnp n=8 graph, h = 16)",
        ["implementation", "sow = native", "ptn = native",
         "broadcasts", "wired-OR reductions", "bus transactions"],
    )
    n = 8
    W = gnp_digraph(n, 0.3, seed=0, weights=WeightSpec(1, 9), inf_value=_INF16)
    d = 2
    native_machine = _machine(n)
    native = minimum_cost_path(native_machine, W, d)
    table.add_row(
        "native (Python/DSL)",
        True,
        True,
        native.counters["broadcasts"],
        native.counters["reductions"],
        native.counters["bus_cycles"],
    )
    for label, src in (
        ("PPC, paper's min() source", programs.MCP_CODE),
        ("PPC, builtin min()", programs.MCP_WITH_LIBRARY_MIN),
    ):
        m = _machine(n)
        Wm = normalize_weights(W, m)
        run = compile_ppc(src).run(
            m, "minimum_cost_path", globals={"W": Wm, "d": d}
        )
        sow = run.globals["SOW"][d]
        ptn = run.globals["PTN"][d]
        table.add_row(
            label,
            bool(np.array_equal(sow, native.sow)),
            bool(np.array_equal(ptn, native.ptn)),
            run.counters["broadcasts"],
            run.counters["reductions"],
            run.counters["bus_cycles"],
        )
    from repro.core.asm_mcp import minimum_cost_path_asm

    asm = minimum_cost_path_asm(_machine(n), W, d)
    table.add_row(
        "hand-written assembly stream",
        bool(np.array_equal(asm.sow, native.sow)),
        bool(np.array_equal(asm.ptn, native.ptn)),
        asm.counters["broadcasts"],
        asm.counters["reductions"],
        asm.counters["bus_cycles"],
    )
    from repro.ppc.lang.codegen import compile_to_asm

    mc = _machine(n)
    compiled = compile_to_asm(
        programs.MCP_CODE, n, _H, entry="minimum_cost_path"
    ).run(mc, globals={"W": normalize_weights(W, mc), "d": d})
    table.add_row(
        "PPC source, compiled to ISA",
        bool(np.array_equal(compiled.globals["SOW"][d], native.sow)),
        bool(np.array_equal(compiled.globals["PTN"][d], native.ptn)),
        compiled.counters["broadcasts"],
        compiled.counters["reductions"],
        compiled.counters["bus_cycles"],
    )
    table.note(
        "the interpreted listing issues extra broadcasts because statement "
        "9 of the paper wraps or() in broadcast() - redundant on a wired "
        "bus where every cluster member already sees the OR level"
    )
    return table


# ---------------------------------------------------------------------------
# A7 — ablation: bit-serial vs word-parallel min
# ---------------------------------------------------------------------------


def run_a7(quick: bool = False) -> Table:
    """What the bit-serial bus design trades against a word-wide bus."""
    table = Table(
        "A7 - bit-serial min() vs hypothetical word-parallel bus minimum",
        ["n", "h", "bus (bit-serial)", "bus (word-parallel)", "ratio",
         "results equal"],
    )
    grid = [(8, 8), (8, 16)] if quick else [(8, 8), (8, 16), (16, 16), (16, 32), (32, 16)]
    for n, h in grid:
        inf = (1 << h) - 1
        W = gnp_digraph(n, 0.3, seed=7, weights=WeightSpec(1, 7), inf_value=inf)
        d = 0
        serial = minimum_cost_path(_machine(n, h), W, d)
        word = minimum_cost_path_word(_machine(n, h), W, d)
        table.add_row(
            n,
            h,
            serial.counters["bus_cycles"],
            word.counters["bus_cycles"],
            serial.counters["bus_cycles"] / word.counters["bus_cycles"],
            bool(
                np.array_equal(serial.sow, word.sow)
                and np.array_equal(serial.ptn, word.ptn)
            ),
        )
    table.note(
        "identical outputs; the 1-bit bus pays ~2h extra transactions per "
        "iteration, the price of the hardware-implementable switch the "
        "paper advocates"
    )
    return table


# ---------------------------------------------------------------------------
# A8 — ablation: unit-cost vs distance-proportional buses
# ---------------------------------------------------------------------------


def run_a8(quick: bool = False) -> Series:
    """Why 'hardware implementable constant-time buses' is load-bearing."""
    series = Series(
        "A8 - PPA per-iteration cycles under unit vs distance-proportional "
        "bus cost (complete graphs)",
        "n",
    )
    ns = (4, 8, 16) if quick else (4, 8, 16, 32, 64)
    for n in ns:
        W = complete_graph(n, seed=2, weights=WeightSpec(1, 9), inf_value=_INF16)
        d = 0
        unit = minimum_cost_path(_machine(n), W, d)
        lin = minimum_cost_path(
            PPAMachine(
                PPAConfig(n=n, word_bits=_H, bus_cost_model=BusCostModel.LINEAR)
            ),
            W,
            d,
        )
        mesh = MeshMachine(n).mcp(W, d)
        series.add_point(
            n,
            unit_bus=unit.counters["bus_cycles"] / unit.iterations,
            linear_bus=lin.counters["bus_cycles"] / lin.iterations,
            mesh_shifts=mesh.counters["bus_cycles"] / mesh.iterations,
        )
    series.note(
        "with distance-proportional buses the PPA degenerates to the plain "
        "mesh's Theta(n) growth - the constant-time reconfigurable bus of "
        "reference [2] is what buys the paper's complexity"
    )
    return series


# ---------------------------------------------------------------------------
# T9 — extensions: transitive closure + APSP
# ---------------------------------------------------------------------------


def _closure_oracle(adj: np.ndarray) -> np.ndarray:
    """Boolean transitive closure by repeated squaring (numpy oracle)."""
    n = adj.shape[0]
    reach = adj.astype(bool) | np.eye(n, dtype=bool)
    for _ in range(max(1, int(np.ceil(np.log2(max(n, 2)))))):
        reach = reach | (reach @ reach)
    return reach


def run_t9(quick: bool = False) -> Table:
    """Closure and all-pairs built on the MCP machinery."""
    table = Table(
        "T9 - extensions: transitive closure and all-pairs MCP",
        ["workload", "n", "closure = oracle", "APSP = oracle",
         "total bus cycles"],
    )
    cases = suite_cases("unit", inf_value=_INF16)
    if quick:
        cases = cases[:1]
    for case in cases:
        n = case.n
        adj = case.W == 1  # unit suite: weight-1 edges
        m = _machine(n)
        clo = transitive_closure(m, adj)
        closure_ok = bool(np.array_equal(clo.closure, _closure_oracle(adj)))

        m2 = _machine(n)
        apsp = all_pairs_minimum_cost(m2, case.W)
        apsp_ok = True
        for d in range(n):
            bf = bellman_ford(case.W, d, maxint=m2.maxint)
            if not np.array_equal(apsp.dist[:, d], bf.sow):
                apsp_ok = False
                break
        table.add_row(
            case.name,
            n,
            closure_ok,
            apsp_ok,
            apsp.counters["bus_cycles"],
        )
    table.note(
        "closure computed as n unit-weight MCP sweeps (reference [6] "
        "computes it natively on a richer bus model); APSP as n destination "
        "sweeps, the way reference [4] drives the Connection Machine"
    )
    return table


# ---------------------------------------------------------------------------
# A11 — extension: reconfigurable buses on image kernels
# ---------------------------------------------------------------------------


def run_a11(quick: bool = False) -> Table:
    """Bus-accelerated vs shift-only connected components.

    The paper's Section 2 motivates the switch-boxes with grid algorithms
    (it names the EDT); this experiment quantifies the speedup on the
    classic labelling kernel: collapsing straight foreground runs over the
    buses turns Θ(diameter) propagation into per-bend rounds.
    """
    from repro.apps import connected_components, frame_image, random_blobs

    table = Table(
        "A11 - connected components: bus-accelerated vs shift-only "
        "(4-connectivity)",
        ["image", "n", "components", "iters (buses)", "iters (shifts)",
         "partitions equal"],
    )
    ns = (12,) if quick else (12, 16, 24)
    cases = []
    for n in ns:
        cases.append((f"blobs(n={n})", random_blobs(n, blobs=4, radius=2, seed=1)))
        cases.append((f"frame(n={n})", frame_image(n, margin=1)))
        bar = np.zeros((n, n), dtype=bool)
        bar[n // 2, :] = True
        cases.append((f"bar(n={n})", bar))
    for name, img in cases:
        n = img.shape[0]
        fast = connected_components(_machine(n), img, use_buses=True)
        slow = connected_components(_machine(n), img, use_buses=False)
        same = bool(
            np.array_equal(fast.labels >= 0, slow.labels >= 0)
            and fast.count == slow.count
        )
        table.add_row(
            name, n, fast.count, fast.iterations, slow.iterations, same
        )
    table.note(
        "straight runs collapse in one bus transaction, so iteration count "
        "follows shape complexity (bends), not pixel diameter - the "
        "switch-box payoff the paper's Section 2 argues for"
    )
    return table


# ---------------------------------------------------------------------------
# A12 — extension: sorting, shifts vs buses
# ---------------------------------------------------------------------------


def run_a12(quick: bool = False) -> Table:
    """Odd-even transposition (shifts) vs extract-min over the bus.

    The algorithm-scale version of ablation A7: the bit-serial bus wins at
    selecting one minimum (O(h) vs O(n)) but a full sort replays it n times
    (O(n*h)) while the shift network sorts in O(n) word rounds — buses are
    a selection/broadcast tool, not a sorting network.
    """
    from repro.apps.sorting import extract_min_sort_rows, odd_even_sort_rows

    table = Table(
        "A12 - row sorting: odd-even transposition (shifts) vs "
        "extract-min (bus)",
        ["n", "h", "odd-even bus cycles", "extract-min bus cycles",
         "ratio", "results equal"],
    )
    grid = [(8, 16)] if quick else [(8, 8), (8, 16), (16, 16), (32, 16)]
    for n, h in grid:
        rng = np.random.default_rng(n * 131 + h)
        vals = rng.integers(0, (1 << h) - 1, size=(n, n))
        a = odd_even_sort_rows(_machine(n, h), vals)
        b = extract_min_sort_rows(_machine(n, h), vals)
        table.add_row(
            n,
            h,
            a.counters["bus_cycles"],
            b.counters["bus_cycles"],
            b.counters["bus_cycles"] / a.counters["bus_cycles"],
            bool(np.array_equal(a.values, b.values)),
        )
    table.note(
        "identical sorted output; extract-min pays ~2h bus cycles per "
        "retired key, odd-even two shifts per round - selection is the "
        "bus's sweet spot, streaming comparison the shift network's"
    )
    return table


# ---------------------------------------------------------------------------
# A13 — ablation: digit-serial min, the lane/transaction trade-off
# ---------------------------------------------------------------------------


def run_a13(quick: bool = False) -> Table:
    """How many wired-OR lanes should the switch-box have?

    The paper's min() is radix-2 (one lane). A radix-2**k switch finishes
    in ceil(h/k) transactions but needs 2**k - 1 lanes per bus; the total
    lane-cycles ceil(h/k)*(2**k - 1) is what silicon area/time actually
    buys. Measured on the full elimination (h = 16):
    """
    from repro.ppa.directions import Direction
    from repro.ppc.reductions import ppa_min, ppa_min_digit_serial

    table = Table(
        "A13 - digit-serial min(): transactions vs lane-cycles per radix "
        "(h = 16, n = 16)",
        ["digit bits k", "lanes (2^k - 1)", "transactions", "lane-cycles",
         "equals bit-serial"],
    )
    n, h = 16, _H
    rng = np.random.default_rng(9)
    vals = rng.integers(0, (1 << h) - 1, size=(n, n))
    L = np.arange(n)[None, :] == n - 1
    reference = ppa_min(_machine(n, h), vals, Direction.WEST, L)
    ks = (1, 2, 4) if quick else (1, 2, 3, 4, 8, 16)
    for k in ks:
        m = _machine(n, h)
        out = ppa_min_digit_serial(m, vals, Direction.WEST, L, k)
        table.add_row(
            k,
            (1 << k) - 1,
            m.counters.reductions,
            m.counters.bit_cycles - 2 * h,  # exclude the 2 delivery bcasts
            bool(np.array_equal(out, reference)),
        )
    table.note(
        "lane-cycles = ceil(h/k) * (2^k - 1): minimised at k = 1 - the "
        "paper's bit-serial switch-box is the lane-optimal design point; "
        "wider digits only pay off when transaction *latency* dominates "
        "lane cost"
    )
    return table


# ---------------------------------------------------------------------------
# T13 — power separation: PPA vs the full Reconfigurable Mesh (ref [1])
# ---------------------------------------------------------------------------


def run_t13(quick: bool = False) -> Table:
    """Section 4's "less powerful model" claim, measured.

    Counting n bits needs a bus that turns corners (the RMESH staircase:
    one cycle); the PPA's straight-through switch-box falls back on a
    Theta(n) shift fold. Both give the exact count; the costs diverge
    linearly.
    """
    from repro.rmesh import RMeshMachine, count_ones, ppa_count_ones_row

    table = Table(
        "T13 - counting n bits: RMESH staircase vs PPA shift fold",
        ["n", "ones", "rmesh bus cycles", "ppa bus cycles", "both exact"],
    )
    ns = (8, 16) if quick else (8, 16, 32, 64)
    rng = np.random.default_rng(21)
    for n in ns:
        bits = rng.random(n - 1) < 0.5
        want = int(bits.sum())
        rm = RMeshMachine(n)
        rm_count = count_ones(rm, bits)
        ppa = _machine(n)
        ppa_count, ppa_cycles = ppa_count_ones_row(ppa, bits)
        table.add_row(
            n,
            want,
            rm.counters.bus_cycles,
            ppa_cycles,
            bool(rm_count == want and ppa_count == want),
        )
    table.note(
        "the RMESH result is constant (1 bus cycle at every n) because its "
        "switch can fuse W to S and N to E - the corner-turning "
        "configuration the PPA gives up for hardware implementability "
        "(paper, Section 4)"
    )
    return table


# ---------------------------------------------------------------------------
# T14 — fault-injection campaign: detection coverage
# ---------------------------------------------------------------------------


def run_t14(quick: bool = False) -> Table:
    """Sweep single stuck-at switch faults over the array and classify the
    outcome of an MCP run on the faulty machine.

    Categories per injected fault: *benign* (bit-identical result),
    *caught* (wrong result, but rejected by the PTN tree validator or the
    convergence guard), *silent* (wrong result that validates — the
    dangerous case). Independently, the 6-transaction bus self-test must
    localise every injected fault.
    """
    from repro.core.path import validate_tree
    from repro.ppa.faults import FaultKind, FaultPlan
    from repro.ppa.selftest import diagnose_switches

    table = Table(
        "T14 - single stuck-at fault campaign on the MCP (gnp n=8, h=16)",
        ["fault kind", "injections", "benign", "caught", "silent",
         "self-test localises"],
    )
    n = 8
    W = gnp_digraph(n, 0.4, seed=3, weights=WeightSpec(1, 9), inf_value=_INF16)
    d = 2
    healthy = minimum_cost_path(_machine(n), W, d)

    positions = [
        (r, c) for r in range(n) for c in range(n)
    ]
    if quick:
        positions = positions[:: n]
    for kind in (FaultKind.STUCK_OPEN, FaultKind.STUCK_SHORT):
        benign = caught = silent = localised = 0
        for (r, c) in positions:
            for axis in (0, 1):
                m = _machine(n)
                m.inject_faults(FaultPlan().add(r, c, kind, axis))
                report = diagnose_switches(m)
                if any(
                    f.row == r and f.col == c and f.kind == kind
                    and f.axis == axis
                    for f in report.faults
                ):
                    localised += 1
                m.clear_faults()
                m.inject_faults(FaultPlan().add(r, c, kind, axis))
                try:
                    res = minimum_cost_path(m, W, d)
                except GraphError:
                    caught += 1  # convergence guard fired
                    continue
                if np.array_equal(res.sow, healthy.sow) and np.array_equal(
                    res.ptn, healthy.ptn
                ):
                    benign += 1
                    continue
                try:
                    validate_tree(res, W)
                except GraphError:
                    caught += 1
                    continue
                # Tree validates: still wrong iff costs differ from truth.
                silent += 1
        total = 2 * len(positions)
        table.add_row(
            kind.value, total, benign, caught, silent,
            f"{localised}/{total}",
        )
    table.note(
        "benign faults sit on switches the workload never exercises as "
        "cluster boundaries; 'silent' results validate as a consistent "
        "shortest-path tree of the wrong graph - the case only the bus "
        "self-test (full coverage) can screen before running"
    )
    return table


# ---------------------------------------------------------------------------
# T15 — extension: Boruvka MST on the bus primitives
# ---------------------------------------------------------------------------


def run_t15(quick: bool = False) -> Table:
    """Minimum spanning tree in O(h log n) bus transactions.

    Each Boruvka round is four bit-serial scans (per-vertex min edge, its
    arg, per-component min via label-scatter, its winner) — selection is
    the bus's native operation, so MST rides the paper's machinery with a
    log n round count.
    """
    import networkx as nx

    from repro.core.mst import boruvka_mst

    table = Table(
        "T15 - Boruvka MST over the bus primitives (distinct weights)",
        ["n", "edges", "rounds", "bus transactions", "weight = networkx"],
    )
    ns = (8,) if quick else (8, 16, 32)
    for n in ns:
        rng = np.random.default_rng(n)
        W = np.full((n, n), _INF16, dtype=np.int64)
        np.fill_diagonal(W, 0)
        weights = rng.permutation(n * n) + 1
        k = 0
        for i in range(n):
            for j in range(i + 1, n):
                if j == i + 1 or rng.random() < 0.4:
                    W[i, j] = W[j, i] = int(weights[k])
                    k += 1
        res = boruvka_mst(_machine(n), W)
        G = nx.Graph()
        G.add_nodes_from(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                if W[i, j] < _INF16:
                    G.add_edge(i, j, weight=int(W[i, j]))
        want = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_edges(G, data=True)
        )
        table.add_row(
            n,
            len(res.edges),
            res.rounds,
            res.counters["bus_cycles"],
            bool(res.total_weight == want),
        )
    table.note(
        "rounds stay logarithmic; each costs ~4h wired-OR scans - the "
        "selection-friendly shape of the reconfigurable bus extends well "
        "beyond the paper's shortest-path DP"
    )
    return table


# ---------------------------------------------------------------------------
# T16 — resilient execution: detect / diagnose / recover campaigns
# ---------------------------------------------------------------------------


def run_t16_campaign(quick: bool = False) -> dict:
    """Deterministic detect/recover campaign behind the T16 table.

    Returns the raw per-scenario aggregates (status tallies, correctness
    against the fault-free serial reference, recovery actions, counter
    totals and the four overhead buckets) shared by :func:`run_t16`, the
    ``BENCH_t16_resilience.json`` artefact and the CI fault-campaign
    smoke. Every stochastic fault activation draws from a per-run seeded
    RNG (:class:`~repro.ppa.faults.FaultPlan`), so all numbers —
    including the transient/intermittent sweeps' — regenerate
    bit-for-bit.
    """
    from repro.ppa.faults import FaultKind, FaultPlan
    from repro.resilience import ResilienceStatus, ResilientExecutor

    m, n_phys, d = 6, 8, 2
    seeds = 3 if quick else 12
    W = gnp_digraph(m, 0.4, seed=3, weights=WeightSpec(1, 9),
                    inf_value=_INF16)
    ref = minimum_cost_path(_machine(m), W, d)

    def midrun_hook():
        fired = {"done": False}

        def hook(k, base):
            if k == 3 and not fired["done"]:
                fired["done"] = True
                base.inject_faults(
                    FaultPlan().add(2, 4, FaultKind.STUCK_SHORT, axis=0)
                )

        return hook

    scenarios = [
        ("fault-free", None, False, 1),
        ("permanent short mid-run", None, True, 1),
        (
            "permanent open at start",
            lambda s: FaultPlan().add(3, 5, FaultKind.STUCK_OPEN, axis=1),
            False,
            1,
        ),
        (
            "intermittent open p=0.3",
            lambda s: FaultPlan(seed=s).add_intermittent(
                2, 4, FaultKind.STUCK_OPEN, probability=0.3, axis=0
            ),
            False,
            seeds,
        ),
        (
            "intermittent short p=0.15",
            lambda s: FaultPlan(seed=s).add_intermittent(
                6, 3, FaultKind.STUCK_SHORT, probability=0.15, axis=0
            ),
            False,
            seeds,
        ),
        (
            "transient bit-flips p=0.05",
            lambda s: FaultPlan(seed=s)
            .add_transient(2, 4, bit=3, probability=0.05, axis=0)
            .add_transient(5, 1, bit=0, probability=0.05, axis=1),
            False,
            seeds,
        ),
        (
            "mixed intermittent+transient",
            lambda s: FaultPlan(seed=s)
            .add_intermittent(
                1, 5, FaultKind.STUCK_OPEN, probability=0.2, axis=1
            )
            .add_transient(4, 2, bit=5, probability=0.1, axis=0),
            False,
            seeds,
        ),
    ]

    campaign: dict = {
        "workload": {
            "m": m,
            "n_phys": n_phys,
            "d": d,
            "density": 0.4,
            "graph_seed": 3,
            "word_bits": _H,
            "runs_per_sweep": seeds,
        },
        "scenarios": [],
    }
    for label, mkplan, midrun, runs in scenarios:
        agg: dict = {
            "label": label,
            "runs": runs,
            "status": {s.value: 0 for s in ResilienceStatus},
            "correct": 0,
            "silent_wrong": 0,
            "rollbacks": 0,
            "remaps": 0,
            "checkpoints": 0,
            "detections": 0,
            "benign_glitches": 0,
            "replayed_rounds": 0,
            "counters": {},
            "overhead": {},
        }
        for s in range(runs):
            machine = _machine(n_phys)
            if mkplan is not None:
                machine.inject_faults(mkplan(s))
            res = ResilientExecutor(machine).run(
                W,
                d,
                round_hook=midrun_hook() if midrun else None,
                raise_on_failure=False,
            )
            agg["status"][res.status.value] += 1
            ok = bool(
                np.array_equal(res.sow[0], ref.sow)
                and np.array_equal(res.ptn[0], ref.ptn)
            )
            if res.trustworthy:
                # FAILED is an honest detection; only a trustworthy-but-
                # wrong result counts as silent corruption.
                if ok:
                    agg["correct"] += 1
                else:
                    agg["silent_wrong"] += 1
            agg["rollbacks"] += res.rollbacks
            agg["remaps"] += res.remaps
            agg["checkpoints"] += res.checkpoints
            agg["detections"] += res.detections
            agg["benign_glitches"] += res.benign_glitches
            agg["replayed_rounds"] += res.replayed_rounds
            for k, v in res.counters.items():
                agg["counters"][k] = agg["counters"].get(k, 0) + int(v)
            for k, v in res.overhead_total().items():
                agg["overhead"][k] = agg["overhead"].get(k, 0) + int(v)
        campaign["scenarios"].append(agg)
    return campaign


def run_t16(quick: bool = False, campaign: dict | None = None) -> Table:
    """Resilient runtime campaign: status outcomes, recovery actions and
    the counter overhead of running guarded (docs/robustness.md).

    Pass a precomputed ``campaign`` (from :func:`run_t16_campaign`) to
    render without re-running the sweeps.
    """
    table = Table(
        "T16 - resilient MCP campaign (gnp m=6 on an 8x8 array, h=16)",
        ["scenario", "runs", "clean", "recovered", "degraded", "failed",
         "silent-wrong", "rollbacks", "remaps", "overhead"],
    )
    if campaign is None:
        campaign = run_t16_campaign(quick)
    for sc in campaign["scenarios"]:
        bus = sc["counters"].get("bus_cycles", 0)
        obus = sc["overhead"].get("bus_cycles", 0)
        pct = 100.0 * obus / bus if bus else 0.0
        table.add_row(
            sc["label"],
            sc["runs"],
            sc["status"]["clean"],
            sc["status"]["recovered"],
            sc["status"]["degraded"],
            sc["status"]["failed"],
            sc["silent_wrong"],
            sc["rollbacks"],
            sc["remaps"],
            f"{pct:.0f}% bus",
        )
    table.note(
        "every trustworthy (non-failed) result is bit-identical to the "
        "fault-free serial run - 'silent-wrong' must be 0; overhead = "
        "share of bus cycles spent on detection + diagnosis + checkpoint "
        "+ recovery; stochastic sweeps draw from seeded fault-activation "
        "RNGs, so the whole campaign is deterministic"
    )
    return table


ALL_EXPERIMENTS = {
    "T1": run_t1,
    "F2": run_f2,
    "F3": run_f3,
    "F4": run_f4,
    "T5": run_t5,
    "T5P": run_t5p,
    "T6": run_t6,
    "A7": run_a7,
    "A8": run_a8,
    "T9": run_t9,
    "A11": run_a11,
    "A12": run_a12,
    "A13": run_a13,
    "T13": run_t13,
    "T14": run_t14,
    "T15": run_t15,
    "T16": run_t16,
}
