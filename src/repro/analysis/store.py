"""Persist and diff experiment results.

EXPERIMENTS.md promises every number is exactly regenerable; this module
makes that checkable by machine: serialise a run to JSON, reload it later
(or on another host) and diff it against a fresh run. The CLI surface is
``python -m repro report --json FILE`` and ``--compare FILE``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError
from repro.metrics.tables import Series, Table
from repro.telemetry.profile import RunProfile, aggregate_phases

__all__ = ["to_jsonable", "from_jsonable", "save_results", "load_results",
           "compare_results"]

_FORMAT = "repro-experiments-v1"


def to_jsonable(result: Table | Series | RunProfile) -> dict:
    """Plain-dict form of one experiment artefact."""
    if isinstance(result, RunProfile):
        return {"kind": "profile", "profile": result.to_jsonable()}
    if isinstance(result, Series):
        return {
            "kind": "series",
            "title": result.title,
            "x_label": result.x_label,
            "x": list(result.x),
            "ys": {k: list(v) for k, v in result.ys.items()},
            "notes": list(result.notes),
        }
    if isinstance(result, Table):
        return {
            "kind": "table",
            "title": result.title,
            "headers": list(result.headers),
            "rows": [list(r) for r in result.rows],
            "notes": list(result.notes),
        }
    raise ReproError(f"cannot serialise {type(result).__name__}")


def from_jsonable(data: dict) -> Table | Series | RunProfile:
    """Inverse of :func:`to_jsonable`."""
    kind = data.get("kind")
    if kind == "profile":
        return RunProfile.from_jsonable(data["profile"])
    if kind == "series":
        s = Series(data["title"], data["x_label"])
        s.x = list(data["x"])
        s.ys = {k: list(v) for k, v in data["ys"].items()}
        s.notes = list(data.get("notes", []))
        return s
    if kind == "table":
        t = Table(data["title"], list(data["headers"]))
        t.rows = [list(r) for r in data["rows"]]
        t.notes = list(data.get("notes", []))
        return t
    raise ReproError(f"unknown artefact kind {kind!r}")


def save_results(results: dict, path: str | Path) -> None:
    """Write ``{experiment_id: Table|Series|RunProfile}`` to *path* as JSON."""
    payload = {
        "format": _FORMAT,
        "experiments": {k: to_jsonable(v) for k, v in results.items()},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_results(path: str | Path) -> dict:
    """Load a file written by :func:`save_results`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"results file not found: {path}")
    payload = json.loads(path.read_text())
    if payload.get("format") != _FORMAT:
        raise ReproError(
            f"{path} is not a {_FORMAT} file "
            f"(format = {payload.get('format')!r})"
        )
    return {k: from_jsonable(v) for k, v in payload["experiments"].items()}


def _cells(result: Table | Series | RunProfile) -> list[tuple]:
    if isinstance(result, RunProfile):
        # One row per phase: aggregated exclusive counters (deterministic
        # simulator output), never wall-times (host-dependent).
        rows = []
        agg = aggregate_phases(result)
        for name in sorted(agg):
            bucket = agg[name]
            rows.append(
                (name, *(bucket[k] for k in sorted(bucket)))
            )
        rows.append(
            ("(total)", *(result.counters[k] for k in sorted(result.counters)))
        )
        return rows
    if isinstance(result, Series):
        rows = []
        for i, x in enumerate(result.x):
            rows.append((x, *(result.ys[k][i] for k in sorted(result.ys))))
        return rows
    return [tuple(r) for r in result.rows]


def compare_results(old: dict, new: dict, *, rel_tol: float = 1e-9) -> list[str]:
    """Differences between two result sets, as human-readable lines.

    Returns an empty list when the runs agree cell-for-cell (floats within
    *rel_tol*). Experiments present in only one set are reported too.
    """
    diffs: list[str] = []
    for exp_id in sorted(set(old) | set(new)):
        if exp_id not in old:
            diffs.append(f"{exp_id}: only in the new run")
            continue
        if exp_id not in new:
            diffs.append(f"{exp_id}: only in the old run")
            continue
        a, b = _cells(old[exp_id]), _cells(new[exp_id])
        if len(a) != len(b):
            diffs.append(f"{exp_id}: row count {len(a)} -> {len(b)}")
            continue
        for i, (ra, rb) in enumerate(zip(a, b)):
            if len(ra) != len(rb):
                diffs.append(f"{exp_id} row {i}: arity changed")
                continue
            for j, (va, vb) in enumerate(zip(ra, rb)):
                if isinstance(va, float) or isinstance(vb, float):
                    va_f, vb_f = float(va), float(vb)
                    scale = max(abs(va_f), abs(vb_f), 1.0)
                    if abs(va_f - vb_f) > rel_tol * scale:
                        diffs.append(
                            f"{exp_id} row {i} col {j}: {va} -> {vb}"
                        )
                elif va != vb:
                    diffs.append(f"{exp_id} row {i} col {j}: {va} -> {vb}")
    return diffs
