"""Experiment harness regenerating every evaluation artefact (see DESIGN.md)."""

from repro.analysis.experiments import (
    run_t1,
    run_f2,
    run_f3,
    run_f4,
    run_t5,
    run_t5p,
    run_t6,
    run_a7,
    run_a8,
    run_t9,
    run_a11,
    run_a12,
    run_a13,
    run_t13,
    run_t14,
    run_t15,
    ALL_EXPERIMENTS,
)
from repro.analysis.report import run_all, render_report
from repro.analysis.store import (
    save_results,
    load_results,
    compare_results,
)

__all__ = [
    "run_t1",
    "run_f2",
    "run_f3",
    "run_f4",
    "run_t5",
    "run_t5p",
    "run_t6",
    "run_a7",
    "run_a8",
    "run_t9",
    "run_a11",
    "run_a12",
    "run_a13",
    "run_t13",
    "run_t14",
    "run_t15",
    "ALL_EXPERIMENTS",
    "run_all",
    "render_report",
    "save_results",
    "load_results",
    "compare_results",
]
