"""Minimum spanning tree by Borůvka rounds on the PPA (extension).

Borůvka is the natural MST algorithm for this machine: each round every
*component* selects its minimum outgoing edge — a selection problem, which
is exactly what the paper's ``min``/``selected_min`` bus primitives are
good at. One round costs O(h) bus transactions:

1. fan the per-vertex component labels across rows and down columns (two
   broadcasts from the diagonal), mask ``W`` to edges that *cross*
   components;
2. per-vertex minimum crossing edge: the listing's row ``min`` +
   ``selected_min`` pair;
3. per-component minimum: *scatter* each vertex's candidate into the
   column indexed by its component label (``COL == comp``), then run the
   same bit-serial minimum down the columns — the bus does a grouped
   reduction over arbitrarily scattered rows without any routing network;
4. ``selected_min`` over the scattered ``ROW`` plane names each
   component's winning vertex; a final column broadcast retrieves the
   winner's chosen neighbour.

The host merges the (at most n) selected edges with a union-find and
writes the new label vector back — the standard controller-side
bookkeeping of SIMD Borůvka; O(log n) rounds total, so the whole MST costs
O(h·log n) bus transactions.

Edge weights must be **distinct** (validated): with ties Borůvka can cycle,
and the paper's tie-breaking machinery (smallest column index) resolves
ties per row, not globally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import normalize_weights
from repro.errors import GraphError
from repro.ppa.directions import Direction
from repro.ppa.machine import PPAMachine
from repro.ppc.reductions import ppa_min, ppa_selected_min

__all__ = ["MSTResult", "boruvka_mst"]


@dataclass(frozen=True)
class MSTResult:
    """Minimum spanning forest of an undirected weighted graph.

    Attributes
    ----------
    edges
        ``(u, v, weight)`` triples with ``u < v``, sorted.
    total_weight
        Sum of the selected edge weights.
    components
        Final component label per vertex (one label per forest tree).
    rounds
        Borůvka rounds executed.
    counters
        Machine counter deltas of the run.
    """

    edges: tuple[tuple[int, int, int], ...]
    total_weight: int
    components: np.ndarray
    rounds: int
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def is_spanning_tree(self) -> bool:
        """True when the graph was connected (single component)."""
        return len(np.unique(self.components)) == 1


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[rb] = ra
        return True


def _validate(machine: PPAMachine, W) -> np.ndarray:
    # No path-cost accumulation here (single edge weights only), so the
    # MCP's saturation-headroom requirement does not apply.
    Wm = normalize_weights(W, machine, check_headroom=False)
    if not np.array_equal(Wm, Wm.T):
        raise GraphError("MST needs an undirected (symmetric) weight matrix")
    finite = Wm[np.triu_indices_from(Wm, k=1)]
    finite = finite[finite < machine.maxint]
    if finite.size != np.unique(finite).size:
        raise GraphError(
            "edge weights must be distinct (ties can cycle Boruvka; "
            "perturb the weights)"
        )
    return Wm


def boruvka_mst(machine: PPAMachine, W) -> MSTResult:
    """Minimum spanning forest of the undirected graph *W*.

    Returns the MST when the graph is connected, otherwise the minimum
    spanning forest (one tree per connected component).
    """
    Wm = _validate(machine, W)
    n = machine.n
    before = machine.counters.snapshot()
    inf = machine.maxint
    WEST, SOUTH, EAST = Direction.WEST, Direction.SOUTH, Direction.EAST

    uf = _UnionFind(n)
    comp = np.arange(n, dtype=np.int64)
    edges: list[tuple[int, int, int]] = []
    rounds = 0
    tele = machine.telemetry

    with tele.span("mst", n=n):
        ROW = machine.row_index
        COL = machine.col_index
        diag = ROW == COL
        col_last = COL == n - 1
        row_first = ROW == 0
        machine.count_alu(3)

        while True:
            rounds += 1
            with tele.span("mst.round", k=rounds):
                with tele.span("mst.labels"):
                    # Labels onto the grid: comp of my row / my column.
                    comp_diag = np.where(diag, comp[ROW], 0)
                    machine.count_alu()
                    compr = machine.broadcast(comp_diag, EAST, diag)
                    compc = machine.broadcast(comp_diag, SOUTH, diag)

                    crossing = compr != compc
                    staged = np.where(crossing, Wm, inf)
                    machine.count_alu(2)

                with tele.span("mst.vertex_min"):
                    # Per-vertex minimum crossing edge (value + neighbour
                    # index).
                    cand_val = ppa_min(machine, staged, WEST, col_last)
                    achieves = (staged == cand_val) & (staged < inf)
                    machine.count_alu(2)
                    cand_j = ppa_selected_min(
                        machine, COL, WEST, col_last, achieves
                    )

                with tele.span("mst.component_min"):
                    # Scatter candidates into the column of their component
                    # label and reduce per column: the grouped minimum over
                    # scattered vertices.
                    in_comp_col = COL == compr
                    scatter_val = np.where(in_comp_col, cand_val, inf)
                    machine.count_alu(2)
                    comp_min = ppa_min(machine, scatter_val, SOUTH, row_first)
                    winner_sel = (
                        (scatter_val == comp_min) & (scatter_val < inf)
                    )
                    machine.count_alu(2)
                    winner_row = ppa_selected_min(
                        machine, ROW, SOUTH, row_first, winner_sel
                    )

                    # Retrieve each winner's chosen neighbour down its
                    # column.
                    at_winner = ROW == winner_row
                    machine.count_alu()
                    winner_j = machine.broadcast(
                        cand_j, SOUTH, at_winner & winner_sel
                    )

                # Controller: read one row (host DMA), merge, rewrite
                # labels.
                new_edge = False
                for c in np.unique(comp):
                    val = int(comp_min[0, c])
                    if val >= inf:
                        continue
                    u = int(winner_row[0, c])
                    v = int(winner_j[0, c])
                    if uf.union(u, v):
                        a, b = (u, v) if u < v else (v, u)
                        edges.append((a, b, int(Wm[a, b])))
                        new_edge = True
            if not new_edge:
                break
            comp = np.array([uf.find(i) for i in range(n)], dtype=np.int64)
            if rounds > int(np.ceil(np.log2(max(n, 2)))) + 2:
                raise GraphError(
                    "Boruvka failed to converge (corrupt input?)"
                )

    edges.sort()
    return MSTResult(
        edges=tuple(edges),
        total_weight=sum(w for _, _, w in edges),
        components=comp.copy(),
        rounds=rounds,
        counters=machine.counters.diff(before),
    )
