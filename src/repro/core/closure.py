"""Transitive closure and reachability on the PPA (extension).

The paper's reference [6] (Wang & Chen) computes transitive closure on a
reconfigurable bus system; on the row/column-only PPA the natural route is
through the MCP machinery itself: give every edge weight 1 and a vertex
``j`` is in the closure of ``i`` iff the minimum cost path cost is finite.
A single destination sweep therefore yields one closure *column*; sweeping
all destinations yields the full boolean closure matrix.

With unit weights the MCP costs double as BFS levels, so
:func:`reachable_set` also reports hop distances for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.core.mcp import minimum_cost_path
from repro.core.result import MCPResult
from repro.ppa.machine import PPAMachine

__all__ = ["transitive_closure", "reachable_set", "ClosureResult"]


@dataclass(frozen=True)
class ClosureResult:
    """Boolean closure matrix plus hop distances."""

    closure: np.ndarray  # closure[i, j] == True iff j reachable from i
    hops: np.ndarray  # BFS distance i -> j (maxint-coded via `unreached`)
    unreached: int

    def reaches(self, i: int, j: int) -> bool:
        return bool(self.closure[i, j])


def _unit_weights(machine: PPAMachine, adjacency) -> np.ndarray:
    adj = np.asarray(adjacency)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise GraphError(f"adjacency must be square, got {adj.shape}")
    machine.require_square_fit(adj.shape[0])
    W = np.where(adj.astype(bool), 1, machine.maxint).astype(np.int64)
    np.fill_diagonal(W, 0)
    return W


def reachable_set(machine: PPAMachine, adjacency, d: int) -> MCPResult:
    """Vertices that reach *d*, as an MCP run over unit weights.

    ``result.reachable`` is the reachability mask; ``result.sow`` holds hop
    counts (BFS levels toward ``d``).
    """
    W = _unit_weights(machine, adjacency)
    return minimum_cost_path(machine, W, d)


def transitive_closure(machine: PPAMachine, adjacency) -> ClosureResult:
    """Full transitive closure by sweeping the destination vertex.

    ``closure[i, j]`` is True iff a directed path ``i -> j`` exists
    (vertices reach themselves by the empty path). ``hops[i, j]`` is the
    minimum edge count of such a path, ``unreached`` where none exists.
    """
    n = machine.n
    closure = np.zeros((n, n), dtype=bool)
    hops = np.full((n, n), machine.maxint, dtype=np.int64)
    W = _unit_weights(machine, adjacency)
    for d in range(n):
        res = minimum_cost_path(machine, W, d)
        closure[:, d] = res.reachable
        hops[:, d] = res.sow
    return ClosureResult(closure=closure, hops=hops, unreached=machine.maxint)
