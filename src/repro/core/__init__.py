"""The paper's contribution: Minimum Cost Path on the PPA.

Public surface:

* :func:`~repro.core.mcp.minimum_cost_path` — the faithful algorithm of the
  paper's Section 3 (bit-serial ``min``/``selected_min``), O(p*h) bus cycles.
* :func:`~repro.core.variants.minimum_cost_path_word` — A7 ablation with a
  word-parallel bus minimum, O(p) transactions.
* :func:`~repro.core.variants.minimum_cost_path_multi` — serial loop over
  multiple destinations (per-destination result dict).
* :func:`~repro.core.batched.batched_minimum_cost_path` — the lane axis:
  ``B`` destinations (and optionally ``B`` weight matrices) advanced by
  one SIMD kernel with per-lane convergence masking; results and per-lane
  counters bit-identical to serial runs.
* :mod:`~repro.core.path` — PTN successor-chain reconstruction/validation.
* :mod:`~repro.core.graph` — weight-matrix normalisation and validation.
* :mod:`~repro.core.apsp`, :mod:`~repro.core.closure` — extensions (all
  pairs, transitive closure) in the spirit of the paper's references [4][6].
"""

from repro.core.graph import normalize_weights, INF
from repro.core.result import MCPResult
from repro.core.mcp import minimum_cost_path
from repro.core.path import extract_path, validate_tree
from repro.core.variants import (
    minimum_cost_path_from,
    minimum_cost_path_multi,
    minimum_cost_path_word,
)
from repro.core.asm_mcp import mcp_assembly, minimum_cost_path_asm
from repro.core.apsp import APSPResult, all_pairs_minimum_cost
from repro.core.batched import (
    BatchedMCPResult,
    batched_mcp_on_new_machine,
    batched_minimum_cost_path,
)
from repro.core.closure import transitive_closure, reachable_set
from repro.core.mst import boruvka_mst, MSTResult

__all__ = [
    "INF",
    "normalize_weights",
    "MCPResult",
    "minimum_cost_path",
    "minimum_cost_path_word",
    "minimum_cost_path_multi",
    "minimum_cost_path_from",
    "minimum_cost_path_asm",
    "mcp_assembly",
    "extract_path",
    "validate_tree",
    "BatchedMCPResult",
    "batched_minimum_cost_path",
    "batched_mcp_on_new_machine",
    "APSPResult",
    "all_pairs_minimum_cost",
    "transitive_closure",
    "reachable_set",
    "boruvka_mst",
    "MSTResult",
]
