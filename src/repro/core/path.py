"""Reconstruction and validation of the PTN successor structure.

The algorithm's second output is the matrix ``PTN`` ("Pointer To Next"):
``ptn[i]`` names the vertex following ``i`` on a minimum cost path to the
destination. The pointers of all reachable vertices form an in-tree rooted
at ``d``; these helpers walk and validate it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.core.result import MCPResult

__all__ = ["extract_path", "validate_tree", "path_cost"]


def extract_path(result: MCPResult, source: int) -> list[int]:
    """Follow PTN pointers from *source* to the destination.

    Returns the full vertex sequence ``[source, ..., destination]``
    (``[d]`` when *source* is the destination itself).

    Raises
    ------
    GraphError
        If *source* is out of range, the destination is unreachable from it,
        or the pointer chain is corrupt (cycles / overlong), which would
        indicate a machine bug rather than a bad input.
    """
    n = result.n
    if not (0 <= source < n):
        raise GraphError(f"source {source} outside [0, {n})")
    if not result.reachable[source]:
        raise GraphError(
            f"vertex {result.destination} is unreachable from {source}"
        )
    path = [int(source)]
    v = int(source)
    for _ in range(n):
        if v == result.destination:
            return path
        v = int(result.ptn[v])
        path.append(v)
    raise GraphError(
        f"PTN chain from {source} did not reach {result.destination} "
        f"within {n} steps (corrupt pointer structure)"
    )


def path_cost(W: np.ndarray, path: list[int], maxint: int) -> int:
    """Sum of edge weights along *path* under weight matrix *W*.

    Raises :class:`GraphError` if the path uses a non-existent edge.
    """
    total = 0
    for a, b in zip(path, path[1:]):
        w = int(W[a, b])
        if w >= maxint:
            raise GraphError(f"path uses missing edge {a} -> {b}")
        total += w
    return total


def validate_tree(result: MCPResult, W: np.ndarray) -> None:
    """Check every invariant tying SOW, PTN and W together.

    * ``sow[d] == 0`` and ``ptn[d] == d``;
    * for every reachable ``i != d``: the edge ``i -> ptn[i]`` exists,
      ``ptn[i]`` is reachable, and the Bellman optimality condition
      ``sow[i] == w[i, ptn[i]] + sow[ptn[i]]`` holds;
    * following pointers from every reachable vertex terminates at ``d``.

    Raises :class:`GraphError` on the first violated invariant.
    """
    d = result.destination
    sow, ptn, maxint = result.sow, result.ptn, result.maxint
    if int(sow[d]) != 0:
        raise GraphError(f"sow[d] = {int(sow[d])}, expected 0")
    if int(ptn[d]) != d:
        raise GraphError(f"ptn[d] = {int(ptn[d])}, expected {d}")
    for i in np.flatnonzero(result.reachable):
        i = int(i)
        if i == d:
            continue
        j = int(ptn[i])
        w = int(W[i, j])
        if w >= maxint:
            raise GraphError(f"ptn[{i}] = {j} but edge {i} -> {j} is missing")
        if not result.reachable[j]:
            raise GraphError(f"ptn[{i}] = {j} points at an unreachable vertex")
        if int(sow[i]) != w + int(sow[j]):
            raise GraphError(
                f"Bellman condition violated at {i}: sow={int(sow[i])} "
                f"!= w[{i},{j}]={w} + sow[{j}]={int(sow[j])}"
            )
        extract_path(result, i)  # raises on cycles
