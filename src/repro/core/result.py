"""Result container for a minimum-cost-path run."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError

__all__ = ["MCPResult"]


@dataclass(frozen=True)
class MCPResult:
    """Outcome of one single-destination MCP computation.

    Only the d-th row of the machine's ``SOW``/``PTN`` planes is meaningful
    (paper, Section 3); this container carries exactly that row plus run
    metadata.

    Attributes
    ----------
    destination
        The destination vertex ``d``.
    sow
        ``sow[i]`` = cost of a minimum cost path from ``i`` to ``d``
        (``maxint`` when ``d`` is unreachable from ``i``). ``sow[d] == 0``.
    ptn
        ``ptn[i]`` = vertex following ``i`` on a minimum cost path to ``d``
        (``d`` itself both for direct predecessors and, vacuously, for
        unreachable vertices — check :attr:`reachable`).
    iterations
        Number of executed do-while iterations (equals the maximum MCP edge
        length ``p`` over reachable vertices, with a minimum of 1).
    maxint
        The machine's infinity sentinel used in :attr:`sow`.
    counters
        Machine counter deltas accumulated by this run.
    """

    destination: int
    sow: np.ndarray
    ptn: np.ndarray
    iterations: int
    maxint: int
    counters: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "sow", np.asarray(self.sow, dtype=np.int64))
        object.__setattr__(self, "ptn", np.asarray(self.ptn, dtype=np.int64))
        if self.sow.shape != self.ptn.shape or self.sow.ndim != 1:
            raise GraphError("sow and ptn must be 1-D arrays of equal length")

    @property
    def n(self) -> int:
        """Number of vertices."""
        return int(self.sow.shape[0])

    @property
    def reachable(self) -> np.ndarray:
        """Boolean mask of vertices with a finite-cost path to ``d``."""
        return self.sow < self.maxint

    def cost(self, source: int) -> int | float:
        """Path cost from *source* (``float('inf')`` when unreachable)."""
        c = int(self.sow[source])
        return float("inf") if c >= self.maxint else c

    def path(self, source: int) -> list[int]:
        """Vertex sequence of a minimum cost path ``source -> ... -> d``.

        Delegates to :func:`repro.core.path.extract_path`.
        """
        from repro.core.path import extract_path

        return extract_path(self, source)

    def costs_dict(self) -> dict[int, int]:
        """``{vertex: cost}`` for every reachable vertex."""
        return {
            int(i): int(self.sow[i])
            for i in np.flatnonzero(self.reachable)
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nreach = int(self.reachable.sum())
        return (
            f"MCPResult(d={self.destination}, n={self.n}, "
            f"reachable={nreach}, iterations={self.iterations})"
        )
