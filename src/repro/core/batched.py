"""Batched (multi-lane) Minimum Cost Path — one kernel, many destinations.

The paper's host controller drives one single-destination MCP at a time;
its APSP corollary therefore costs ``n`` serial machine passes. But every
bus primitive of the simulator is a pure numpy kernel over the grid, so
``B`` *independent* problem instances stack into a ``(B, n, n)`` lane axis
and the whole batch advances with **one** SIMD pass per bus transaction
(see :mod:`repro.ppa.segments`). This module runs the Section 3 listing
statement-for-statement across all lanes at once.

Convergence masking
-------------------
Lanes converge at different iteration counts. The batched loop keeps
running until *every* lane's row-``d`` SOW stops changing, but

* each lane's ``iterations`` counts only the rounds executed while that
  lane was still live (its serial iteration count, final no-change round
  included),
* stores are gated by the live-lane mask, so a converged lane's ``SOW`` /
  ``PTN`` planes are frozen verbatim, and
* :meth:`~repro.ppa.machine.PPAMachine.set_active_lanes` masks the
  per-lane cost ledger, so a converged lane stops accruing counters.

Because one MCP iteration issues a *fixed*, data-independent instruction
sequence (the do-while body has no data-dependent branches below the
controller), lane ``b``'s per-lane counter delta is **bit-identical** to
what a serial :func:`repro.core.mcp.minimum_cost_path` run of lane ``b``
would record — the property test in ``tests/core/test_batched.py`` pins
this lane-for-lane.

Scalar machine counters tell the other story: they price the *batched*
instruction stream (one broadcast is one broadcast, however many lanes it
serves), which is exactly the amortisation batching buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.core.graph import normalize_weights
from repro.core.result import MCPResult
from repro.engine.select import resolve_engine
from repro.ppa.counters import LaneCounters
from repro.ppa.directions import Direction
from repro.ppa.machine import PPAMachine
from repro.ppa.topology import PPAConfig
from repro.ppc.reductions import ppa_min, ppa_selected_min

__all__ = [
    "BatchedMCPResult",
    "batched_minimum_cost_path",
    "batched_mcp_on_new_machine",
]


@dataclass(frozen=True)
class BatchedMCPResult:
    """Outcome of one batched multi-destination MCP computation.

    Attributes
    ----------
    destinations
        ``(B,)`` destination vertex per lane.
    sow, ptn
        ``(B, n)`` stacks: lane ``b``'s row holds exactly what the serial
        :class:`~repro.core.result.MCPResult` for ``destinations[b]``
        would hold.
    iterations
        ``(B,)`` per-lane do-while iteration counts (serial-identical).
    maxint
        The machine's infinity sentinel.
    counters
        Scalar machine counter delta of the *batched* instruction stream —
        one charge per SIMD instruction regardless of lane count. This is
        the cost a real B-lane PPA deployment would pay.
    lane_counters
        Per-lane serial-equivalent counter deltas: ``{name: (B,) int64}``.
        ``lane_counters[k][b]`` equals the serial run's ``counters[k]``
        for lane ``b``; summing over lanes reproduces the serial APSP
        totals exactly.
    """

    destinations: np.ndarray
    sow: np.ndarray
    ptn: np.ndarray
    iterations: np.ndarray
    maxint: int
    counters: dict[str, int] = field(default_factory=dict)
    lane_counters: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "destinations", np.asarray(self.destinations, dtype=np.int64)
        )
        object.__setattr__(self, "sow", np.asarray(self.sow, dtype=np.int64))
        object.__setattr__(self, "ptn", np.asarray(self.ptn, dtype=np.int64))
        object.__setattr__(
            self, "iterations", np.asarray(self.iterations, dtype=np.int64)
        )
        if self.sow.ndim != 2 or self.sow.shape != self.ptn.shape:
            raise GraphError("sow and ptn must be (B, n) arrays of equal shape")

    @property
    def batch(self) -> int:
        """Number of lanes ``B``."""
        return int(self.sow.shape[0])

    @property
    def n(self) -> int:
        """Number of vertices."""
        return int(self.sow.shape[1])

    def lane(self, b: int) -> MCPResult:
        """Lane *b* as a plain serial :class:`MCPResult` (counters included)."""
        return MCPResult(
            destination=int(self.destinations[b]),
            sow=self.sow[b].copy(),
            ptn=self.ptn[b].copy(),
            iterations=int(self.iterations[b]),
            maxint=self.maxint,
            counters=LaneCounters.lane_of(self.lane_counters, b)
            if self.lane_counters
            else {},
        )

    def lane_counter_totals(self) -> dict[str, int]:
        """Per-lane deltas summed over lanes (= serial sweep totals)."""
        return LaneCounters.total_of(self.lane_counters)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchedMCPResult(batch={self.batch}, n={self.n}, "
            f"iterations={self.iterations.min()}..{self.iterations.max()})"
        )


def _normalize_lane_weights(
    W, machine: PPAMachine, batch: int, zero_diagonal: str
) -> np.ndarray:
    """Validate a shared ``(n, n)`` or per-lane ``(B, n, n)`` weight input."""
    arr = np.asarray(W)
    if arr.ndim == 2:
        # Shared across lanes: normalise once, keep 2-D so the bus kernels
        # take the shared-plane fast path and numpy broadcasting does the
        # lane replication for free.
        return normalize_weights(W, machine, zero_diagonal=zero_diagonal)
    if arr.ndim == 3:
        if arr.shape[0] != batch:
            raise GraphError(
                f"weight stack has {arr.shape[0]} lanes but "
                f"{batch} destinations were given"
            )
        return np.stack(
            [
                normalize_weights(arr[b], machine, zero_diagonal=zero_diagonal)
                for b in range(batch)
            ]
        )
    raise GraphError(
        f"weights must be (n, n) or (B, n, n), got shape {arr.shape}"
    )


def batched_minimum_cost_path(
    machine: PPAMachine,
    W,
    destinations,
    *,
    zero_diagonal: str = "require",
    max_iterations: int | None = None,
    min_routine=ppa_min,
    selected_min_routine=ppa_selected_min,
    engine: str = "auto",
    warm_sow=None,
) -> BatchedMCPResult:
    """Run ``B`` independent MCP instances as lanes of one batched pass.

    Parameters
    ----------
    machine
        Either a batched machine (``PPAMachine(..., batch=B)`` with ``B ==
        len(destinations)``) or an unbatched one — in the latter case a
        batched :meth:`~repro.ppa.machine.PPAMachine.lanes` view is created
        that shares the caller's counters, telemetry and fault plan.
    W
        One shared ``(n, n)`` weight matrix applied to every lane (the APSP
        case) or a per-lane ``(B, n, n)`` stack (sweep workloads).
    destinations
        ``(B,)`` destination vertex per lane. Duplicates are allowed.
    zero_diagonal, max_iterations, min_routine, selected_min_routine
        As in :func:`repro.core.mcp.minimum_cost_path`.
    engine
        ``"auto"`` (default) upgrades to the fastest eligible analytic
        tier — ``compiled`` on large grids, ``fused`` below — on eligible
        machines (see :mod:`repro.engine`); ``"cycle"``/``"fused"``/
        ``"compiled"`` force one. Results and both counter books are
        bit-identical every way.
    warm_sow
        Optional ``(B, n)`` plane of certified per-lane upper bounds
        (``maxint`` rows for unseeded lanes); the analytic tiers
        warm-start from it and reconstruct cold-trajectory PTN/iteration
        counts (see :func:`repro.core.mcp.minimum_cost_path`). The cycle
        engine ignores it.

    Returns
    -------
    BatchedMCPResult
        Per-lane results bit-identical to serial runs, plus both cost
        books (batched-stream scalars and per-lane serial-equivalents).
    """
    choice = resolve_engine(
        machine,
        engine,
        min_routine=min_routine,
        selected_min_routine=selected_min_routine,
    )
    if choice.compiled:
        from repro.engine.compiled import compiled_batched_minimum_cost_path

        return compiled_batched_minimum_cost_path(
            machine,
            W,
            destinations,
            zero_diagonal=zero_diagonal,
            max_iterations=max_iterations,
            warm_sow=warm_sow,
        )
    if choice.fused:
        from repro.engine.fused import fused_batched_minimum_cost_path

        return fused_batched_minimum_cost_path(
            machine,
            W,
            destinations,
            zero_diagonal=zero_diagonal,
            max_iterations=max_iterations,
            warm_sow=warm_sow,
        )
    dest = np.asarray(destinations, dtype=np.int64)
    if dest.ndim != 1 or dest.size == 0:
        raise GraphError(
            f"destinations must be a non-empty 1-D vector, got shape "
            f"{dest.shape}"
        )
    batch = int(dest.size)
    if machine.batch is None:
        machine = machine.lanes(batch)
    elif machine.batch != batch:
        raise GraphError(
            f"machine has batch={machine.batch} but {batch} destinations "
            "were given"
        )
    n = machine.n
    if ((dest < 0) | (dest >= n)).any():
        bad = int(dest[(dest < 0) | (dest >= n)][0])
        raise GraphError(f"destination {bad} outside [0, {n})")
    Wm = _normalize_lane_weights(W, machine, batch, zero_diagonal)
    if max_iterations is None:
        max_iterations = n + 1

    before = machine.counters.snapshot()
    lanes_before = machine.lane_counters.snapshot()
    SOUTH, WEST = Direction.SOUTH, Direction.WEST
    tele = machine.telemetry
    lane_idx = np.arange(batch)

    machine.set_active_lanes(None)
    try:
        with tele.span("mcp.batched", arch="ppa", n=n, lanes=batch):
            with tele.span("mcp.init"):
                ROW = machine.row_index
                COL = machine.col_index
                # Per-lane planes where the destination enters; shared 2-D
                # planes (diag, col_last) keep the one-plan fast path.
                row_d = ROW[None, :, :] == dest[:, None, None]
                diag = ROW == COL
                col_last = COL == (n - 1)
                machine.count_alu(3)

                SOW = machine.new_parallel(0)
                PTN = machine.new_parallel(0)
                MIN_SOW = machine.new_parallel(0)

                # Statements 4-7 with the directed-graph init transposition
                # (see core/mcp.py): fan column d across the rows, then the
                # diagonal down the columns, per lane.
                col_d = COL[None, :, :] == dest[:, None, None]
                machine.count_alu()
                w_to_d = machine.broadcast(Wm, Direction.EAST, col_d)
                transposed = machine.broadcast(w_to_d, SOUTH, diag)
                with machine.where(row_d):
                    machine.store(SOW, transposed)
                    machine.store(PTN, dest[:, None, None])

            iterations = np.zeros(batch, dtype=np.int64)
            active = np.ones(batch, dtype=bool)
            rounds = 0
            while active.any():
                rounds += 1
                machine.set_active_lanes(active)
                iterations += active
                # Freeze converged lanes: their stores are masked off so
                # SOW/PTN stay verbatim (the datapath still computes every
                # lane — that is the SIMD contract).
                gate = active[:, None, None]

                with tele.span("mcp.iteration", k=rounds):
                    # Statements 9-13.
                    with machine.where(gate & ~row_d):
                        with tele.span("mcp.broadcast"):
                            candidates = machine.sat_add(
                                machine.broadcast(SOW, SOUTH, row_d), Wm
                            )
                            machine.store(SOW, candidates)
                        with tele.span("mcp.min"):
                            machine.store(
                                MIN_SOW,
                                min_routine(machine, SOW, WEST, col_last),
                            )
                        with tele.span("mcp.selected_min"):
                            achieves = MIN_SOW == SOW
                            machine.count_alu()
                            machine.store(
                                PTN,
                                selected_min_routine(
                                    machine, COL, WEST, col_last, achieves
                                ),
                            )

                    # Statements 14-19. Only each lane's destination row
                    # can change under the gated row-d store mask, so
                    # OLD_SOW materialises just those B rows instead of
                    # copying (and comparing) the whole (B, n, n) stack —
                    # counter-neutral, as in the serial loop.
                    with tele.span("mcp.writeback"):
                        with machine.where(gate & row_d):
                            OLD_ROWS = SOW[lane_idx, dest, :].copy()
                            machine.count_alu()
                            machine.store(
                                SOW, machine.broadcast(MIN_SOW, SOUTH, diag)
                            )
                            changed = np.zeros(SOW.shape, dtype=bool)
                            changed[lane_idx, dest, :] = (
                                SOW[lane_idx, dest, :] != OLD_ROWS
                            )
                            machine.count_alu()
                            with machine.where(changed):
                                machine.store(
                                    PTN, machine.broadcast(PTN, SOUTH, diag)
                                )

                    # Statement 20, per lane: the controller condition flag
                    # exists once per lane.
                    with tele.span("mcp.convergence"):
                        still = machine.lane_global_or(changed & row_d)

                active = active & still
                if active.any() and rounds >= max_iterations:
                    raise GraphError(
                        f"batched MCP did not converge within "
                        f"{max_iterations} iterations; the input violates "
                        "the algorithm's preconditions"
                    )
    finally:
        machine.set_active_lanes(None)

    return BatchedMCPResult(
        destinations=dest.copy(),
        sow=SOW[lane_idx, dest, :].copy(),
        ptn=PTN[lane_idx, dest, :].copy(),
        iterations=iterations,
        maxint=machine.maxint,
        counters=machine.counters.diff(before),
        lane_counters=machine.lane_counters.diff(lanes_before),
    )


def batched_mcp_on_new_machine(
    W, destinations, *, word_bits: int = 16, **kwargs
) -> BatchedMCPResult:
    """Convenience wrapper: size a fresh batched machine to *W* and run."""
    arr = np.asarray(W)
    n = arr.shape[-1]
    dest = np.asarray(destinations)
    if dest.ndim != 1 or dest.size == 0:
        raise GraphError(
            f"destinations must be a non-empty 1-D vector, got shape "
            f"{dest.shape}"
        )
    machine = PPAMachine(
        PPAConfig(n=n, word_bits=word_bits), batch=int(dest.size)
    )
    return batched_minimum_cost_path(machine, W, destinations, **kwargs)
