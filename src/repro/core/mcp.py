"""Minimum Cost Path on the PPA — the paper's Section 3 algorithm.

Statement-by-statement port of the ``minimum_cost_path()`` listing. Line
references below cite the listing's numbering::

    1: minimum_cost_path()
    4:   where (ROW == d) {
    5:     SOW = W;
    6:     PTN = d;
    8:   do
    9:     where (ROW != d) {
   10:       SOW = broadcast(SOW, SOUTH, ROW == d) + W;
   11:       MIN_SOW = min(SOW, WEST, COL == (n - 1));
   12:       PTN = selected_min(COL, WEST, COL == (n - 1), MIN_SOW == SOW);
   14:     where (ROW == d) {
   15:       OLD_SOW = SOW;
   16:       SOW = broadcast(MIN_SOW, SOUTH, ROW == COL);
   17:       where (SOW != OLD_SOW)
   18:         PTN = broadcast(PTN, SOUTH, ROW == COL);
   20:   while (at least one SOW in row d has changed);

Statement 10's ``+`` is saturating (``MAXINT`` absorbs): the broadcast
delivers ``SOW[d, j]`` — the best known cost *from j to d* — down column
``j``, and node ``(i, j)`` forms the candidate "go first to ``j``" cost.
Statement 11 minimises the candidates along each row (all of row ``i``
forms one bus cluster, Open only at column ``n-1``); statement 12 re-runs
the bit-serial scan restricted to minimum achievers over ``COL`` to pick
the (smallest-index) best successor. Statements 14-18 return the fresh
row-minima from the diagonal back up to row ``d`` for the next round.

Note ``MIN_SOW`` is allocated zero-initialised and statement 11's store is
masked off row ``d``; node ``(d, d)`` therefore keeps ``MIN_SOW = 0``
forever, which is exactly what statement 16 must deliver to ``SOW[d, d]``
(the cost from ``d`` to itself).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.core.graph import normalize_weights
from repro.core.result import MCPResult
from repro.engine.select import resolve_engine
from repro.ppa.directions import Direction
from repro.ppa.machine import PPAMachine
from repro.ppa.topology import PPAConfig
from repro.ppc.reductions import ppa_min, ppa_selected_min

__all__ = ["minimum_cost_path", "mcp_on_new_machine"]


def minimum_cost_path(
    machine: PPAMachine,
    W,
    d: int,
    *,
    zero_diagonal: str = "require",
    max_iterations: int | None = None,
    min_routine=ppa_min,
    selected_min_routine=ppa_selected_min,
    engine: str = "auto",
    warm_sow=None,
) -> MCPResult:
    """Compute minimum cost paths from every vertex to destination *d*.

    Parameters
    ----------
    machine
        An ``n x n`` :class:`PPAMachine`; ``n`` must equal the vertex count.
    W
        Weight matrix (see :func:`repro.core.graph.normalize_weights` for
        the accepted forms and preconditions).
    d
        Destination vertex index.
    zero_diagonal
        Forwarded to the weight normaliser (``"require"``/``"set"``).
    max_iterations
        Safety valve for malformed inputs; defaults to ``n`` (the loop
        provably converges within ``n - 1`` productive iterations plus the
        final no-change round).
    min_routine, selected_min_routine
        The bus reduction implementations — the paper's bit-serial routines
        by default; :mod:`repro.core.variants` injects the word-parallel
        ones for ablation A7.
    engine
        ``"auto"`` (default) runs the fastest eligible analytic tier —
        ``compiled`` (cache-blocked kernels) on large grids, ``fused``
        below that — whenever the machine is eligible (no fault plan,
        span tracer, bus trace or non-default reduction routines) and the
        faithful cycle engine otherwise; ``"cycle"``/``"fused"``/
        ``"compiled"`` force one (the analytic tiers raise
        :class:`~repro.errors.EngineError` on an ineligible machine). All
        engines return bit-identical results and counters; see
        :mod:`repro.engine`.
    warm_sow
        Optional ``(n,)`` plane of certified upper bounds on the true
        distances-to-``d`` (each finite entry the cost of an actual path
        under *W*; ``maxint`` for "no bound"). The analytic tiers seed
        relaxation from ``min(cold_seed, warm_sow)`` and reconstruct the
        cold-trajectory PTN/iteration count, so SOW, PTN and
        ``iterations`` stay bit-identical to a cold solve while counters
        charge only the rounds actually executed (see
        :func:`repro.engine._loop.run_analytic_mcp`). The cycle engine
        **ignores** it: the simulator is the ground-truth instrument and
        always replays the paper's full cold program.

    Returns
    -------
    MCPResult
        Costs (``SOW``), successors (``PTN``), iteration count and machine
        counter deltas for this run.
    """
    choice = resolve_engine(
        machine,
        engine,
        min_routine=min_routine,
        selected_min_routine=selected_min_routine,
    )
    if choice.compiled:
        from repro.engine.compiled import compiled_minimum_cost_path

        return compiled_minimum_cost_path(
            machine,
            W,
            d,
            zero_diagonal=zero_diagonal,
            max_iterations=max_iterations,
            warm_sow=warm_sow,
        )
    if choice.fused:
        from repro.engine.fused import fused_minimum_cost_path

        return fused_minimum_cost_path(
            machine,
            W,
            d,
            zero_diagonal=zero_diagonal,
            max_iterations=max_iterations,
            warm_sow=warm_sow,
        )
    Wm = normalize_weights(W, machine, zero_diagonal=zero_diagonal)
    n = machine.n
    if not (0 <= d < n):
        raise GraphError(f"destination {d} outside [0, {n})")
    if max_iterations is None:
        max_iterations = n + 1

    before = machine.counters.snapshot()
    SOUTH, WEST = Direction.SOUTH, Direction.WEST
    tele = machine.telemetry

    with tele.span("mcp", arch="ppa", n=n, d=d):
        with tele.span("mcp.init"):
            ROW = machine.row_index
            COL = machine.col_index
            row_d = ROW == d
            diag = ROW == COL
            col_last = COL == (n - 1)
            machine.count_alu(3)

            SOW = machine.new_parallel(0)
            PTN = machine.new_parallel(0)
            MIN_SOW = machine.new_parallel(0)

            # Statements 4-7: initialise the d-th row with 1-edge paths.
            #
            # The listing reads ``SOW = W`` under ``where (ROW == d)``,
            # which loads w[d, i] — the weight *from* d — into SOW[d, i];
            # the DP needs w[i, d] (the 1-edge cost from i *to* d), so the
            # printed statement is only correct for symmetric W. For
            # directed graphs the d-th *column* must be transposed onto the
            # d-th row, which the PPA does with two broadcasts: fan column
            # d out along the rows, then fan the diagonal down the columns
            # (see DESIGN.md, "Init transposition").
            col_d = COL == d
            machine.count_alu()
            # (i, j) <- w[i, d]
            w_to_d = machine.broadcast(Wm, Direction.EAST, col_d)
            # (i, j) <- w[j, d]
            transposed = machine.broadcast(w_to_d, SOUTH, diag)
            with machine.where(row_d):
                machine.store(SOW, transposed)
                machine.store(PTN, d)

        iterations = 0
        converged = False
        while not converged:
            iterations += 1

            with tele.span("mcp.iteration", k=iterations):
                # Statements 9-13.
                with machine.where(~row_d):
                    with tele.span("mcp.broadcast"):
                        candidates = machine.sat_add(
                            machine.broadcast(SOW, SOUTH, row_d), Wm
                        )
                        machine.store(SOW, candidates)
                    with tele.span("mcp.min"):
                        machine.store(
                            MIN_SOW, min_routine(machine, SOW, WEST, col_last)
                        )
                    with tele.span("mcp.selected_min"):
                        achieves = MIN_SOW == SOW
                        machine.count_alu()
                        machine.store(
                            PTN,
                            selected_min_routine(
                                machine, COL, WEST, col_last, achieves
                            ),
                        )

                # Statements 14-19. Only row d can change under the
                # where(row_d) store mask, so OLD_SOW materialises just
                # that row instead of copying (and comparing) the whole
                # plane — the charged cost (one ALU op for the copy, one
                # for the compare) is exactly what the full-plane version
                # charged, since a plane-wide SIMD op costs one instruction
                # regardless of how many PEs store.
                with tele.span("mcp.writeback"):
                    with machine.where(row_d):
                        OLD_ROW = SOW[d].copy()
                        machine.count_alu()
                        machine.store(
                            SOW, machine.broadcast(MIN_SOW, SOUTH, diag)
                        )
                        changed = np.zeros(SOW.shape, dtype=bool)
                        changed[d] = SOW[d] != OLD_ROW
                        machine.count_alu()
                        with machine.where(changed):
                            machine.store(
                                PTN, machine.broadcast(PTN, SOUTH, diag)
                            )

                # Statement 20: controller-level convergence test.
                with tele.span("mcp.convergence"):
                    converged = not machine.global_or(changed & row_d)

            if not converged and iterations >= max_iterations:
                raise GraphError(
                    f"MCP did not converge within {max_iterations} "
                    "iterations; the input violates the algorithm's "
                    "preconditions"
                )

    return MCPResult(
        destination=d,
        sow=SOW[d].copy(),
        ptn=PTN[d].copy(),
        iterations=iterations,
        maxint=machine.maxint,
        counters=machine.counters.diff(before),
    )


def mcp_on_new_machine(W, d: int, *, word_bits: int = 16, **kwargs) -> MCPResult:
    """Convenience wrapper: size a fresh machine to *W* and run MCP."""
    n = np.asarray(W).shape[0]
    machine = PPAMachine(PPAConfig(n=n, word_bits=word_bits))
    return minimum_cost_path(machine, W, d, **kwargs)
