"""All-pairs minimum cost paths (extension).

The paper solves the single-destination problem; all-pairs follows by
sweeping the destination over every vertex, exactly how a host controller
would drive the array (reference [4] does the same on the Connection
Machine). Costs accumulate linearly: ``n`` runs of O(p*h) bus cycles each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.mcp import minimum_cost_path
from repro.core.variants import minimum_cost_path_word
from repro.ppa.machine import PPAMachine

__all__ = ["APSPResult", "all_pairs_minimum_cost"]


@dataclass(frozen=True)
class APSPResult:
    """All-pairs outcome.

    Attributes
    ----------
    dist
        ``dist[i, j]`` = cost of a minimum cost path ``i -> j``
        (``maxint`` when unreachable); the diagonal is zero.
    succ
        ``succ[i, j]`` = vertex following ``i`` on a minimum cost path to
        ``j`` (meaningful only where ``dist < maxint``).
    iterations
        Per-destination do-while iteration counts.
    maxint
        Infinity sentinel used in :attr:`dist`.
    counters
        Machine counter deltas summed over all destinations.
    """

    dist: np.ndarray
    succ: np.ndarray
    iterations: np.ndarray
    maxint: int
    counters: dict[str, int] = field(default_factory=dict)

    def path(self, source: int, target: int) -> list[int]:
        """Vertex sequence of a minimum cost path ``source -> target``."""
        from repro.errors import GraphError

        n = self.dist.shape[0]
        if self.dist[source, target] >= self.maxint:
            raise GraphError(f"{target} unreachable from {source}")
        path = [int(source)]
        v = int(source)
        for _ in range(n):
            if v == target:
                return path
            v = int(self.succ[v, target])
            path.append(v)
        raise GraphError("corrupt successor matrix")


def all_pairs_minimum_cost(
    machine: PPAMachine, W, *, word_parallel: bool = False, **kwargs
) -> APSPResult:
    """Run MCP once per destination and assemble the all-pairs matrices."""
    runner = minimum_cost_path_word if word_parallel else minimum_cost_path
    n = machine.n
    dist = np.full((n, n), machine.maxint, dtype=np.int64)
    succ = np.zeros((n, n), dtype=np.int64)
    iterations = np.zeros(n, dtype=np.int64)
    totals: dict[str, int] = {}
    tele = machine.telemetry
    with tele.span("apsp", n=n, word_parallel=word_parallel):
        for d in range(n):
            with tele.span("apsp.destination", d=d):
                res = runner(machine, W, d, **kwargs)
            dist[:, d] = res.sow
            succ[:, d] = res.ptn
            iterations[d] = res.iterations
            for k, v in res.counters.items():
                totals[k] = totals.get(k, 0) + v
    return APSPResult(
        dist=dist,
        succ=succ,
        iterations=iterations,
        maxint=machine.maxint,
        counters=totals,
    )
