"""All-pairs minimum cost paths (extension).

The paper solves the single-destination problem; all-pairs follows by
sweeping the destination over every vertex, exactly how a host controller
would drive the array (reference [4] does the same on the Connection
Machine). Costs accumulate linearly: ``n`` runs of O(p*h) bus cycles each.

Since the batched lane axis landed (:mod:`repro.core.batched`), the sweep
is executed as **lanes of one batched pass** by default: all ``n``
destinations share one weight matrix, so a single SIMD kernel advances
every destination per bus transaction instead of ``n`` serial machine
passes — the headline wall-clock win of ``BENCH_p2_batching.json``. The
result is *bit-identical* to the serial sweep: per-destination ``dist`` /
``succ`` / ``iterations`` and counter deltas match exactly (convergence
masking freezes finished lanes), and :attr:`APSPResult.counters` remains
the serial-equivalent sum, so every recorded experiment table (T9, F2-F4)
is unchanged. Pass ``serial=True`` to force the literal one-destination-
at-a-time host-controller loop; ``lanes=B`` caps how many destinations
ride in one batch (memory is O(B * n^2)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batched import batched_minimum_cost_path
from repro.core.mcp import minimum_cost_path
from repro.core.variants import minimum_cost_path_word
from repro.ppa.counters import LaneCounters
from repro.ppa.machine import PPAMachine

__all__ = ["APSPResult", "all_pairs_minimum_cost"]


@dataclass(frozen=True)
class APSPResult:
    """All-pairs outcome.

    Attributes
    ----------
    dist
        ``dist[i, j]`` = cost of a minimum cost path ``i -> j``
        (``maxint`` when unreachable); the diagonal is zero.
    succ
        ``succ[i, j]`` = vertex following ``i`` on a minimum cost path to
        ``j`` (meaningful only where ``dist < maxint``).
    iterations
        Per-destination do-while iteration counts.
    maxint
        Infinity sentinel used in :attr:`dist`.
    counters
        **Serial-equivalent** machine counter deltas summed over all
        destinations — identical whether the sweep ran serially or
        batched. All recorded experiment tables are priced in these.
    machine_counters
        Counter deltas the driving machine actually accrued. Equal to
        :attr:`counters` for a serial sweep; much smaller for a batched
        one (one SIMD instruction serves many lanes) — the amortisation
        batching buys.
    lane_counters
        Per-destination counter deltas ``{name: (n,) int64}``; column
        ``d`` is what a serial run for destination ``d`` records. Empty
        for ``serial=True`` sweeps (use the scalar totals instead).
    shard_report
        How a ``workers=`` request was honoured. Empty for plain inline
        sweeps; for a sharded sweep it carries the shard layout, the
        concrete engine and per-worker cost-cache stats; for a blocked
        request it carries ``{"workers": 1, "blocked": reason}`` (the
        sweep ran inline — the CLI surfaces the reason as a note).
    """

    dist: np.ndarray
    succ: np.ndarray
    iterations: np.ndarray
    maxint: int
    counters: dict[str, int] = field(default_factory=dict)
    machine_counters: dict[str, int] = field(default_factory=dict)
    lane_counters: dict[str, np.ndarray] = field(default_factory=dict)
    shard_report: dict = field(default_factory=dict)

    def path(self, source: int, target: int) -> list[int]:
        """Vertex sequence of a minimum cost path ``source -> target``."""
        from repro.errors import GraphError

        n = self.dist.shape[0]
        if self.dist[source, target] >= self.maxint:
            raise GraphError(f"{target} unreachable from {source}")
        path = [int(source)]
        v = int(source)
        for _ in range(n):
            if v == target:
                return path
            v = int(self.succ[v, target])
            path.append(v)
        raise GraphError("corrupt successor matrix")


def all_pairs_minimum_cost(
    machine: PPAMachine,
    W,
    *,
    word_parallel: bool = False,
    serial: bool = False,
    lanes: int | None = None,
    engine: str = "auto",
    workers: int | None = None,
    shard_timeout: float | None = None,
    warm_sow: np.ndarray | None = None,
    **kwargs,
) -> APSPResult:
    """Assemble the all-pairs matrices from per-destination MCP runs.

    Parameters
    ----------
    machine
        An unbatched ``n x n`` machine. Batched execution runs through
        :meth:`~repro.ppa.machine.PPAMachine.lanes` views that share this
        machine's counters and telemetry, so profiles attribute the work
        to the caller exactly as the serial sweep did.
    word_parallel
        Use the A7 word-parallel bus minimum instead of the paper's
        bit-serial routine.
    serial
        Force the literal host-controller loop: one destination per
        machine pass (the paper's/reference [4]'s execution model).
    lanes
        Destinations per batched pass (default: all ``n``). Lower it to
        bound the ``O(lanes * n^2)`` working set on big grids.
    engine
        Execution engine per destination batch: ``"auto"`` (default) runs
        the fused analytic-cost engine when eligible — which is the normal
        case for plain sweeps — and the cycle engine otherwise (profiling,
        fault plans, ``word_parallel=True`` ablations). Forcing
        ``"cycle"``/``"fused"``/``"compiled"`` is forwarded verbatim;
        results and all counter books are bit-identical either way (see
        :mod:`repro.engine`).
    workers
        Number of worker processes to shard destinations over
        (``None``/``1`` = inline). Each worker runs a contiguous
        destination shard on a fresh machine over shared-memory planes;
        results and the serial-equivalent ``counters`` are bit-identical
        to the inline sweep for every worker count. When sharding is
        blocked (serial sweep, fault plan, tracer, bus trace, custom
        routines — see :func:`repro.engine.shard.workers_block_reason`)
        the sweep falls back inline and records the reason in
        :attr:`APSPResult.shard_report`.
    shard_timeout
        Per-worker-attempt deadline in seconds for sharded sweeps
        (default :data:`repro.engine.shard.DEFAULT_SHARD_TIMEOUT`). A
        crashed, wedged or injected-faulty worker is respawned once and,
        failing that, its shard is recomputed inline — see
        :class:`repro.engine.shard.ShardFailure`.
    warm_sow
        Optional ``(n, n)`` plane of certified upper bounds laid out like
        :attr:`APSPResult.dist` (``warm_sow[:, d]`` seeds destination
        ``d``; ``maxint`` for "no bound"). Honoured on the inline batched
        sweep through the analytic engines — the serving tier's
        incremental re-solve path — where each batch is seeded with
        ``warm_sow[:, dests].T`` and returns cold-identical
        ``dist``/``succ``/``iterations`` (see
        :func:`repro.core.mcp.minimum_cost_path`). Serial and sharded
        sweeps ignore it: the serial loop is the paper's literal cold
        program, and shipping seed planes across worker shared memory is
        not worth the copy for the sharded case.
    """
    n = machine.n
    tele = machine.telemetry
    kwargs = dict(kwargs, engine=engine)

    shard_report: dict = {}
    if workers is not None and int(workers) > 1:
        from repro.engine.shard import sharded_all_pairs, workers_block_reason

        blocked = workers_block_reason(
            machine,
            serial=serial,
            word_parallel=word_parallel,
            min_routine=kwargs.get("min_routine"),
            selected_min_routine=kwargs.get("selected_min_routine"),
        )
        if blocked is None:
            return sharded_all_pairs(
                machine,
                W,
                workers=int(workers),
                lanes=lanes,
                engine=engine,
                zero_diagonal=kwargs.get("zero_diagonal", "require"),
                max_iterations=kwargs.get("max_iterations"),
                shard_timeout=shard_timeout,
            )
        shard_report = {
            "requested_workers": int(workers),
            "workers": 1,
            "blocked": blocked,
        }

    if serial:
        runner = minimum_cost_path_word if word_parallel else minimum_cost_path
        dist = np.full((n, n), machine.maxint, dtype=np.int64)
        succ = np.zeros((n, n), dtype=np.int64)
        iterations = np.zeros(n, dtype=np.int64)
        totals: dict[str, int] = {}
        with tele.span("apsp", n=n, word_parallel=word_parallel, lanes=1):
            for d in range(n):
                with tele.span("apsp.destination", d=d):
                    res = runner(machine, W, d, **kwargs)
                dist[:, d] = res.sow
                succ[:, d] = res.ptn
                iterations[d] = res.iterations
                for k, v in res.counters.items():
                    totals[k] = totals.get(k, 0) + v
        return APSPResult(
            dist=dist,
            succ=succ,
            iterations=iterations,
            maxint=machine.maxint,
            counters=totals,
            machine_counters=dict(totals),
            shard_report=shard_report,
        )

    if word_parallel:
        from repro.core.variants import _word_selected_min
        from repro.ppc.reductions import word_parallel_min

        kwargs = dict(
            kwargs,
            min_routine=word_parallel_min,
            selected_min_routine=_word_selected_min,
        )

    lane_cap = n if lanes is None else max(1, min(int(lanes), n))
    dist = np.full((n, n), machine.maxint, dtype=np.int64)
    succ = np.zeros((n, n), dtype=np.int64)
    iterations = np.zeros(n, dtype=np.int64)
    lane_deltas = {
        name: np.zeros(n, dtype=np.int64)
        for name in type(machine.counters).field_names()
    }
    machine_before = machine.counters.snapshot()
    with tele.span(
        "apsp", n=n, word_parallel=word_parallel, lanes=lane_cap
    ):
        for start in range(0, n, lane_cap):
            dests = np.arange(start, min(start + lane_cap, n))
            with tele.span(
                "apsp.batch", first=int(dests[0]), lanes=int(dests.size)
            ):
                view = machine.lanes(int(dests.size))
                seed = None
                if warm_sow is not None:
                    seed = np.ascontiguousarray(warm_sow[:, dests].T)
                res = batched_minimum_cost_path(
                    view, W, dests, warm_sow=seed, **kwargs
                )
            dist[:, dests] = res.sow.T
            succ[:, dests] = res.ptn.T
            iterations[dests] = res.iterations
            for name, plane in res.lane_counters.items():
                lane_deltas[name][dests] = plane
    return APSPResult(
        dist=dist,
        succ=succ,
        iterations=iterations,
        maxint=machine.maxint,
        counters=LaneCounters.total_of(lane_deltas),
        machine_counters=machine.counters.diff(machine_before),
        lane_counters=lane_deltas,
        shard_report=shard_report,
    )
