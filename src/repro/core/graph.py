"""Weight-matrix conventions and validation.

The algorithm's input is the paper's matrix ``W``: ``w[i, j]`` is the weight
of the directed edge ``i -> j``, ``MAXINT`` (all-ones machine word) where no
edge exists. Library users may supply ``float('inf')``/:data:`INF` or any
explicit sentinel; :func:`normalize_weights` maps it onto the machine word
and enforces the preconditions identified in DESIGN.md:

* square matrix matching the machine grid;
* **zero diagonal** (``w[i, i] = 0``) — statement 16 of the listing
  overwrites the d-row SOW without re-minimising against the old value, and
  only the zero-cost self edge re-injects the previously found path;
* non-negative integer weights fitting the word, with enough headroom that
  no *finite* shortest path saturates at ``MAXINT`` (which would silently
  alias it with "unreachable").
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError, WordWidthError
from repro.ppa.machine import PPAMachine

__all__ = ["INF", "normalize_weights", "max_finite_weight"]

INF = float("inf")
"""Convenience sentinel accepted (alongside ``machine.maxint``) for
"no edge" entries in user-supplied weight matrices."""


def normalize_weights(
    W,
    machine: PPAMachine,
    *,
    zero_diagonal: str = "require",
    check_headroom: bool = True,
) -> np.ndarray:
    """Validate *W* and return its machine representation (int64 grid).

    Parameters
    ----------
    W
        ``n x n`` array-like. Entries may be non-negative integers,
        ``float('inf')`` / ``numpy.inf`` for missing edges, or already the
        machine's ``maxint`` sentinel.
    machine
        Target machine; fixes the grid size and ``MAXINT``.
    zero_diagonal
        ``"require"`` raises unless the diagonal is all zeros (after sentinel
        mapping); ``"set"`` silently forces it to zero; ``"keep"`` trusts the
        caller (only for tests probing the failure mode).
    check_headroom
        When True (default), reject weight ranges for which a finite
        ``n-1``-edge path could reach ``MAXINT`` — saturation would alias a
        real path with "unreachable".

    Returns
    -------
    numpy.ndarray
        A fresh ``int64`` grid with ``maxint`` sentinels, safe to hand to
        :func:`~repro.core.mcp.minimum_cost_path`.
    """
    arr = np.asarray(W)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise GraphError(f"weight matrix must be square, got shape {arr.shape}")
    machine.require_square_fit(arr.shape[0])

    maxint = machine.maxint
    if np.issubdtype(arr.dtype, np.floating):
        finite = np.isfinite(arr)
        if finite.any():
            fin_vals = arr[finite]
            if (fin_vals < 0).any():
                raise GraphError("edge weights must be non-negative")
            if not np.array_equal(fin_vals, np.round(fin_vals)):
                raise GraphError(
                    "edge weights must be integers (the PPA word is an "
                    "integer; pre-scale fractional weights)"
                )
        out = np.full(arr.shape, maxint, dtype=np.int64)
        out[finite] = arr[finite].astype(np.int64)
    elif np.issubdtype(arr.dtype, np.integer) or arr.dtype == np.bool_:
        out = arr.astype(np.int64)
    else:
        raise GraphError(f"unsupported weight dtype {arr.dtype}")

    if (out < 0).any():
        raise GraphError("edge weights must be non-negative")
    if (out > maxint).any():
        raise WordWidthError(
            f"weights exceed MAXINT={maxint} for word_bits="
            f"{machine.word_bits}"
        )

    diag = np.einsum("ii->i", out)
    if zero_diagonal == "set":
        diag[...] = 0
    elif zero_diagonal == "require":
        if (diag != 0).any():
            bad = int(np.flatnonzero(diag != 0)[0])
            raise GraphError(
                f"w[{bad}, {bad}] = {int(diag[bad])}: the diagonal must be "
                "zero (see DESIGN.md, 'Zero diagonal'); pass "
                "zero_diagonal='set' to normalise automatically"
            )
    elif zero_diagonal != "keep":
        raise GraphError(f"unknown zero_diagonal mode {zero_diagonal!r}")

    if check_headroom:
        wmax = max_finite_weight(out, maxint)
        n = out.shape[0]
        if wmax > 0 and (n - 1) * wmax >= maxint:
            raise WordWidthError(
                f"a {n - 1}-edge path of weight-{wmax} edges would reach "
                f"MAXINT={maxint}; increase word_bits (need > "
                f"{int(np.ceil(np.log2((n - 1) * wmax + 2)))}) or rescale "
                "weights"
            )
    return out


def max_finite_weight(W: np.ndarray, maxint: int) -> int:
    """Largest non-sentinel weight in *W* (0 for an edgeless graph)."""
    finite = W[W < maxint]
    return int(finite.max()) if finite.size else 0
