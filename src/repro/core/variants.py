"""Algorithm variants for ablations and batched use.

* :func:`minimum_cost_path_word` — ablation A7: replaces the paper's
  bit-serial ``min``/``selected_min`` with single-transaction word-parallel
  bus reductions. Per-iteration communication drops from ``2h + O(1)`` to
  ``O(1)`` transactions; the *results* are bit-identical (property-tested).
* :func:`minimum_cost_path_multi` — runs one destination after another on
  the same machine, the way a host program would batch queries; counters
  accumulate so the caller can report amortised costs.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.mcp import minimum_cost_path
from repro.core.result import MCPResult
from repro.ppa.directions import Direction
from repro.ppa.machine import PPAMachine
from repro.ppc.reductions import word_parallel_min

__all__ = [
    "minimum_cost_path_word",
    "minimum_cost_path_multi",
    "minimum_cost_path_from",
]


def _word_selected_min(
    machine: PPAMachine, src, orientation: Direction, L, selected
) -> np.ndarray:
    """Word-parallel counterpart of ``selected_min``.

    Non-selected nodes inject ``MAXINT`` so they cannot win; one bus-min
    transaction plus one local select.
    """
    src = np.asarray(src, dtype=np.int64)
    staged = np.where(np.asarray(selected, dtype=bool), src, machine.maxint)
    machine.count_alu()
    return machine.bus_reduce(staged, orientation, L, "min")


def minimum_cost_path_word(machine: PPAMachine, W, d: int, **kwargs) -> MCPResult:
    """MCP with word-parallel bus minima (ablation A7).

    Identical DP structure and outputs as the faithful algorithm; only the
    reduction primitive changes. See DESIGN.md experiment A7.
    """
    return minimum_cost_path(
        machine,
        W,
        d,
        min_routine=word_parallel_min,
        selected_min_routine=_word_selected_min,
        **kwargs,
    )


def minimum_cost_path_multi(
    machine: PPAMachine,
    W,
    destinations: Iterable[int],
    *,
    word_parallel: bool = False,
    **kwargs,
) -> dict[int, MCPResult]:
    """Batch MCP over several destinations on one machine.

    Returns ``{d: MCPResult}`` in input order. Each run's counters are the
    per-destination deltas; sum them for the batch total.
    """
    runner = minimum_cost_path_word if word_parallel else minimum_cost_path
    results: dict[int, MCPResult] = {}
    for d in destinations:
        results[int(d)] = runner(machine, W, int(d), **kwargs)
    return results


def minimum_cost_path_from(
    machine: PPAMachine, W, source: int, **kwargs
) -> MCPResult:
    """Single-*source* orientation: costs from *source* to every vertex.

    The paper's algorithm is destination-oriented; source-oriented queries
    are the same computation on the transposed weight matrix (reverse every
    edge, then "all vertices to `source`" in the reversed graph is
    "`source` to all" in the original). The returned result reads as usual:
    ``sow[i]`` is the cost of ``source -> i`` and ``ptn[i]`` is the vertex
    *preceding* ``i`` on such a path (the reversed graph's successor).

    On the machine, transposing costs one extra pair of broadcasts per
    matrix row at load time; here the host transposes before loading, as a
    driver program would.
    """
    Wt = np.asarray(W).T
    result = minimum_cost_path(machine, Wt, source, **kwargs)
    return MCPResult(
        destination=source,
        sow=result.sow,
        ptn=result.ptn,
        iterations=result.iterations,
        maxint=result.maxint,
        counters=result.counters,
    )
