"""The MCP algorithm as a PPA instruction stream.

:func:`mcp_assembly` emits the complete minimum-cost-path program in PPA
assembly — initialisation transposition, the do-while, and *two inlined
bit-serial elimination loops* (the ``min`` and ``selected_min`` of the
paper's Section 3) — and :func:`minimum_cost_path_asm` assembles, executes
and packages it as an :class:`MCPResult`.

This is the lowest rung of the reproduction ladder::

    paper listing (PPC text)  ->  interpreter
    Python implementation     ->  machine primitives
    assembly program          ->  instruction executor  ->  machine primitives

All three produce bit-identical SOW/PTN and, because every rung drives the
same :class:`PPAMachine`, identical broadcast/wired-OR/global-OR counts
(asserted in the tests).

Register map::

    r0  W          r4  ROW        r8  col_last     r12 not_row_d
    r1  SOW        r5  COL        r9  diagonal     r13 value/workspace
    r2  PTN        r6  row_d      r10 temp         r14 enable
    r3  MIN_SOW    r7  d-plane    r11 temp         r15 temp
    s0  d          s1  bit counter
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import normalize_weights
from repro.core.result import MCPResult
from repro.errors import GraphError
from repro.ppa.assembler import assemble
from repro.ppa.executor import execute
from repro.ppa.machine import PPAMachine

__all__ = ["mcp_assembly", "minimum_cost_path_asm"]


def _elimination(tag: str, h: int, init_enable: str) -> str:
    """One bit-serial MSB-first elimination + delivery, on r13 over rows.

    Enters with the candidate words in r13; leaves the per-row minimum
    (restricted to the initial enable set) in r13. ``init_enable`` is the
    instruction initialising r14.
    """
    return f"""
        {init_enable}
        sldi  s1, {h - 1}
elim_{tag}:
        bits  r15, r13, s1          ; bit j of the candidates
        not   r10, r15
        and   r10, r10, r14         ; enabled candidates with a 0 here
        wor   r10, r10, WEST, r8    ; cluster-wide 'a zero exists'
        and   r10, r10, r15         ; ...and this PE holds a 1
        not   r10, r10
        and   r14, r14, r10         ; eliminate
        saddi s1, -1
        sjge  s1, elim_{tag}
        ; statements 11-13: survivors -> cluster head -> everyone
        bcast r10, r13, EAST, r14
        pushm r8
        mov   r13, r10
        popm
        bcast r13, r13, WEST, r8
"""


def mcp_assembly(n: int, h: int) -> str:
    """The full MCP program for an ``n x n`` machine with ``h``-bit words.

    Inputs: ``r0`` = weight matrix, ``s0`` = destination. Outputs: ``r1`` =
    SOW plane, ``r2`` = PTN plane (row ``d`` meaningful, as in the paper).
    """
    return f"""
; minimum cost path on the PPA -- assembly rendition of the IPPS'98 listing
        row   r4
        col   r5
        lds   r7, s0                ; d in every PE
        cmpeq r6, r4, r7            ; row_d
        cmpeq r9, r4, r5            ; diagonal
        ldi   r10, {n - 1}
        cmpeq r8, r5, r10           ; col_last (the rows' bus heads)
        ; init: transpose column d of W onto row d (statements 4-7)
        cmpeq r10, r5, r7           ; col_d
        bcast r11, r0, EAST, r10
        bcast r11, r11, SOUTH, r9
        pushm r6
        mov   r1, r11               ; SOW = 1-edge costs to d
        mov   r2, r7                ; PTN = d
        popm
        ldi   r3, 0                 ; MIN_SOW (row d stays 0 = cost d->d)
        not   r12, r6               ; ROW != d
iter:
        pushm r12                   ; where (ROW != d)
        bcast r13, r1, SOUTH, r6    ; statement 10
        add   r13, r13, r0
        mov   r1, r13
{_elimination("min", h, "ldi   r14, 1")}
        mov   r3, r13               ; statement 11: MIN_SOW
        cmpeq r15, r3, r1           ; min achievers
        mov   r13, r5               ; statement 12: selected_min over COL
{_elimination("sel", h, "mov   r14, r15")}
        mov   r2, r13               ; PTN
        popm
        pushm r6                    ; where (ROW == d), statements 14-19
        mov   r13, r1               ; OLD_SOW
        bcast r10, r3, SOUTH, r9    ; statement 16
        mov   r1, r10
        cmpne r11, r1, r13          ; changed
        pushm r11
        bcast r10, r2, SOUTH, r9    ; statement 18
        mov   r2, r10
        popm
        popm
        and   r11, r11, r6          ; statement 20: any change in row d?
        gor   r11
        jnz   iter
        halt
"""


def minimum_cost_path_asm(machine: PPAMachine, W, d: int, **kwargs) -> MCPResult:
    """Run the assembly MCP program; same contract as
    :func:`repro.core.mcp.minimum_cost_path`."""
    Wm = normalize_weights(W, machine, **kwargs)
    n = machine.n
    if not (0 <= d < n):
        raise GraphError(f"destination {d} outside [0, {n})")
    program = assemble(mcp_assembly(n, machine.word_bits))
    with machine.telemetry.span(
        "asm_mcp.execute", arch="ppa", n=n, d=d,
        program_length=len(program),
    ):
        state = execute(
            machine,
            program,
            inputs={"r0": Wm, "s0": d},
            # worst case: n do-while rounds, each dominated by two h-pass
            # elimination loops of ~9 instructions per bit
            max_steps=200 + (n + 1) * (20 * machine.word_bits + 80),
        )
    gors = state.counters.get("global_ors", 0)
    return MCPResult(
        destination=d,
        sow=state.reg(1)[d],
        ptn=state.reg(2)[d],
        iterations=gors,  # one convergence test per do-while round
        maxint=machine.maxint,
        counters=state.counters,
    )
