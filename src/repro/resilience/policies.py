"""Recovery policy knobs for the resilient runtime.

Three orthogonal policies, composed by
:class:`~repro.resilience.executor.ResilientExecutor`:

:class:`RetryPolicy`
    What to do when a detector fires but diagnosis names no new hardware
    fault (a transient glitch, or an intermittent switch that went quiet
    again): roll back to the last verified checkpoint and *replay* the
    window — the bus transactions of the replayed iterations are
    re-issued, which is the PPA's unit of retry. Bounded; when the budget
    is exhausted the executor either escalates to a full diagnostic sweep
    (``escalate=True``) or declares the run failed.

:class:`CheckpointPolicy`
    How often the controller snapshots the algorithm's carried state into
    the checkpoint store. One MCP iteration carries only the row-``d``
    ``SOW``/``PTN`` vectors between rounds (see docs/robustness.md), so a
    checkpoint is two ``m``-vectors per lane, stored in *logical* vertex
    coordinates — which is what makes a checkpoint restorable onto a
    *different* physical embedding after a remap. ``verify=True`` runs
    the detectors first and only commits when they are quiet, so the
    store never holds state written after an undetected fault.

:class:`RemapPolicy`
    Whether (and how far) the executor may consume spare rows/columns to
    quarantine physical indices that diagnosis has named faulty. The
    machine must be larger than the problem (``n_phys > m``) for a remap
    to be possible at all.

:class:`BackoffPolicy` is the *shared* retry-delay schedule — exponential
backoff with deterministic, seeded jitter — used by the serving tier
(:mod:`repro.serve`) for transient service-level failures (worker
crashes, breaker probes). It lives here so service retries and the
executor's replay budget share one accounting vocabulary; the executor
itself replays synchronously (a simulated array has no reason to sleep).

All policies are frozen; build a new instance to change a knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "BackoffPolicy",
    "RetryPolicy",
    "CheckpointPolicy",
    "RemapPolicy",
    "ResilienceConfig",
]


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic full jitter.

    Delay for attempt ``k`` (0-based) is drawn uniformly from
    ``[0, min(base * multiplier**k, cap)]`` ("full jitter", which
    decorrelates retry storms better than fixed fractions) — from a
    generator seeded per request, so a replayed campaign schedules the
    exact same delays. ``max_attempts`` counts *retries*, not the first
    try: ``max_attempts=2`` means up to three executions.
    """

    base: float = 0.01
    multiplier: float = 2.0
    cap: float = 0.5
    max_attempts: int = 2
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.base < 0 or self.cap < 0:
            raise ConfigurationError(
                f"backoff base/cap must be >= 0, got {self.base}/{self.cap}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"backoff multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_attempts < 0:
            raise ConfigurationError(
                f"max_attempts must be >= 0, got {self.max_attempts}"
            )

    def delay(self, attempt: int, rng: np.random.Generator | None = None
              ) -> float:
        """Seconds to wait before retry *attempt* (0-based)."""
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        ceiling = min(self.base * self.multiplier ** attempt, self.cap)
        if not self.jitter or rng is None:
            return ceiling
        return float(rng.uniform(0.0, ceiling))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded rollback-and-replay with optional escalation."""

    #: rollback/replay attempts allowed per recovery *episode*: the
    #: budget resets on verified progress (a committed checkpoint) and on
    #: a successful remap — it bounds consecutive fruitless replays, not
    #: the run's lifetime total.
    max_retries: int = 3
    #: when the budget runs out on invariant alarms, run one full
    #: diagnostic sweep before giving up — an intermittent switch that
    #: misbehaves often enough to exhaust retries will usually show up.
    escalate: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )


@dataclass(frozen=True)
class CheckpointPolicy:
    """Verified snapshots of the carried row-``d`` state."""

    #: commit a checkpoint every this many productive iterations.
    every: int = 4
    #: run the detectors before committing; an alarmed boundary recovers
    #: first and commits only after a clean replay.
    verify: bool = True
    #: checkpoints retained in the store (rollback always targets the
    #: newest; older ones are kept for post-mortems).
    keep: int = 2

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ConfigurationError(
                f"checkpoint cadence must be >= 1, got {self.every}"
            )
        if self.keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {self.keep}")


@dataclass(frozen=True)
class RemapPolicy:
    """Quarantine-and-re-embed around diagnosed faults."""

    enabled: bool = True
    #: cap on the number of physical indices that may be quarantined over
    #: the run (``None`` = limited only by the array's actual slack).
    max_spares: int | None = None
    #: when a *confirmed* structural alarm keeps recurring but the full
    #: self-test names no fault (an intermittent switch quiet during the
    #: diagnostic, say), quarantine the probe-localised suspect rings
    #: rather than failing the run — trade a spare for forward progress.
    quarantine_suspects: bool = True

    def __post_init__(self) -> None:
        if self.max_spares is not None and self.max_spares < 0:
            raise ConfigurationError(
                f"max_spares must be >= 0 or None, got {self.max_spares}"
            )


@dataclass(frozen=True)
class ResilienceConfig:
    """Complete detector + policy configuration for one executor."""

    #: evaluate the online detectors every this many productive
    #: iterations (1 = every iteration; the final iteration is always
    #: guarded regardless).
    detect_every: int = 1
    #: enable the 4-transaction structural echo probe.
    structural_probe: bool = True
    #: enable the algorithm-level relaxation-invariant monitor.
    invariant_monitor: bool = True
    #: run the full diagnostic sweep before starting and refuse (raise)
    #: when the array cannot host the problem.
    initial_diagnosis: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint: CheckpointPolicy = field(default_factory=CheckpointPolicy)
    remap: RemapPolicy = field(default_factory=RemapPolicy)

    def __post_init__(self) -> None:
        if self.detect_every < 1:
            raise ConfigurationError(
                f"detect_every must be >= 1, got {self.detect_every}"
            )
