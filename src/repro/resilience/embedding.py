"""Logical-to-physical array embedding with quarantined rows/columns.

A fault on the switch-box at PE ``(r, c)`` compromises one *ring*: the
column bus of column ``c`` when the fault sits on the axis-0 switch, the
row bus of row ``r`` on the axis-1 switch. The MCP workload binds vertex
``v`` to physical row *and* column ``v`` (its weights live in row ``v``,
its candidates are minimised along row ``v``, its costs broadcast down
column ``v``), so the unit of quarantine is a whole physical *index*:
quarantining ``p`` retires both row ``p`` and column ``p`` from the
logical workload.

:class:`ArrayEmbedding` is the order-preserving injection of ``m``
logical vertices into the healthy physical indices of an
``n_phys x n_phys`` array. Padding rows/columns (quarantined or spare)
carry ``MAXINT`` off-diagonal weights and a zero diagonal; the saturating
add of MCP's statement 10 then maps *any* value a faulty bus delivers
into a padding row/column back to ``MAXINT`` before it can reach a
logical row minimum — garbage is confined to padding entries by
construction (the proof is in docs/robustness.md). The executor masks
its convergence test and its detectors to logical indices, so padding
garbage can neither stall nor corrupt a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ResilienceError
from repro.ppa.faults import SwitchFault

__all__ = ["ArrayEmbedding", "quarantine_indices"]


def quarantine_indices(
    faults: Iterable[SwitchFault],
    undiagnosable_rings: Iterable[tuple[int, int]] = (),
) -> set[int]:
    """Physical indices retired by *faults* and undiagnosable rings.

    An axis-0 fault at ``(r, c)`` poisons column ``c``; an axis-1 fault
    poisons row ``r``; ``axis=None`` (both switch-boxes) poisons both.
    An undiagnosable ring ``(axis, ring)`` is quarantined whole — the
    self-test could not clear it, so it must not carry logical traffic.
    """
    out: set[int] = set()
    for f in faults:
        if f.axis in (0, None):
            out.add(f.col)
        if f.axis in (1, None):
            out.add(f.row)
    for _axis, ring in undiagnosable_rings:
        out.add(ring)
    return out


@dataclass(frozen=True)
class ArrayEmbedding:
    """Order-preserving map of ``m`` logical vertices onto healthy
    physical indices of an ``n_phys``-wide array."""

    n_phys: int
    physical: tuple[int, ...]  # ascending physical index per logical vertex
    quarantined: frozenset[int]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls, n_phys: int, m: int, quarantined: Iterable[int] = ()
    ) -> "ArrayEmbedding":
        """Embed ``m`` vertices into the ``m`` smallest healthy indices.

        Raises :class:`ResilienceError` when fewer than ``m`` healthy
        indices remain — the caller is out of spares.
        """
        q = frozenset(int(p) for p in quarantined)
        for p in q:
            if not (0 <= p < n_phys):
                raise ResilienceError(
                    f"quarantined index {p} outside array of {n_phys}"
                )
        healthy = [p for p in range(n_phys) if p not in q]
        if m < 1 or m > n_phys:
            raise ResilienceError(
                f"cannot embed {m} vertices into a {n_phys}x{n_phys} array"
            )
        if len(healthy) < m:
            raise ResilienceError(
                f"only {len(healthy)} healthy rows/columns remain on the "
                f"{n_phys}x{n_phys} array ({len(q)} quarantined); "
                f"{m} are required — spare capacity exhausted"
            )
        return cls(
            n_phys=n_phys, physical=tuple(healthy[:m]), quarantined=q
        )

    def requarantine(self, extra: Iterable[int]) -> "ArrayEmbedding":
        """A new embedding with *extra* physical indices also retired."""
        return ArrayEmbedding.build(
            self.n_phys, self.m, self.quarantined | set(extra)
        )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Logical problem size."""
        return len(self.physical)

    @property
    def spares_left(self) -> int:
        """Healthy physical indices not carrying logical traffic."""
        return self.n_phys - len(self.quarantined) - self.m

    @property
    def is_identity(self) -> bool:
        return self.physical == tuple(range(self.m))

    def physical_array(self) -> np.ndarray:
        return np.asarray(self.physical, dtype=np.int64)

    def inverse(self) -> np.ndarray:
        """``(n_phys,)`` physical→logical map; ``-1`` at padding."""
        inv = np.full(self.n_phys, -1, dtype=np.int64)
        inv[self.physical_array()] = np.arange(self.m, dtype=np.int64)
        return inv

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------

    def embed_weights(self, Wl: np.ndarray, maxint: int) -> np.ndarray:
        """Lift a logical ``(m, m)`` (or per-lane ``(B, m, m)``) weight
        matrix onto the physical array: padding is ``MAXINT`` off the
        diagonal and ``0`` on it."""
        Wl = np.asarray(Wl, dtype=np.int64)
        m = self.m
        if Wl.shape[-2:] != (m, m):
            raise ResilienceError(
                f"weights {Wl.shape} do not match embedding of {m} vertices"
            )
        shape = (*Wl.shape[:-2], self.n_phys, self.n_phys)
        out = np.full(shape, maxint, dtype=np.int64)
        diag = np.arange(self.n_phys)
        out[..., diag, diag] = 0
        phys = self.physical_array()
        out[..., phys[:, None], phys[None, :]] = Wl
        return out

    def extract(self, vec_phys: np.ndarray) -> np.ndarray:
        """Logical view of a physical vector's last axis."""
        return np.asarray(vec_phys)[..., self.physical_array()]

    def to_logical_ptn(
        self, ptn_phys: np.ndarray, dest_logical: np.ndarray
    ) -> np.ndarray:
        """Map an extracted ``(B, m)`` successor vector (physical column
        indices) back to logical vertex ids.

        A healthy run can only name logical successors (padding columns
        saturate at ``MAXINT`` and an unreachable vertex keeps its init
        value ``d``); a physical index with no logical preimage is mapped
        to the lane's destination defensively, mirroring the vacuous
        ``ptn = d`` convention for unreachable vertices.
        """
        ptn_phys = np.asarray(ptn_phys, dtype=np.int64)
        dest = np.asarray(dest_logical, dtype=np.int64)
        logical = self.inverse()[np.clip(ptn_phys, 0, self.n_phys - 1)]
        fallback = np.broadcast_to(dest[:, None], ptn_phys.shape)
        return np.where(logical < 0, fallback, logical)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArrayEmbedding(m={self.m}, n_phys={self.n_phys}, "
            f"quarantined={sorted(self.quarantined)}, "
            f"spares_left={self.spares_left})"
        )
