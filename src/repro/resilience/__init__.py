"""Resilient execution runtime for the PPA (detect/diagnose/recover).

The PPA's selling point is fault tolerance through reconfiguration —
the restricted switch-box is hardware-implementable, hence failable.
This package closes the loop that :mod:`repro.ppa.faults` (fault
models) and :mod:`repro.ppa.selftest` (offline localisation) leave
open: online detection while MCP runs, checkpoint/rollback/replay for
glitches, and quarantine-plus-remap onto spare rows/columns for
permanent damage. See docs/robustness.md for the design and cost model
and EXPERIMENTS.md (T16) for the measured campaigns.
"""

from repro.resilience.checkpoint import Checkpoint, CheckpointStore
from repro.resilience.detectors import InvariantMonitor, StructuralProbe
from repro.resilience.embedding import ArrayEmbedding, quarantine_indices
from repro.resilience.executor import (
    ResilienceEvent,
    ResilienceStatus,
    ResilientExecutor,
    ResilientMCPResult,
)
from repro.resilience.policies import (
    BackoffPolicy,
    CheckpointPolicy,
    RemapPolicy,
    ResilienceConfig,
    RetryPolicy,
)

__all__ = [
    "ArrayEmbedding",
    "BackoffPolicy",
    "Checkpoint",
    "CheckpointPolicy",
    "CheckpointStore",
    "InvariantMonitor",
    "quarantine_indices",
    "RemapPolicy",
    "ResilienceConfig",
    "ResilienceEvent",
    "ResilienceStatus",
    "ResilientExecutor",
    "ResilientMCPResult",
    "RetryPolicy",
    "StructuralProbe",
]
