"""Online fault detectors: structural echo probe + algorithmic invariant.

Two detectors with complementary blind spots (docs/robustness.md gives
the full coverage table):

**Structural echo probe** (:class:`StructuralProbe`) — four real bus
transactions, two per bus axis:

1. *All-Open echo*: every switch Open, broadcast the ring-index plane.
   A healthy PE is its own cluster head and reads its own position; a
   stuck-**short** switch cannot drive and reads its upstream head.
2. *Head-zero sweep*: one Open switch per ring at position 0, broadcast
   the index plane. A healthy ring reads ``0`` everywhere; a stuck-
   **open** switch at position ``p > 0`` splits the ring and every PE at
   or downstream of ``p`` reads ``p`` instead. (A stuck-open *at*
   position 0 is electrically identical to the programmed head — that
   one blind spot is covered by the invariant monitor and the full
   self-test escalation.)

The probe is *differential* and *masked*: it compares against the
signature captured on the (diagnosed) array at run start, ignores rings
the embedding has already quarantined (an intermittent switch on a
retired ring toggles its echo forever without carrying any logical
traffic — it must not re-alarm), and names the deviating rings so the
executor can quarantine a persistent-but-undiagnosable offender as a
*suspect*. The baseline is recaptured after every remap. Probe
transactions run through the machine's normal ``broadcast`` path — they
cost real counter cycles and observe the attached fault plan, transients
included (a transient hitting a probe transaction deviates once and
vanishes on the executor's confirm re-probe: a benign glitch).

**Relaxation-invariant monitor** (:class:`InvariantMonitor`) — recomputes
one Bellman-Ford relaxation of the *previous* round's row-``d`` state
with word-parallel checker hardware (broadcasts + saturating add + one
``min`` bus reduction + select and compares) and alarms when the
current row-``d`` ``SOW`` is not *exactly* the relaxation of the
previous one, or when the successor each ``PTN`` word names fails to
achieve it. This catches non-repeatable corruption — transient flips
and intermittent stuck-ats that fired during the round — that the probe
cannot see. Deterministically *repeatable* corruption (a permanent
stuck-at) corrupts the recomputation the same way and passes the
equality; that class is the probe's job. The check is masked to logical
(non-padding) diagonal positions, so quarantined rings cannot false-
alarm.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BusError
from repro.ppa.directions import Direction
from repro.ppa.machine import PPAMachine

__all__ = ["StructuralProbe", "InvariantMonitor"]

_AXIS_DIRECTION = {0: Direction.SOUTH, 1: Direction.EAST}


class StructuralProbe:
    """Four-transaction differential echo probe on one physical array."""

    #: bus transactions issued per :meth:`capture`.
    TRANSACTIONS = 4

    def __init__(self, machine: PPAMachine):
        if machine.batch is not None:
            raise BusError("structural probe runs on the physical array")
        self.machine = machine
        self._baseline: list[np.ndarray] | None = None
        self._ignore: tuple[int, ...] = ()

    def set_ignore(self, indices) -> None:
        """Exclude quarantined physical indices from signature comparison
        (their columns on the axis-0 probes, their rows on axis-1)."""
        self._ignore = tuple(sorted(int(p) for p in set(indices)))

    def capture(self) -> list[np.ndarray]:
        """Issue the four probe transactions; returns the signature."""
        m = self.machine
        planes: list[np.ndarray] = []
        with m.telemetry.span("resilience.probe"):
            for axis in (0, 1):
                direction = _AXIS_DIRECTION[axis]
                idx = m.row_index if axis == 0 else m.col_index
                all_open = np.ones(m.shape, dtype=bool)
                head_zero = idx == 0
                for plane in (all_open, head_zero):
                    try:
                        planes.append(
                            np.array(m.broadcast(idx, direction, plane))
                        )
                    except BusError:
                        # Strict-bus machines raise when a stuck-short
                        # head leaves a ring driverless; that *is* a
                        # detection — encode it as an impossible echo.
                        planes.append(np.full(m.shape, -1, dtype=np.int64))
        return planes

    def rebaseline(self) -> None:
        """Capture the current signature as the reference (run start and
        after every remap)."""
        self._baseline = self.capture()

    def check(self) -> set[tuple[int, int]]:
        """Re-probe and return the deviating ``(axis, ring)`` set.

        Empty = the signature matches the baseline on every ring that is
        not quarantined. A ring's index *is* its physical index (ring
        ``r`` of axis 0 is column ``r``; of axis 1, row ``r``), which is
        what lets the executor quarantine a persistent offender.
        """
        if self._baseline is None:
            raise BusError("probe has no baseline; call rebaseline() first")
        now = self.capture()
        devs: set[tuple[int, int]] = set()
        ignore = np.asarray(self._ignore, dtype=np.int64)
        for i, (a, b) in enumerate(zip(now, self._baseline)):
            axis = 0 if i < 2 else 1
            diff = a != b
            if ignore.size:
                if axis == 0:
                    diff[:, ignore] = False
                else:
                    diff[ignore, :] = False
            hit = diff.any(axis=0) if axis == 0 else diff.any(axis=1)
            devs.update((axis, int(r)) for r in np.nonzero(hit)[0])
        return devs


class InvariantMonitor:
    """Relaxation-equality check on the batched machine.

    ``check`` answers, per lane: *is the current row-``d`` SOW exactly
    one saturating Bellman-Ford relaxation of the previous round's?*
    The destination diagonal passes vacuously (weights are non-negative
    and ``w[d, d] = 0``, so the relaxed minimum at ``d`` is ``0 ==
    SOW[d, d]``). Costs are charged through the machine primitives:
    three broadcasts, one word-parallel ``min`` reduction, one
    saturating add, a select plus four ALU compares and one per-lane
    controller OR.
    """

    def __init__(self, machine: PPAMachine):
        if machine.batch is None:
            raise BusError("invariant monitor runs on the batched view")
        self.machine = machine

    def check(
        self,
        sow: np.ndarray,
        ptn: np.ndarray,
        prev_sow: np.ndarray,
        weights: np.ndarray,
        row_d: np.ndarray,
        col_last: np.ndarray,
        real_diag: np.ndarray,
    ) -> np.ndarray:
        """Per-lane alarm vector ``(B,)``; True = invariant violated.

        Parameters are the executor's live planes: current ``SOW`` and
        ``PTN`` stacks, the previous ``SOW`` stack, embedded weights, the
        per-lane row-``d`` head plane, the shared rightmost-column head
        plane and the shared logical-diagonal mask.

        Two invariants are audited per logical diagonal position ``j``:

        * *value*: ``SOW[d, j]`` equals the reduced minimum of this
          round's candidates (one relaxation of the previous state);
        * *successor*: the candidate ``PTN[d, j]`` names achieves that
          minimum. ``PTN`` is only rewritten where ``SOW`` changed, but
          a stale successor still achieves the (monotone non-increasing)
          current value, so equality is exact for healthy hardware —
          while a corrupted ``PTN`` word with an intact ``SOW`` row,
          invisible to the value check, fails the select-and-compare.
        """
        m = self.machine
        n = sow.shape[-1]
        with m.telemetry.span("resilience.invariant"):
            # Re-derive this round's candidates from the previous state
            # and minimise each row with the word-parallel checker.
            cand = m.sat_add(m.broadcast(prev_sow, Direction.SOUTH, row_d), weights)
            relaxed = m.bus_reduce(cand, Direction.WEST, col_last, "min")
            # Co-locate the current row-d state on the diagonal.
            cur = m.broadcast(sow, Direction.SOUTH, row_d)
            bad = (relaxed != cur) & real_diag
            # Successor audit: select the candidate each PTN names and
            # compare it against the reduced minimum. A flipped PTN word
            # may name an index outside the array — that is an alarm,
            # not an indexing accident.
            ptn_cur = m.broadcast(ptn, Direction.SOUTH, row_d)
            wild = (ptn_cur < 0) | (ptn_cur >= n)
            named = np.take_along_axis(
                cand, np.clip(ptn_cur, 0, n - 1), axis=-1
            )
            bad = bad | (((named != relaxed) | wild) & real_diag)
            m.count_alu(4)
            return m.lane_global_or(bad)
