"""Checkpoint store for the resilient MCP runtime.

One MCP iteration carries *only* the row-``d`` ``SOW``/``PTN`` vectors
between rounds (every other plane is recomputed from them before it is
read — see docs/robustness.md, "What a checkpoint must hold"), so a
checkpoint is two ``(B, m)`` vectors plus the per-lane loop bookkeeping.
Vectors are stored in **logical** vertex coordinates: a restore maps
them through the *current* :class:`~repro.resilience.embedding.
ArrayEmbedding`, which is exactly what lets the executor roll a run
forward onto a different physical embedding after a remap.

The store is controller-side (host) memory. Snapshots are cheap — the
executor charges the read/write of the two row vectors to the machine's
ALU counters so the cost model stays honest (see the cost table in
docs/robustness.md) — and the store keeps the newest ``keep`` entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ResilienceError

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """Verified carried state at one iteration boundary.

    Attributes
    ----------
    round
        Productive iteration count at which the snapshot was taken
        (0 = right after initialisation).
    sow, ptn
        ``(B, m)`` logical row-``d`` state per lane; ``ptn`` holds
        *logical* successor ids.
    iterations
        ``(B,)`` per-lane productive iteration counts.
    active
        ``(B,)`` per-lane liveness (False = lane had converged).
    """

    round: int
    sow: np.ndarray
    ptn: np.ndarray
    iterations: np.ndarray
    active: np.ndarray

    def __post_init__(self) -> None:
        for name in ("sow", "ptn", "iterations", "active"):
            arr = getattr(self, name)
            object.__setattr__(self, name, np.array(arr, copy=True))
            getattr(self, name).setflags(write=False)


class CheckpointStore:
    """Bounded stack of verified checkpoints (newest last)."""

    def __init__(self, keep: int = 2):
        if keep < 1:
            raise ResilienceError(f"store must keep >= 1 checkpoints: {keep}")
        self.keep = keep
        self._stack: list[Checkpoint] = []
        #: lifetime statistics (commits survive eviction).
        self.commits = 0
        self.restores = 0

    def commit(self, checkpoint: Checkpoint) -> None:
        self._stack.append(checkpoint)
        self.commits += 1
        del self._stack[: -self.keep]

    def latest(self) -> Checkpoint:
        if not self._stack:
            raise ResilienceError("checkpoint store is empty")
        self.restores += 1
        return self._stack[-1]

    def __len__(self) -> int:
        return len(self._stack)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rounds = [c.round for c in self._stack]
        return f"CheckpointStore(rounds={rounds}, commits={self.commits})"
