"""The resilient MCP runtime: detect → diagnose → recover → resume.

:class:`ResilientExecutor` wraps the Section-3 MCP loop (single- or
multi-destination, batched lanes) in a closed control loop:

1. **Screen** — a full diagnostic sweep
   (:func:`repro.ppa.selftest.diagnose_switches`) before the run;
   pre-existing faults are quarantined by embedding the ``m``-vertex
   problem into the healthy rows/columns of the ``n_phys``-wide array
   (:mod:`repro.resilience.embedding`).
2. **Detect** — every ``detect_every`` productive iterations (and always
   on the final one) the structural echo probe and the relaxation-
   invariant monitor run (:mod:`repro.resilience.detectors`), their bus
   and ALU cost charged to the machine counters and attributed to the
   ``detection`` overhead bucket.
3. **Diagnose** — a structural alarm (or an invariant alarm that has
   exhausted its retry budget) triggers the full self-test; faults not
   already known are *new* hardware damage.
4. **Recover** — new faults: quarantine their rings, rebuild the
   embedding on the remaining healthy indices (``RemapPolicy``), restore
   the last verified checkpoint through the *new* embedding and replay.
   No new faults: the alarm was a glitch (transient, or an intermittent
   that went quiet) — roll back and replay, bounded by ``RetryPolicy``.
5. **Resume** — checkpoints (``CheckpointPolicy``) are committed only at
   boundaries the detectors passed, so the store never holds corrupted
   state; a restore therefore resumes a trajectory bit-identical to a
   fault-free run of the same logical problem.

Everything the runtime does is priced through the machine primitives and
split into ``detection`` / ``diagnosis`` / ``checkpoint`` / ``recovery``
counter buckets, so the overhead of resilience is a first-class
measurement (see the T16 campaign in EXPERIMENTS.md). With every
detector disabled and no faults, the algorithmic statement stream is the
batched MCP loop unchanged.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, GraphError, ResilienceError
from repro.core.graph import normalize_weights
from repro.core.result import MCPResult
from repro.ppa.directions import Direction
from repro.ppa.faults import SwitchFault
from repro.ppa.machine import PPAMachine
from repro.ppa.selftest import diagnose_switches
from repro.ppa.topology import PPAConfig
from repro.ppc.reductions import ppa_min, ppa_selected_min
from repro.resilience.checkpoint import Checkpoint, CheckpointStore
from repro.resilience.detectors import InvariantMonitor, StructuralProbe
from repro.resilience.embedding import ArrayEmbedding, quarantine_indices
from repro.resilience.policies import ResilienceConfig

__all__ = [
    "ResilienceStatus",
    "ResilienceEvent",
    "ResilientMCPResult",
    "ResilientExecutor",
]


class ResilienceStatus(enum.Enum):
    """Terminal health classification of one resilient run."""

    #: no detector fired, no spare consumed — the fast path.
    CLEAN = "clean"
    #: detections occurred and rollback/replay absorbed them without
    #: consuming array capacity.
    RECOVERED = "recovered"
    #: the run completed correctly but on a reduced array (spare
    #: rows/columns were consumed by quarantine, at screen time or by a
    #: mid-run remap).
    DEGRADED = "degraded"
    #: recovery budget exhausted — the reported result is NOT trustworthy.
    FAILED = "failed"


@dataclass(frozen=True)
class ResilienceEvent:
    """One entry of the run's recovery log."""

    round: int
    kind: str  # screen | probe-alarm | invariant-alarm | rollback |
    #          # remap | glitch | checkpoint | failed
    detail: str = ""


@dataclass(frozen=True)
class ResilientMCPResult:
    """Outcome of one resilient (possibly multi-lane) MCP run.

    ``sow``/``ptn``/``iterations`` are **logical** per-lane results: for a
    non-``FAILED`` status they are bit-identical to what fault-free
    serial runs on the same graph would produce. ``overhead`` maps each
    bucket (``detection``/``diagnosis``/``checkpoint``/``recovery``) to a
    counter delta; ``counters`` is the total for the run, algorithm
    included.
    """

    destinations: np.ndarray
    sow: np.ndarray
    ptn: np.ndarray
    iterations: np.ndarray
    maxint: int
    status: ResilienceStatus
    embedding: ArrayEmbedding
    rounds: int
    furthest_round: int
    replayed_rounds: int
    retries_used: int
    rollbacks: int
    remaps: int
    checkpoints: int
    detections: int
    benign_glitches: int
    failure: str | None
    events: tuple[ResilienceEvent, ...]
    overhead: dict[str, dict[str, int]] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def batch(self) -> int:
        return int(np.asarray(self.sow).shape[0])

    @property
    def trustworthy(self) -> bool:
        return self.status is not ResilienceStatus.FAILED

    def lane(self, b: int) -> MCPResult:
        """Lane *b* as a plain :class:`MCPResult` (no per-lane counters —
        the resilient cost story lives in :attr:`overhead`)."""
        return MCPResult(
            destination=int(self.destinations[b]),
            sow=np.asarray(self.sow)[b].copy(),
            ptn=np.asarray(self.ptn)[b].copy(),
            iterations=int(self.iterations[b]),
            maxint=self.maxint,
            counters={},
        )

    def overhead_total(self) -> dict[str, int]:
        """All four buckets summed into one counter delta."""
        out: dict[str, int] = {}
        for bucket in self.overhead.values():
            for k, v in bucket.items():
                out[k] = out.get(k, 0) + v
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResilientMCPResult(status={self.status.value}, "
            f"lanes={self.batch}, rounds={self.rounds}, "
            f"remaps={self.remaps}, rollbacks={self.rollbacks})"
        )


def _acc(dst: dict[str, int], delta: dict[str, int]) -> None:
    for k, v in delta.items():
        dst[k] = dst.get(k, 0) + int(v)


def _sub(a: dict[str, int], b: dict[str, int]) -> dict[str, int]:
    keys = set(a) | set(b)
    return {k: a.get(k, 0) - b.get(k, 0) for k in keys}


class ResilientExecutor:
    """Detect → diagnose → recover → resume orchestration for MCP.

    Parameters
    ----------
    machine
        An *unbatched* physical machine. The problem size ``m`` may be
        smaller than ``machine.n``; the difference is spare capacity for
        quarantine.
    config
        Detector and policy configuration.
    min_routine, selected_min_routine
        As in :func:`repro.core.mcp.minimum_cost_path`.
    """

    def __init__(
        self,
        machine: PPAMachine,
        config: ResilienceConfig | None = None,
        *,
        min_routine=ppa_min,
        selected_min_routine=ppa_selected_min,
    ):
        if machine.batch is not None:
            raise ConfigurationError(
                "ResilientExecutor drives the physical machine; pass the "
                "unbatched PPAMachine (lanes are created internally)"
            )
        self.machine = machine
        self.config = config or ResilienceConfig()
        self.min_routine = min_routine
        self.selected_min_routine = selected_min_routine

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def run(
        self,
        W,
        d: int,
        *,
        zero_diagonal: str = "require",
        max_rounds: int | None = None,
        round_hook=None,
        raise_on_failure: bool = True,
    ) -> ResilientMCPResult:
        """Single-destination resilient MCP (one lane)."""
        return self._run(
            W,
            np.asarray([d], dtype=np.int64),
            zero_diagonal=zero_diagonal,
            max_rounds=max_rounds,
            round_hook=round_hook,
            raise_on_failure=raise_on_failure,
        )

    def run_batched(
        self,
        W,
        destinations,
        *,
        zero_diagonal: str = "require",
        max_rounds: int | None = None,
        round_hook=None,
        raise_on_failure: bool = True,
    ) -> ResilientMCPResult:
        """Multi-destination resilient MCP — one lane per destination,
        all lanes sharing the physical array, its faults, its embedding
        and its recovery control flow (an alarm rolls every lane back to
        the common checkpoint)."""
        dest = np.asarray(destinations, dtype=np.int64)
        if dest.ndim != 1 or dest.size == 0:
            raise GraphError(
                f"destinations must be a non-empty 1-D vector, got shape "
                f"{dest.shape}"
            )
        return self._run(
            W,
            dest,
            zero_diagonal=zero_diagonal,
            max_rounds=max_rounds,
            round_hook=round_hook,
            raise_on_failure=raise_on_failure,
        )

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------

    def _run(
        self,
        W,
        dest: np.ndarray,
        *,
        zero_diagonal: str,
        max_rounds: int | None,
        round_hook,
        raise_on_failure: bool,
    ) -> ResilientMCPResult:
        base = self.machine
        cfg = self.config
        n_phys = base.n
        arr = np.asarray(W)
        if arr.ndim not in (2, 3) or arr.shape[-1] != arr.shape[-2]:
            raise GraphError(
                f"weights must be (m, m) or (B, m, m), got {arr.shape}"
            )
        m = int(arr.shape[-1])
        if m > n_phys:
            raise GraphError(
                f"problem of size {m} does not fit the {n_phys}x{n_phys} "
                "array"
            )
        B = int(dest.size)
        if ((dest < 0) | (dest >= m)).any():
            bad = int(dest[(dest < 0) | (dest >= m)][0])
            raise GraphError(f"destination {bad} outside [0, {m})")
        # Normalise on a scratch machine of the *logical* size, so the
        # headroom check reasons about real paths, not padding.
        scratch = PPAMachine(PPAConfig(n=m, word_bits=base.word_bits))
        if arr.ndim == 2:
            Wl = normalize_weights(arr, scratch, zero_diagonal=zero_diagonal)
        else:
            if arr.shape[0] != B:
                raise GraphError(
                    f"weight stack has {arr.shape[0]} lanes but {B} "
                    "destinations were given"
                )
            Wl = np.stack(
                [
                    normalize_weights(
                        arr[b], scratch, zero_diagonal=zero_diagonal
                    )
                    for b in range(B)
                ]
            )
        if max_rounds is None:
            max_rounds = (m + 2) * (cfg.retry.max_retries + 3)

        tele = base.telemetry
        counters0 = base.counters.snapshot()
        overhead: dict[str, dict[str, int]] = {
            k: {} for k in ("detection", "diagnosis", "checkpoint", "recovery")
        }
        events: list[ResilienceEvent] = []
        known_faults: set[SwitchFault] = set()
        known_rings: set[tuple[int, int]] = set()

        @contextmanager
        def bucket(name: str):
            before = base.counters.snapshot()
            yield
            _acc(overhead[name], base.counters.diff(before))

        # State mutated by the nested helpers.
        state: dict = dict(
            cursor=0,
            furthest=0,
            total_rounds=0,
            replayed=0,
            retries=0,
            rollbacks=0,
            remaps=0,
            detections=0,
            benign=0,
            suspects=set(),
            suspect_history=set(),
            failure=None,
            replay_snapshot=None,
            replay_overhead=None,
        )

        with tele.span("resilience.run", n=n_phys, m=m, lanes=B):
            # ---------------- screen + initial embedding ----------------
            quarantined: set[int] = set()
            if cfg.initial_diagnosis:
                with bucket("diagnosis"):
                    report = diagnose_switches(base)
                known_faults = set(report.faults)
                known_rings = set(report.undiagnosable_rings)
                quarantined = quarantine_indices(
                    report.faults, report.undiagnosable_rings
                )
                if quarantined:
                    events.append(
                        ResilienceEvent(
                            0,
                            "screen",
                            f"quarantined {sorted(quarantined)} at start",
                        )
                    )
            if (
                cfg.remap.max_spares is not None
                and len(quarantined) > cfg.remap.max_spares
            ):
                raise ResilienceError(
                    f"screen quarantined {len(quarantined)} indices but the "
                    f"spare budget is {cfg.remap.max_spares}"
                )
            embedding = ArrayEmbedding.build(n_phys, m, quarantined)
            initial_degraded = bool(quarantined)

            view = base.lanes(B)
            probe = StructuralProbe(base)
            probe.set_ignore(embedding.quarantined)
            monitor = InvariantMonitor(view)
            store = CheckpointStore(keep=cfg.checkpoint.keep)

            SOUTH, WEST = Direction.SOUTH, Direction.WEST
            ROW = view.row_index
            COL = view.col_index
            diag = ROW == COL
            col_last = COL == (n_phys - 1)
            lane_idx = np.arange(B)

            # Embedding-dependent planes, rebuilt after every remap.
            geo: dict = {}

            def rebuild_geometry() -> None:
                phys = embedding.physical_array()
                geo["phys"] = phys
                geo["dest_phys"] = phys[dest]
                geo["We"] = embedding.embed_weights(Wl, base.maxint)
                geo["row_d"] = (
                    ROW[None, :, :] == geo["dest_phys"][:, None, None]
                )
                geo["col_d"] = (
                    COL[None, :, :] == geo["dest_phys"][:, None, None]
                )
                geo["real_cols"] = np.isin(COL, phys)
                geo["real_diag"] = diag & geo["real_cols"]

            rebuild_geometry()

            # ---------------- init (statements 4-7) ----------------
            SOW = view.new_parallel(0)
            PTN = view.new_parallel(0)
            MIN_SOW = view.new_parallel(0)
            PREV = SOW

            def initialize() -> None:
                nonlocal SOW, PTN, MIN_SOW, PREV
                SOW = view.new_parallel(0)
                PTN = view.new_parallel(0)
                MIN_SOW = view.new_parallel(0)
                with tele.span("mcp.init"):
                    view.count_alu(3)
                    view.count_alu()
                    w_to_d = view.broadcast(
                        geo["We"], Direction.EAST, geo["col_d"]
                    )
                    transposed = view.broadcast(w_to_d, SOUTH, diag)
                    with view.where(geo["row_d"]):
                        view.store(SOW, transposed)
                        view.store(PTN, geo["dest_phys"][:, None, None])
                PREV = SOW

            def init_verified() -> bool:
                """Round-0 case of the relaxation invariant: right after
                initialisation the carried row-``d`` ``SOW`` must equal
                the embedded weight column into ``d`` and ``PTN`` the
                destination itself, at every *logical* position. The
                controller wrote the weights, so this is two row-vector
                compares of checker work — it closes the one window the
                relaxation monitor cannot see (there is no previous
                round to relax from), which is exactly where a glitch
                hitting the init broadcasts would otherwise become
                silently self-consistent state."""
                dp, phys, We = geo["dest_phys"], geo["phys"], geo["We"]
                if We.ndim == 2:
                    expect = We[:, dp].T
                else:
                    expect = We[lane_idx, :, dp]
                view.count_alu(2)
                sow_ok = np.array_equal(
                    SOW[lane_idx, dp, :][:, phys], expect[:, phys]
                )
                ptn_ok = bool(
                    (PTN[lane_idx, dp, :][:, phys] == dp[:, None]).all()
                )
                return bool(sow_ok) and ptn_ok

            iterations = np.zeros(B, dtype=np.int64)
            active = np.ones(B, dtype=bool)
            changed = np.zeros(view.parallel_shape, dtype=bool)

            # ---------------- helpers over the mutable state -----------

            def fail(reason: str) -> None:
                state["failure"] = reason
                events.append(
                    ResilienceEvent(state["cursor"], "failed", reason)
                )

            def commit_checkpoint() -> None:
                # Verified progress: the detectors passed this boundary,
                # so consecutive-fruitless-replay accounting restarts.
                state["retries"] = 0
                with bucket("checkpoint"):
                    dp = geo["dest_phys"]
                    sow_row = SOW[lane_idx, dp, :]
                    ptn_row = PTN[lane_idx, dp, :]
                    store.commit(
                        Checkpoint(
                            round=state["cursor"],
                            sow=embedding.extract(sow_row),
                            ptn=embedding.to_logical_ptn(
                                embedding.extract(ptn_row), dest
                            ),
                            iterations=iterations,
                            active=active,
                        )
                    )
                    # Controller reads two row vectors into host memory.
                    view.count_alu(2)

            def restore(ckpt: Checkpoint) -> None:
                nonlocal SOW, PTN, MIN_SOW, PREV, iterations, active
                phys, dp = geo["phys"], geo["dest_phys"]
                SOW = view.new_parallel(0)
                PTN = view.new_parallel(0)
                MIN_SOW = view.new_parallel(0)
                sow_row = np.full((B, n_phys), base.maxint, dtype=np.int64)
                sow_row[:, phys] = ckpt.sow
                ptn_row = np.repeat(dp[:, None], n_phys, axis=1)
                ptn_row[:, phys] = phys[np.asarray(ckpt.ptn)]
                SOW[lane_idx, dp, :] = sow_row
                PTN[lane_idx, dp, :] = ptn_row
                PREV = SOW.copy()
                iterations = ckpt.iterations.copy()
                active = ckpt.active.copy()
                # Controller writes two row vectors back onto the array.
                view.count_alu(2)

            def rollback(why: str) -> None:
                ckpt = store.latest()
                with bucket("recovery"):
                    restore(ckpt)
                state["rollbacks"] += 1
                events.append(
                    ResilienceEvent(
                        state["cursor"],
                        "rollback",
                        f"{why}; resuming from round {ckpt.round}",
                    )
                )
                # Open (or extend) the replay-accounting window: counters
                # spent re-running rounds we had already executed are
                # recovery overhead, minus whatever the other buckets
                # claim inside the window.
                if state["replay_snapshot"] is None:
                    state["replay_snapshot"] = base.counters.snapshot()
                    state["replay_overhead"] = {
                        k: dict(v) for k, v in overhead.items()
                    }
                state["replayed"] += state["cursor"] - ckpt.round
                state["cursor"] = ckpt.round

            def close_replay_window() -> None:
                if state["replay_snapshot"] is None:
                    return
                delta = base.counters.diff(state["replay_snapshot"])
                for name, snap in state["replay_overhead"].items():
                    _acc(delta, {k: -v for k, v in _sub(overhead[name], snap).items()})
                _acc(overhead["recovery"], delta)
                state["replay_snapshot"] = None
                state["replay_overhead"] = None

            def diagnose_new() -> set[int]:
                """Full self-test; returns the *quarantinable* physical
                indices it names beyond what is already known. A
                transient corrupting the self-test's own echo planes can
                make the diagnosis name coordinates outside the array —
                those are discarded (nothing to quarantine), which sends
                the caller down the glitch/suspect path instead."""
                nonlocal known_faults, known_rings
                with bucket("diagnosis"):
                    report = diagnose_switches(base)
                new_f = [f for f in report.faults if f not in known_faults]
                new_r = [
                    r
                    for r in report.undiagnosable_rings
                    if r not in known_rings
                ]
                known_faults |= set(report.faults)
                known_rings |= set(report.undiagnosable_rings)
                return {
                    i
                    for i in quarantine_indices(new_f, new_r)
                    if 0 <= i < n_phys
                }

            def remap(extra: set[int], why: str) -> None:
                nonlocal embedding
                if not cfg.remap.enabled:
                    fail(f"{why} but remapping is disabled")
                    return
                target = embedding.quarantined | extra
                if (
                    cfg.remap.max_spares is not None
                    and len(target) > cfg.remap.max_spares
                ):
                    fail(
                        f"quarantining {sorted(extra)} exceeds the spare "
                        f"budget of {cfg.remap.max_spares}"
                    )
                    return
                try:
                    embedding = ArrayEmbedding.build(n_phys, m, target)
                except ResilienceError as exc:
                    fail(str(exc))
                    return
                with tele.span("resilience.remap"):
                    with bucket("recovery"):
                        rebuild_geometry()
                        # Controller re-embeds W onto the new layout.
                        view.count_alu(1)
                    probe.set_ignore(embedding.quarantined)
                    state["remaps"] += 1
                    state["retries"] = 0
                    events.append(
                        ResilienceEvent(
                            state["cursor"],
                            "remap",
                            f"{why}: quarantined {sorted(extra)}; spares "
                            f"left {embedding.spares_left}",
                        )
                    )
                    rollback("remapped onto healthy rows/columns")
                    if cfg.structural_probe:
                        with bucket("recovery"):
                            probe.rebaseline()

            def quarantine_suspects_or_fail(reason: str) -> None:
                # Current confirmed deviations first; fall back to the
                # lifetime deviation history (rings that repeatedly
                # glitched but always went quiet before the confirm).
                localised = state["suspects"] or state["suspect_history"]
                suspects = {int(r) for _axis, r in localised}
                if (
                    cfg.remap.enabled
                    and cfg.remap.quarantine_suspects
                    and suspects
                ):
                    remap(
                        suspects,
                        f"{reason}; quarantining probe-localised suspects",
                    )
                else:
                    fail(
                        f"{reason}: retry budget exhausted and the "
                        "self-test names no new fault"
                    )

            def retry_or_escalate(reason: str, allow_escalate: bool) -> None:
                if state["retries"] < cfg.retry.max_retries:
                    state["retries"] += 1
                    rollback(
                        f"{reason} (retry {state['retries']}/"
                        f"{cfg.retry.max_retries})"
                    )
                elif allow_escalate and cfg.retry.escalate:
                    extra = diagnose_new()
                    if extra:
                        remap(extra, "escalated self-test named new faults")
                    else:
                        quarantine_suspects_or_fail(reason)
                else:
                    fail(f"{reason}: retry budget exhausted")

            def guard() -> str | None:
                if not (cfg.structural_probe or cfg.invariant_monitor):
                    return None
                with tele.span("resilience.guard", k=state["cursor"]):
                    if cfg.structural_probe:
                        with bucket("detection"):
                            devs = probe.check()
                            # Confirm: a transient that hit a probe
                            # transaction deviates once and is gone on the
                            # re-probe — benign; a stuck-at deviates again.
                            confirmed = probe.check() if devs else set()
                        if devs and not confirmed:
                            # Benign for *this* boundary, but remember
                            # the ring: an intermittent that keeps
                            # glitching the same ring is localised by
                            # the history even though every individual
                            # deviation vanishes on confirm.
                            state["benign"] += 1
                            state["suspect_history"] |= set(devs)
                            events.append(
                                ResilienceEvent(
                                    state["cursor"],
                                    "glitch",
                                    f"probe deviation {sorted(devs)} "
                                    "vanished on confirm (transient)",
                                )
                            )
                        elif confirmed:
                            state["detections"] += 1
                            state["suspects"] = set(confirmed)
                            state["suspect_history"] |= set(confirmed)
                            events.append(
                                ResilienceEvent(
                                    state["cursor"],
                                    "probe-alarm",
                                    f"echo deviation confirmed on rings "
                                    f"{sorted(confirmed)}",
                                )
                            )
                            return "structural"
                    if cfg.invariant_monitor:
                        with bucket("detection"):
                            alarms = monitor.check(
                                SOW,
                                PTN,
                                PREV,
                                geo["We"],
                                geo["row_d"],
                                col_last,
                                geo["real_diag"],
                            )
                            # Confirm: deterministic recomputation — if
                            # only the first check's own transactions were
                            # corrupted, the re-check comes back clean.
                            confirmed_inv = (
                                monitor.check(
                                    SOW,
                                    PTN,
                                    PREV,
                                    geo["We"],
                                    geo["row_d"],
                                    col_last,
                                    geo["real_diag"],
                                )
                                if alarms.any()
                                else alarms
                            )
                        if alarms.any() and not confirmed_inv.any():
                            state["benign"] += 1
                            events.append(
                                ResilienceEvent(
                                    state["cursor"],
                                    "glitch",
                                    "invariant alarm vanished on re-check "
                                    "(transient hit the checker)",
                                )
                            )
                        elif confirmed_inv.any():
                            state["detections"] += 1
                            lanes = np.flatnonzero(confirmed_inv).tolist()
                            events.append(
                                ResilienceEvent(
                                    state["cursor"],
                                    "invariant-alarm",
                                    f"relaxation equality violated in "
                                    f"lanes {lanes}",
                                )
                            )
                            return "invariant"
                return None

            # ---------------- run + verify the init ----------------
            initialize()
            if cfg.invariant_monitor:
                tries = 0
                escalated = False
                while state["failure"] is None:
                    with bucket("detection"):
                        ok = init_verified()
                    if ok:
                        break
                    state["detections"] += 1
                    events.append(
                        ResilienceEvent(
                            0,
                            "init-alarm",
                            "initialised row-d state does not match the "
                            "embedded weights",
                        )
                    )
                    if tries < cfg.retry.max_retries:
                        tries += 1
                        state["rollbacks"] += 1
                        with bucket("recovery"):
                            initialize()
                        continue
                    if cfg.retry.escalate and not escalated:
                        escalated = True
                        extra = diagnose_new()
                        target = embedding.quarantined | extra
                        if (
                            extra
                            and cfg.remap.enabled
                            and (
                                cfg.remap.max_spares is None
                                or len(target) <= cfg.remap.max_spares
                            )
                        ):
                            try:
                                embedding = ArrayEmbedding.build(
                                    n_phys, m, target
                                )
                            except ResilienceError as exc:
                                fail(str(exc))
                                break
                            with bucket("recovery"):
                                rebuild_geometry()
                                view.count_alu(1)
                                initialize()
                            probe.set_ignore(embedding.quarantined)
                            state["remaps"] += 1
                            events.append(
                                ResilienceEvent(
                                    0,
                                    "remap",
                                    "init escalation: quarantined "
                                    f"{sorted(extra)}; spares left "
                                    f"{embedding.spares_left}",
                                )
                            )
                            tries = 0
                            continue
                    fail(
                        "initialisation could not be verified against "
                        "the embedded weights"
                    )

            if cfg.structural_probe and state["failure"] is None:
                with bucket("detection"):
                    probe.rebaseline()

            # ---------------- round 0 checkpoint ----------------
            if state["failure"] is None:
                commit_checkpoint()

            # ---------------- the loop ----------------
            try:
                while active.any() and state["failure"] is None:
                    if state["total_rounds"] >= max_rounds:
                        fail(
                            f"round budget ({max_rounds}) exhausted before "
                            "convergence"
                        )
                        break
                    state["total_rounds"] += 1
                    state["cursor"] += 1
                    cursor = state["cursor"]
                    if round_hook is not None:
                        round_hook(cursor, base)
                        # A hook may inject new damage into the physical
                        # machine; the batched view snapshots the fault
                        # plan at creation, so re-sync it — algorithm
                        # lanes must see exactly what the probes see.
                        view._faults = base._faults

                    view.set_active_lanes(active)
                    iterations = iterations + active
                    gate = active[:, None, None]
                    if cfg.invariant_monitor:
                        PREV = SOW.copy()
                        view.count_alu()

                    row_d = geo["row_d"]
                    with tele.span("mcp.iteration", k=cursor):
                        # Statements 9-13.
                        with view.where(gate & ~row_d):
                            with tele.span("mcp.broadcast"):
                                candidates = view.sat_add(
                                    view.broadcast(SOW, SOUTH, row_d),
                                    geo["We"],
                                )
                                view.store(SOW, candidates)
                            with tele.span("mcp.min"):
                                view.store(
                                    MIN_SOW,
                                    self.min_routine(
                                        view, SOW, WEST, col_last
                                    ),
                                )
                            with tele.span("mcp.selected_min"):
                                achieves = MIN_SOW == SOW
                                view.count_alu()
                                view.store(
                                    PTN,
                                    self.selected_min_routine(
                                        view, COL, WEST, col_last, achieves
                                    ),
                                )
                        # Statements 14-19.
                        with tele.span("mcp.writeback"):
                            with view.where(gate & row_d):
                                OLD_SOW = SOW.copy()
                                view.count_alu()
                                view.store(
                                    SOW,
                                    view.broadcast(MIN_SOW, SOUTH, diag),
                                )
                                changed = SOW != OLD_SOW
                                view.count_alu()
                                with view.where(changed):
                                    view.store(
                                        PTN,
                                        view.broadcast(PTN, SOUTH, diag),
                                    )
                        # Statement 20, masked to logical columns so
                        # padding garbage cannot stall convergence.
                        with tele.span("mcp.convergence"):
                            still = view.lane_global_or(
                                changed & row_d & geo["real_cols"]
                            )

                    state["furthest"] = max(state["furthest"], cursor)
                    finishing = not (active & still).any()
                    checkpoint_due = (
                        cursor % cfg.checkpoint.every == 0 or finishing
                    )
                    detect_due = (
                        cursor % cfg.detect_every == 0
                        or finishing
                        or (checkpoint_due and cfg.checkpoint.verify)
                    )

                    alarm = guard() if detect_due else None
                    if alarm is None:
                        active = active & still
                        if (
                            state["replay_snapshot"] is not None
                            and cursor >= state["furthest"]
                        ):
                            close_replay_window()
                        if checkpoint_due:
                            commit_checkpoint()
                    elif alarm == "structural":
                        extra = diagnose_new()
                        if extra:
                            remap(extra, "self-test named new faults")
                        else:
                            events.append(
                                ResilienceEvent(
                                    cursor,
                                    "glitch",
                                    "confirmed probe alarm but self-test "
                                    "names no new fault",
                                )
                            )
                            if state["retries"] < cfg.retry.max_retries:
                                state["retries"] += 1
                                rollback(
                                    "undiagnosed structural alarm (retry "
                                    f"{state['retries']}/"
                                    f"{cfg.retry.max_retries})"
                                )
                            else:
                                quarantine_suspects_or_fail(
                                    "undiagnosed structural alarm"
                                )
                    else:  # invariant
                        retry_or_escalate(
                            "invariant violation", allow_escalate=True
                        )
            finally:
                view.set_active_lanes(None)
            close_replay_window()

        # ---------------- extraction ----------------
        dp = geo["dest_phys"]
        sow_log = embedding.extract(SOW[lane_idx, dp, :])
        ptn_log = embedding.to_logical_ptn(
            embedding.extract(PTN[lane_idx, dp, :]), dest
        )

        if state["failure"] is not None:
            status = ResilienceStatus.FAILED
        elif state["remaps"] > 0 or initial_degraded:
            status = ResilienceStatus.DEGRADED
        elif (
            state["detections"] > 0
            or state["rollbacks"] > 0
            or state["benign"] > 0
        ):
            status = ResilienceStatus.RECOVERED
        else:
            status = ResilienceStatus.CLEAN

        result = ResilientMCPResult(
            destinations=dest.copy(),
            sow=np.array(sow_log),
            ptn=np.array(ptn_log),
            iterations=iterations.copy(),
            maxint=base.maxint,
            status=status,
            embedding=embedding,
            rounds=state["total_rounds"],
            furthest_round=state["furthest"],
            replayed_rounds=state["replayed"],
            retries_used=state["retries"],
            rollbacks=state["rollbacks"],
            remaps=state["remaps"],
            checkpoints=store.commits,
            detections=state["detections"],
            benign_glitches=state["benign"],
            failure=state["failure"],
            events=tuple(events),
            overhead=overhead,
            counters=base.counters.diff(counters0),
        )
        if status is ResilienceStatus.FAILED and raise_on_failure:
            raise ResilienceError(
                f"resilient run failed: {state['failure']} "
                f"(after {state['total_rounds']} rounds, "
                f"{state['rollbacks']} rollbacks, {state['remaps']} remaps)"
            )
        return result
