"""The paper's bus reduction routines: ``min()`` and ``selected_min()``.

These are faithful ports of the listings in Section 3 of the paper. The
algorithm examines all candidate values simultaneously, bit by bit from the
most significant position; at each bit, a cluster-wide wired-OR reveals
whether any still-enabled candidate has a 0 there, and if so every enabled
candidate holding a 1 is eliminated. After ``h`` bit steps the surviving
nodes hold the cluster minimum; two broadcasts (statements 11-13 of the
listing) deliver that value to the cluster's extreme node and then to every
member.

Complexity: ``h`` wired-OR bus transactions plus 2 broadcasts — **O(h)**,
as derived in the paper's Section 3. (The abstract's "log h" is an internal
inconsistency of the paper; see DESIGN.md and experiment F3.)

``word_parallel_min`` is the A7 ablation: the same cluster minimum computed
in a single transaction, as if each PE had a word-wide comparator on the
bus. It is *not* in the paper; it quantifies what the bit-serial design
trades away.
"""

from __future__ import annotations

import numpy as np

from repro.ppa.directions import Direction, opposite
from repro.ppa.machine import PPAMachine
from repro.ppa.switchbox import as_switch_plane

__all__ = [
    "ppa_min",
    "ppa_selected_min",
    "ppa_max",
    "word_parallel_min",
    "ppa_min_digit_serial",
]


def _bit_serial_survivors(
    machine: PPAMachine,
    src: np.ndarray,
    orientation: Direction,
    L: np.ndarray,
    enable: np.ndarray,
) -> np.ndarray:
    """Statements 8-10 of the paper's ``min()``: MSB-first elimination.

    Returns the final ``enable`` plane: within each cluster, exactly the
    nodes (among the initially enabled ones) holding the minimum value.
    """
    h = machine.word_bits
    enable = enable.copy()
    tele = machine.telemetry
    for j in range(h - 1, -1, -1):
        with tele.span("min.bit_slice", j=j):
            bit_j = machine.bit(src, j)
            # or(!bit(src, j) && enable, orientation, L): one wired-OR
            # delivers the cluster-level "a zero exists at this bit" flag
            # to every node.
            zero_seen = machine.bus_or(~bit_j & enable, orientation, L)
            machine.count_alu(2)  # the &,~ above
            # where (zero_seen && bit_j) enable = 0;
            enable &= ~(zero_seen & bit_j)
            machine.count_alu(2)
    return enable


def _deliver_min(
    machine: PPAMachine,
    src: np.ndarray,
    orientation: Direction,
    L: np.ndarray,
    enable: np.ndarray,
) -> np.ndarray:
    """Statements 11-13: route each cluster's surviving value to all members.

    ``where (L) src = broadcast(src, opposite(orientation), enable)`` pulls a
    survivor's value onto each cluster's extreme node (every cluster retains
    at least one survivor, so the nearest enabled node at-or-upstream in the
    opposite orientation is within the same cluster); the final broadcast
    fans it back out.
    """
    with machine.telemetry.span("min.deliver"):
        to_heads = machine.broadcast(src, opposite(orientation), enable)
        L = as_switch_plane(L, machine.shape, lanes=machine.batch)
        staged = np.where(L, to_heads, src)
        machine.count_alu()  # the masked store of statement 12
        return machine.broadcast(staged, orientation, L)


def ppa_min(machine: PPAMachine, src, orientation: Direction, L) -> np.ndarray:
    """Paper's ``min(src, orientation, L)``: cluster-wide minimum.

    Every PE receives the minimum of ``src`` over the bus cluster it belongs
    to (clusters defined by the Open plane *L* under *orientation*).
    O(h) bus transactions for h-bit words.
    """
    with machine.telemetry.span("min"):
        src = np.asarray(src, dtype=np.int64)
        # parallel logical enable = 1 (per lane on a batched machine)
        enable = np.ones(
            np.broadcast_shapes(src.shape, machine.parallel_shape), dtype=bool
        )
        machine.count_alu()
        enable = _bit_serial_survivors(machine, src, orientation, L, enable)
        return _deliver_min(machine, src, orientation, L, enable)


def ppa_selected_min(
    machine: PPAMachine,
    src,
    orientation: Direction,
    L,
    selected,
) -> np.ndarray:
    """Paper's ``selected_min(src, orientation, L, selected)``.

    Identical to :func:`ppa_min` but the elimination starts from the subset
    of nodes flagged by *selected* (paper: "the selected_min() algorithm
    starts considering a subset of the values defined by its fourth input
    parameter"). In the MCP listing this recovers, per row, the (smallest)
    column index among the nodes achieving the row minimum.

    The result is undefined for clusters whose *selected* set is empty —
    the MCP algorithm never produces one (a minimum achiever always exists).
    """
    with machine.telemetry.span("selected_min"):
        src = np.asarray(src, dtype=np.int64)
        enable = as_switch_plane(
            selected, machine.shape, lanes=machine.batch
        ).copy()
        machine.count_alu()
        enable = _bit_serial_survivors(machine, src, orientation, L, enable)
        return _deliver_min(machine, src, orientation, L, enable)


def ppa_max(machine: PPAMachine, src, orientation: Direction, L) -> np.ndarray:
    """Cluster-wide maximum, by running ``min`` on the complemented word.

    Not in the paper's listing but an immediate corollary of it (complement
    all bit planes); used by the extension algorithms. Costs exactly one
    :func:`ppa_min` plus two local complements.
    """
    src = np.asarray(src, dtype=np.int64)
    machine.count_alu()
    flipped = machine.maxint - src
    out = ppa_min(machine, flipped, orientation, L)
    machine.count_alu()
    return machine.maxint - out


def word_parallel_min(
    machine: PPAMachine, src, orientation: Direction, L
) -> np.ndarray:
    """Ablation A7: cluster minimum in one bus transaction.

    Models a hypothetical PPA whose bus resolves a word-wide minimum per
    cycle (as a word comparator per switch would allow). Same result as
    :func:`ppa_min`, O(1) instead of O(h) transactions.
    """
    with machine.telemetry.span("min.word_parallel"):
        return machine.bus_reduce(
            np.asarray(src, dtype=np.int64), orientation, L, "min"
        )


def ppa_min_digit_serial(
    machine: PPAMachine,
    src,
    orientation: Direction,
    L,
    digit_bits: int,
) -> np.ndarray:
    """Digit-serial cluster minimum: the radix-2**k generalisation (A13).

    The paper's routine scans one *bit* per bus cycle; a switch-box with
    ``2**k - 1`` parallel wired-OR lanes can scan ``k`` bits per cycle:
    every enabled candidate asserts the lane of its current digit, each PE
    reads the smallest asserted lane (the cluster's minimal digit) and
    self-eliminates if its own digit is larger. ``ceil(h / k)``
    transactions instead of ``h``, each ``2**k - 1`` lanes wide — at
    ``k = 1`` this *is* the paper's min() (one lane: "a zero exists").

    Accounting: one bus transaction per digit with ``bit_cycles`` charged
    at ``2**k - 1`` lanes, exposing the lane-count/transaction-count
    trade-off experiment A13 sweeps.
    """
    h = machine.word_bits
    if not (1 <= digit_bits <= h):
        raise ValueError(f"digit_bits must be in [1, {h}], got {digit_bits}")
    radix = 1 << digit_bits
    tele = machine.telemetry
    with tele.span("min.digit_serial", digit_bits=digit_bits):
        src = np.asarray(src, dtype=np.int64)
        enable = np.ones(
            np.broadcast_shapes(src.shape, machine.parallel_shape), dtype=bool
        )
        machine.count_alu()
        positions = range(((h + digit_bits - 1) // digit_bits) - 1, -1, -1)
        for pos in positions:
            with tele.span("min.digit_slice", pos=pos):
                digit = (src >> (pos * digit_bits)) & (radix - 1)
                machine.count_alu()
                # One multi-lane transaction: the per-cluster minimum
                # asserted digit.
                staged = np.where(enable, digit, radix)
                machine.count_alu()
                min_digit = machine.bus_reduce(
                    staged, orientation, L, "min", bits=radix - 1
                )
                enable &= digit == min_digit
                machine.count_alu(2)
        return _deliver_min(machine, src, orientation, L, enable)
