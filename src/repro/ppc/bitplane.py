"""Bit-plane helpers for bit-serial word processing.

The PPA's ``min()``/``selected_min()`` routines scan words one bit-plane at
a time, most significant first. This module provides the plane
decomposition/recomposition used by those routines and by tests, plus fully
bit-serial arithmetic (ripple-carry add, lexicographic compare) that models
what a 1-bit PE datapath would execute — useful for cost ablations and for
property-testing the word-level fast paths against a bit-exact reference.

All helpers are vectorised over the grid — and over the batch (lane) axis:
a "bit plane" is a boolean array of the grid's shape (``(n, n)`` or a
``(B, n, n)`` lane stack); a decomposition is an ``(h, *grid)`` boolean
array with plane ``j`` holding bit ``j`` (LSB first). Every function here
is shape-generic over the trailing grid dimensions, so batched words
decompose/compose/add/compare lane-parallel with no extra code.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WordWidthError

__all__ = [
    "bit_decompose",
    "bit_compose",
    "bit_serial_add",
    "bit_serial_less",
    "bit_serial_min",
]


def _check_fits(values: np.ndarray, h: int) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= (1 << h)):
        raise WordWidthError(
            f"values outside [0, 2**{h} - 1]: range "
            f"[{arr.min()}, {arr.max()}]"
        )
    return arr


def bit_decompose(values, h: int) -> np.ndarray:
    """Split unsigned *values* into ``h`` boolean planes, LSB first."""
    arr = _check_fits(values, h)
    shifts = np.arange(h, dtype=np.int64).reshape((h,) + (1,) * arr.ndim)
    return ((arr[None, ...] >> shifts) & 1).astype(bool)


def bit_compose(planes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`bit_decompose`: planes (LSB first) to int64."""
    planes = np.asarray(planes, dtype=np.int64)
    h = planes.shape[0]
    weights = (np.int64(1) << np.arange(h, dtype=np.int64)).reshape(
        (h,) + (1,) * (planes.ndim - 1)
    )
    return (planes * weights).sum(axis=0)


def bit_serial_add(a, b, h: int, *, saturate: bool = True) -> np.ndarray:
    """Ripple-carry addition done plane by plane, as a 1-bit ALU would.

    With ``saturate=True`` any result that overflows ``h`` bits clamps to
    ``2**h - 1`` (the MAXINT sentinel absorbs, matching the machine's
    :meth:`~repro.ppa.machine.PPAMachine.sat_add`).
    """
    pa = bit_decompose(a, h)
    pb = bit_decompose(b, h)
    out = np.empty_like(pa)
    carry = np.zeros(pa.shape[1:], dtype=bool)
    for j in range(h):
        s = pa[j] ^ pb[j] ^ carry
        carry = (pa[j] & pb[j]) | (carry & (pa[j] ^ pb[j]))
        out[j] = s
    result = bit_compose(out)
    if saturate:
        maxint = (1 << h) - 1
        result = np.where(carry, maxint, result)
    elif carry.any():
        raise WordWidthError(f"bit_serial_add overflow beyond {h} bits")
    return result


def bit_serial_less(a, b, h: int) -> np.ndarray:
    """Boolean plane of ``a < b`` computed MSB-first, bit-serially."""
    pa = bit_decompose(a, h)
    pb = bit_decompose(b, h)
    less = np.zeros(pa.shape[1:], dtype=bool)
    decided = np.zeros_like(less)
    for j in range(h - 1, -1, -1):
        lt_here = ~pa[j] & pb[j]
        gt_here = pa[j] & ~pb[j]
        less |= ~decided & lt_here
        decided |= lt_here | gt_here
    return less


def bit_serial_min(a, b, h: int) -> np.ndarray:
    """Element-wise minimum via :func:`bit_serial_less` (bit-exact model)."""
    a = _check_fits(a, h)
    b = _check_fits(b, h)
    return np.where(bit_serial_less(a, b, h), a, b)
