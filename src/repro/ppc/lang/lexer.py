"""Hand-written lexer for the PPC subset.

Supports C block comments (``/* ... */``) and line comments (``// ...``),
decimal and hexadecimal integer literals, identifiers, keywords and the
operator set of :data:`~repro.ppc.lang.tokens.SYMBOLS`.
"""

from __future__ import annotations

from repro.errors import PPCSyntaxError
from repro.ppc.lang.tokens import KEYWORDS, SYMBOLS, Token

__all__ = ["tokenize"]


def tokenize(source: str) -> list[Token]:
    """Turn *source* into a token list terminated by one ``eof`` token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> PPCSyntaxError:
        return PPCSyntaxError(msg, line, col)

    while i < n:
        ch = source[i]
        # -- whitespace ---------------------------------------------------
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # -- comments -----------------------------------------------------
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j < 0:
                raise error("unterminated block comment")
            skipped = source[i : j + 2]
            nl = skipped.count("\n")
            if nl:
                line += nl
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = j + 2
            continue
        # -- numbers ------------------------------------------------------
        if ch.isdigit():
            start = i
            if source.startswith(("0x", "0X"), i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                if i == start + 2:
                    raise error("malformed hexadecimal literal")
            else:
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and (source[i].isalpha() or source[i] == "_"):
                raise error(f"malformed number near {source[start:i + 1]!r}")
            text = source[start:i]
            tokens.append(Token("number", text, line, col))
            col += i - start
            continue
        # -- identifiers / keywords ----------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        # -- symbols --------------------------------------------------------
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token("symbol", sym, line, col))
                i += len(sym)
                col += len(sym)
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", line, col))
    return tokens
