"""PPC → PPA-assembly compiler.

Completes the toolchain of the paper's reference [3] ("A Programming Model
for Reconfigurable Mesh Based Parallel Computers"): the same PPC source
that the interpreter walks can be *compiled* to the instruction set of
:mod:`repro.ppa.isa` and executed by :mod:`repro.ppa.executor` — and for
the paper's ``minimum_cost_path()`` listing the compiled stream produces
bit-identical outputs and identical bus-transaction counts (tested).

Compilation is machine-specific: the grid side ``n`` and word width ``h``
are compile-time constants (``N``/``h``/``MAXINT`` fold away), exactly as
a SIMD controller's microprogram would be generated.

Storage model
-------------
* ``parallel`` variables live in per-PE local memory slots (``ld``/``st``).
* scalar variables live in controller registers ``s0..``; one extra
  register is reserved as the bit-loop counter of expanded ``min()``/
  ``selected_min()``.
* expressions evaluate on a register stack ``r0..r15`` (deep nesting past
  16 live temporaries is a :class:`CodegenError`; the listings peak at 4).

The compilable subset (violations raise :class:`CodegenError` with the
source line):

* controller conditions must be ``any(...)``, a comparison of a scalar
  variable against a compile-time constant, or a constant;
* scalar assignments must be a constant, another scalar variable, or
  ``var ± constant`` (loop-counter algebra);
* user function calls are inlined (no recursion); ``return`` may only be
  the last statement of a non-void function;
* direction arguments must be compile-time constants after inlining.

Masking model: PPC evaluates expressions over the full grid (a
communication operand programs *every* switch-box) and gates only the
final assignment, so the generated code releases the runtime mask stack
around each expression and rebuilds it for the store (every ``where``
condition is spilled to a memory slot when pushed). One consequence,
documented: statements of an *inlined* function body also execute with the
caller's masks released, where the interpreter keeps them — the inlined
routines of the paper (``min``/``selected_min``) are insensitive to this
(their per-ring clusters isolate inactive rows), and outputs plus
communication counters are verified identical.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import PPCError
from repro.ppa.assembler import assemble
from repro.ppa.directions import Direction, opposite
from repro.ppa.executor import ExecutionState, execute
from repro.ppa.isa import Instruction, N_PREGS, N_SREGS
from repro.ppa.machine import PPAMachine
from repro.ppc.lang import ast_nodes as ast
from repro.ppc.lang.analyzer import analyze
from repro.ppc.lang.parser import parse

__all__ = ["CodegenError", "CompiledProgram", "compile_to_asm", "compile_ppc_to_program"]

_MAX_INLINE_DEPTH = 32

_DIRECTIONS = {
    "NORTH": Direction.NORTH,
    "EAST": Direction.EAST,
    "SOUTH": Direction.SOUTH,
    "WEST": Direction.WEST,
}

_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}


class CodegenError(PPCError):
    """Source program outside the compilable subset."""


@dataclass(frozen=True)
class _Binding:
    kind: str  # "pmem" | "sreg" | "const" | "dir"
    value: object  # slot index / sreg index / python int / Direction
    base: str = "int"  # int | logical (for pmem)


@dataclass
class CompiledResult:
    """Outcome of running a compiled program."""

    globals: dict[str, object]
    counters: dict[str, int]
    state: ExecutionState


@dataclass
class CompiledProgram:
    """Assembly + storage layout for one (program, n, h) combination."""

    asm: str
    layout: dict[str, str]  # global name -> "m<slot>" | "s<idx>"
    kinds: dict[str, str]  # global name -> "int" | "logical"
    n: int
    word_bits: int
    mem_words: int
    instructions: list[Instruction] = field(default_factory=list)
    initialised_globals: frozenset = frozenset()

    def run(
        self,
        machine: PPAMachine,
        globals: dict[str, object] | None = None,
        *,
        max_steps: int | None = None,
    ) -> CompiledResult:
        """Execute on *machine*; ``globals`` pre-loads program globals."""
        if machine.n != self.n or machine.word_bits != self.word_bits:
            raise CodegenError(
                f"program compiled for n={self.n}, h={self.word_bits}; "
                f"machine is n={machine.n}, h={machine.word_bits}"
            )
        inputs: dict[str, object] = {}
        for name, value in (globals or {}).items():
            if name not in self.layout:
                raise CodegenError(f"program has no global {name!r}")
            if name in self.initialised_globals:
                raise CodegenError(
                    f"global {name!r} has an explicit initialiser in the "
                    "source; the generated prologue would overwrite the "
                    "injected value"
                )
            inputs[self.layout[name]] = value
        state = execute(
            machine,
            self.instructions,
            inputs=inputs,
            mem_words=self.mem_words,
            max_steps=max_steps or 4_000_000,
        )
        out: dict[str, object] = {}
        for name, where in self.layout.items():
            idx = int(where[1:])
            if where[0] == "m":
                grid = state.memory[idx].copy()
                if self.kinds.get(name) == "logical":
                    grid = grid != 0
                out[name] = grid
            else:
                out[name] = int(state.sregs[idx])
        return CompiledResult(
            globals=out, counters=state.counters, state=state
        )


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.names: dict[str, _Binding] = {}

    def lookup(self, name: str) -> _Binding | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _Compiler:
    def __init__(self, program: ast.Program, n: int, h: int):
        self.program = program
        self.functions = {f.name: f for f in program.functions}
        self.n = n
        self.h = h
        self.maxint = (1 << h) - 1
        self.lines: list[str] = []
        self.next_label = 0
        self.next_mem = 0
        self.next_sreg = 0
        self.reg_top = 0
        self.loop_labels: list[tuple[str, str]] = []  # (continue, break)
        self.mask_slots: list[int] = []  # where-cond slots currently pushed
        self.inline_depth = 0
        self._bit_counter_sreg: int | None = None
        self.globals_scope = _Scope()
        self.layout: dict[str, str] = {}
        self.kinds: dict[str, str] = {}
        self.initialised_globals: set[str] = set()

    # -- emission helpers --------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("        " + text)

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def label(self, stem: str) -> str:
        self.next_label += 1
        return f"{stem}_{self.next_label}"

    def err(self, node, message: str) -> CodegenError:
        line = getattr(node, "line", 0)
        return CodegenError(f"line {line}: {message}")

    # -- resource allocation ---------------------------------------------

    def alloc_reg(self, node=None) -> int:
        if self.reg_top >= N_PREGS:
            raise self.err(node, "expression too deep for 16 registers")
        r = self.reg_top
        self.reg_top += 1
        return r

    def free_to(self, mark: int) -> None:
        self.reg_top = mark

    @contextmanager
    def unmasked(self):
        """Release every active ``where`` mask for the duration.

        PPC evaluates expressions over the *full grid* (communication
        operands set every switch; only variable assignment is gated), so
        the compiler pops the runtime mask stack around expression
        evaluation and rebuilds it — each ``where`` condition was spilled
        to a memory slot when pushed — before the masked store.
        """
        saved = self.mask_slots
        for _ in saved:
            self.emit("popm")
        self.mask_slots = []
        try:
            yield
        finally:
            for slot in saved:
                mark = self.reg_top
                r = self.alloc_reg()
                self.emit(f"ld    r{r}, {slot}")
                self.emit(f"pushm r{r}")
                self.free_to(mark)
            self.mask_slots = saved

    def alloc_mem(self, node=None) -> int:
        slot = self.next_mem
        self.next_mem += 1
        return slot

    def alloc_sreg(self, node=None) -> int:
        if self.next_sreg >= N_SREGS - 1:  # keep one for the bit counter
            raise self.err(
                node, f"more than {N_SREGS - 1} live scalar variables"
            )
        s = self.next_sreg
        self.next_sreg += 1
        return s

    @property
    def bit_counter(self) -> int:
        if self._bit_counter_sreg is None:
            self._bit_counter_sreg = N_SREGS - 1
        return self._bit_counter_sreg

    # -- constants ---------------------------------------------------------

    def const_eval(self, expr, scope: _Scope):
        """Compile-time value of *expr*: int, Direction, or None."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.Identifier):
            if expr.name in _DIRECTIONS:
                return _DIRECTIONS[expr.name]
            if expr.name == "N":
                return self.n
            if expr.name == "h":
                return self.h
            if expr.name == "MAXINT":
                return self.maxint
            b = scope.lookup(expr.name)
            if b is not None and b.kind in ("const", "dir"):
                return b.value
            return None
        if isinstance(expr, ast.Unary):
            v = self.const_eval(expr.operand, scope)
            if not isinstance(v, int):
                return None
            # "~" masks to the machine word, matching the interpreter.
            return {
                "!": lambda x: int(not x),
                "~": lambda x: ~x & self.maxint,
                "-": lambda x: -x,
            }[expr.op](v)
        if isinstance(expr, ast.Binary):
            a = self.const_eval(expr.left, scope)
            # A deciding constant left operand short-circuits through a
            # non-constant right, exactly like the interpreter: `1 || x`
            # is scalar 1 and `0 && x` is scalar 0 whatever x is, and x
            # — including any communication it contains — never runs.
            if isinstance(a, int):
                if expr.op == "||" and a:
                    return 1
                if expr.op == "&&" and not a:
                    return 0
            b = self.const_eval(expr.right, scope)
            if not (isinstance(a, int) and isinstance(b, int)):
                return None
            try:
                return {
                    "+": lambda: a + b,
                    "-": lambda: a - b,
                    "*": lambda: a * b,
                    "/": lambda: a // b,
                    "%": lambda: a % b,
                    "&": lambda: a & b,
                    "|": lambda: a | b,
                    "^": lambda: a ^ b,
                    "<<": lambda: a << b,
                    ">>": lambda: a >> b,
                    "==": lambda: int(a == b),
                    "!=": lambda: int(a != b),
                    "<": lambda: int(a < b),
                    "<=": lambda: int(a <= b),
                    ">": lambda: int(a > b),
                    ">=": lambda: int(a >= b),
                    "&&": lambda: int(bool(a) and bool(b)),
                    "||": lambda: int(bool(a) or bool(b)),
                }[expr.op]()
            except ZeroDivisionError:
                raise self.err(expr, "constant division by zero")
        if isinstance(expr, ast.Call) and expr.name == "opposite":
            v = self.const_eval(expr.args[0], scope) if expr.args else None
            if isinstance(v, Direction):
                return opposite(v)
            return None
        return None

    def direction_of(self, expr, scope: _Scope) -> Direction:
        v = self.const_eval(expr, scope)
        if not isinstance(v, Direction):
            raise self.err(
                expr, "direction argument must be a compile-time constant"
            )
        return v

    # -- expressions ---------------------------------------------------------
    #
    # compile_expr returns (reg, is_bool): the value in a parallel register
    # and whether it is known to be 0/1.

    def compile_expr(self, expr, scope: _Scope) -> tuple[int, bool]:
        const = self.const_eval(expr, scope)
        if isinstance(const, Direction):
            raise self.err(expr, "direction used as a value")
        if isinstance(const, int):
            r = self.alloc_reg(expr)
            self.emit(f"ldi   r{r}, {const}")
            return r, const in (0, 1)

        if isinstance(expr, ast.Identifier):
            b = scope.lookup(expr.name)
            if expr.name == "ROW":
                r = self.alloc_reg(expr)
                self.emit(f"row   r{r}")
                return r, False
            if expr.name == "COL":
                r = self.alloc_reg(expr)
                self.emit(f"col   r{r}")
                return r, False
            if b is None:
                raise self.err(expr, f"undeclared identifier {expr.name!r}")
            r = self.alloc_reg(expr)
            if b.kind == "pmem":
                self.emit(f"ld    r{r}, {b.value}")
                return r, b.base == "logical"
            if b.kind == "sreg":
                self.emit(f"lds   r{r}, s{b.value}")
                return r, False
            raise self.err(expr, f"cannot load {expr.name!r} here")

        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr, scope)
        if isinstance(expr, ast.Call):
            return self._compile_call(expr, scope)
        raise self.err(expr, f"cannot compile expression {expr!r}")

    def _compile_unary(self, expr: ast.Unary, scope) -> tuple[int, bool]:
        if expr.op == "-":
            raise self.err(
                expr, "unary minus on a parallel value is not compilable "
                "(unsigned machine words)"
            )
        r, _ = self.compile_expr(expr.operand, scope)
        if expr.op == "!":
            self.emit(f"not   r{r}, r{r}")
            return r, True
        if expr.op == "~":
            mark = self.reg_top
            t = self.alloc_reg(expr)
            self.emit(f"ldi   r{t}, {self.maxint}")
            self.emit(f"xor   r{r}, r{r}, r{t}")
            self.free_to(mark)
            return r, False
        raise self.err(expr, f"unknown unary operator {expr.op!r}")

    def _boolify(self, r: int, is_bool: bool) -> None:
        if not is_bool:
            self.emit(f"not   r{r}, r{r}")
            self.emit(f"not   r{r}, r{r}")

    def _compile_binary(self, expr: ast.Binary, scope) -> tuple[int, bool]:
        op = expr.op
        if op in ("&&", "||"):
            # Scalar-constant left operands short-circuit, like the
            # interpreter (and C): the right side — including any
            # communication it contains — is never evaluated.
            left_const = self.const_eval(expr.left, scope)
            if isinstance(left_const, int):
                if op == "&&" and not left_const:
                    r = self.alloc_reg(expr)
                    self.emit(f"ldi   r{r}, 0")
                    return r, True
                if op == "||" and left_const:
                    r = self.alloc_reg(expr)
                    self.emit(f"ldi   r{r}, 1")
                    return r, True
                rb, bb = self.compile_expr(expr.right, scope)
                self._boolify(rb, bb)
                return rb, True
        ra, ba = self.compile_expr(expr.left, scope)
        rb, bb = self.compile_expr(expr.right, scope)

        if op in ("&&", "||"):
            self._boolify(ra, ba)
            self._boolify(rb, bb)
            mnem = "and" if op == "&&" else "or"
            self.emit(f"{mnem:<5} r{ra}, r{ra}, r{rb}")
            self.free_to(rb)
            return ra, True

        if op in _CMP_OPS:
            table = {
                "==": ("cmpeq", False),
                "!=": ("cmpne", False),
                "<": ("cmplt", False),
                "<=": ("cmple", False),
                ">": ("cmplt", True),
                ">=": ("cmple", True),
            }
            mnem, swap = table[op]
            x, y = (rb, ra) if swap else (ra, rb)
            self.emit(f"{mnem} r{ra}, r{x}, r{y}")
            self.free_to(rb)
            return ra, True

        if op in ("<<", ">>"):
            amount = self.const_eval(expr.right, scope)
            if not isinstance(amount, int):
                raise self.err(
                    expr, "shift amount must be a compile-time constant"
                )
            mnem = "shli" if op == "<<" else "shri"
            self.free_to(rb)  # the constant got materialised; discard it
            self.emit(f"{mnem}  r{ra}, r{ra}, {amount}")
            return ra, False

        table = {"+": "add", "-": "sub", "*": "mul", "/": "div",
                 "%": "mod", "&": "and", "|": "or", "^": "xor"}
        if op not in table:
            raise self.err(expr, f"unknown binary operator {op!r}")
        self.emit(f"{table[op]:<5} r{ra}, r{ra}, r{rb}")
        self.free_to(rb)
        return ra, False

    # -- calls -----------------------------------------------------------

    def _compile_call(self, expr: ast.Call, scope) -> tuple[int, bool]:
        name = expr.name
        if name in self.functions:
            return self._inline_function(expr, scope)
        if name == "broadcast":
            rs, _ = self.compile_expr(expr.args[0], scope)
            rl, _ = self.compile_expr(expr.args[2], scope)
            d = self.direction_of(expr.args[1], scope)
            self.emit(f"bcast r{rs}, r{rs}, {d.name}, r{rl}")
            self.free_to(rl)
            return rs, False
        if name == "shift":
            rs, b = self.compile_expr(expr.args[0], scope)
            d = self.direction_of(expr.args[1], scope)
            self.emit(f"shift r{rs}, r{rs}, {d.name}")
            return rs, b
        if name == "or":
            rs, _ = self.compile_expr(expr.args[0], scope)
            rl, _ = self.compile_expr(expr.args[2], scope)
            d = self.direction_of(expr.args[1], scope)
            self.emit(f"wor   r{rs}, r{rs}, {d.name}, r{rl}")
            self.free_to(rl)
            return rs, True
        if name == "bit":
            rs, _ = self.compile_expr(expr.args[0], scope)
            j = self.const_eval(expr.args[1], scope)
            if isinstance(j, int):
                self.emit(f"biti  r{rs}, r{rs}, {j}")
                return rs, True
            arg = expr.args[1]
            if isinstance(arg, ast.Identifier):
                b = scope.lookup(arg.name)
                if b is not None and b.kind == "sreg":
                    self.emit(f"bits  r{rs}, r{rs}, s{b.value}")
                    return rs, True
            raise self.err(
                expr, "bit index must be a constant or a scalar variable"
            )
        if name in ("min", "selected_min"):
            return self._expand_min(expr, scope, selected=name == "selected_min")
        if name == "any":
            raise self.err(
                expr, "any() is only compilable as a loop/if condition"
            )
        raise self.err(expr, f"cannot compile call to {name!r}")

    def _expand_min(self, expr: ast.Call, scope, *, selected: bool) -> tuple[int, bool]:
        """Native expansion of the bit-serial elimination (O(h) block)."""
        d = self.direction_of(expr.args[1], scope)
        rv, _ = self.compile_expr(expr.args[0], scope)  # value/workspace
        rl, _ = self.compile_expr(expr.args[2], scope)  # cluster heads
        mark = self.reg_top
        ren = self.alloc_reg(expr)
        if selected:
            rsel, _ = self.compile_expr(expr.args[3], scope)
            self.emit(f"mov   r{ren}, r{rsel}")
            self.free_to(self.reg_top - 1)
        else:
            self.emit(f"ldi   r{ren}, 1")
        rt = self.alloc_reg(expr)
        ru = self.alloc_reg(expr)
        s = self.bit_counter
        loop = self.label("elim")
        self.emit(f"sldi  s{s}, {self.h - 1}")
        self.emit_label(loop)
        self.emit(f"bits  r{rt}, r{rv}, s{s}")
        self.emit(f"not   r{ru}, r{rt}")
        self.emit(f"and   r{ru}, r{ru}, r{ren}")
        self.emit(f"wor   r{ru}, r{ru}, {d.name}, r{rl}")
        self.emit(f"and   r{ru}, r{ru}, r{rt}")
        self.emit(f"not   r{ru}, r{ru}")
        self.emit(f"and   r{ren}, r{ren}, r{ru}")
        self.emit(f"saddi s{s}, -1")
        self.emit(f"sjge  s{s}, {loop}")
        # deliver: survivors -> heads -> everyone
        self.emit(f"bcast r{rt}, r{rv}, {opposite(d).name}, r{ren}")
        self.emit(f"pushm r{rl}")
        self.emit(f"mov   r{rv}, r{rt}")
        self.emit("popm")
        self.emit(f"bcast r{rv}, r{rv}, {d.name}, r{rl}")
        self.free_to(mark)
        self.free_to(rl)
        return rv, False

    def _inline_function(self, expr: ast.Call, scope) -> tuple[int, bool]:
        fn = self.functions[expr.name]
        if self.inline_depth >= _MAX_INLINE_DEPTH:
            raise self.err(expr, "inline depth exceeded (recursion?)")
        if len(expr.args) != len(fn.params):
            raise self.err(expr, f"{expr.name}() arity mismatch")
        inner = _Scope(self.globals_scope)
        for param, arg in zip(fn.params, expr.args):
            const = self.const_eval(arg, scope)
            if isinstance(const, Direction):
                inner.names[param.name] = _Binding("dir", const)
                continue
            if isinstance(const, int) and not param.type.parallel:
                inner.names[param.name] = _Binding("const", const)
                continue
            if param.type.parallel:
                r, _ = self.compile_expr(arg, scope)
                slot = self.alloc_mem(expr)
                self.emit(f"st    {slot}, r{r}")
                self.free_to(r)
                inner.names[param.name] = _Binding(
                    "pmem", slot, param.type.base
                )
            else:
                raise self.err(
                    expr,
                    f"scalar argument to {expr.name}() must be a "
                    "compile-time constant",
                )
        self.inline_depth += 1
        try:
            body = list(fn.body.statements)
            ret_expr = None
            if body and isinstance(body[-1], ast.Return):
                ret_expr = body[-1].value
                body = body[:-1]
            for stmt in body:
                if _contains_return(stmt):
                    raise self.err(
                        stmt,
                        "return must be the last statement of an inlined "
                        "function",
                    )
                self.compile_statement(stmt, inner)
            if fn.return_type.base == "void":
                r = self.alloc_reg(expr)
                self.emit(f"ldi   r{r}, 0")
                return r, True
            if ret_expr is None:
                raise self.err(expr, f"{expr.name}() falls off without return")
            return self.compile_expr(ret_expr, inner)
        finally:
            self.inline_depth -= 1

    # -- conditions ----------------------------------------------------------

    def branch_if_false(self, cond, scope, target: str) -> None:
        const = self.const_eval(cond, scope)
        if isinstance(const, int):
            if not const:
                self.emit(f"jmp   {target}")
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self.branch_if_true(cond.operand, scope, target)
            return
        if isinstance(cond, ast.Call) and cond.name == "any":
            mark = self.reg_top
            with self.unmasked():
                r, _ = self.compile_expr(cond.args[0], scope)
                self.emit(f"gor   r{r}")
            self.free_to(mark)
            self.emit(f"jz    {target}")
            return
        branch = self._scalar_compare(cond, scope, invert=True)
        if branch is not None:
            self.emit(branch + f", {target}")
            return
        raise self.err(
            cond,
            "condition is not compilable: use any(...), a scalar-variable "
            "comparison against a constant, or a constant",
        )

    def branch_if_true(self, cond, scope, target: str) -> None:
        const = self.const_eval(cond, scope)
        if isinstance(const, int):
            if const:
                self.emit(f"jmp   {target}")
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self.branch_if_false(cond.operand, scope, target)
            return
        if isinstance(cond, ast.Call) and cond.name == "any":
            mark = self.reg_top
            with self.unmasked():
                r, _ = self.compile_expr(cond.args[0], scope)
                self.emit(f"gor   r{r}")
            self.free_to(mark)
            self.emit(f"jnz   {target}")
            return
        branch = self._scalar_compare(cond, scope, invert=False)
        if branch is not None:
            self.emit(branch + f", {target}")
            return
        raise self.err(
            cond,
            "condition is not compilable: use any(...), a scalar-variable "
            "comparison against a constant, or a constant",
        )

    def _scalar_compare(self, cond, scope, *, invert: bool) -> str | None:
        """``svar CMP const`` (either side) as a fused branch, or None."""
        if not (isinstance(cond, ast.Binary) and cond.op in _CMP_OPS):
            return None
        left_var = self._scalar_var(cond.left, scope)
        right_var = self._scalar_var(cond.right, scope)
        op = cond.op
        if left_var is not None:
            c = self.const_eval(cond.right, scope)
            s = left_var
        elif right_var is not None:
            c = self.const_eval(cond.left, scope)
            s = right_var
            op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        else:
            return None
        if not isinstance(c, int):
            return None
        if invert:
            op = {"==": "!=", "!=": "==", "<": ">=", ">=": "<",
                  "<=": ">", ">": "<="}[op]
        if op == "==":
            return f"sbeq  s{s}, {c}"
        if op == "!=":
            return f"sbne  s{s}, {c}"
        if op == "<":
            return f"sblt  s{s}, {c}"
        if op == ">=":
            return f"sbge  s{s}, {c}"
        if op == "<=":
            return f"sblt  s{s}, {c + 1}"
        if op == ">":
            return f"sbge  s{s}, {c + 1}"
        return None

    def _scalar_var(self, expr, scope) -> int | None:
        if isinstance(expr, ast.Identifier):
            b = scope.lookup(expr.name)
            if b is not None and b.kind == "sreg":
                return int(b.value)
        return None

    # -- statements ----------------------------------------------------------

    def compile_statement(self, stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            inner = _Scope(scope)
            for s in stmt.statements:
                self.compile_statement(s, inner)
        elif isinstance(stmt, ast.VarDecl):
            self._compile_decl(stmt, scope, register_global=False)
        elif isinstance(stmt, ast.Assign):
            self._compile_assign(stmt, scope)
        elif isinstance(stmt, ast.ExprStatement):
            mark = self.reg_top
            with self.unmasked():
                self.compile_expr(stmt.expr, scope)
            self.free_to(mark)
        elif isinstance(stmt, ast.Where):
            self._compile_where(stmt, scope)
        elif isinstance(stmt, ast.If):
            done = self.label("endif")
            if stmt.otherwise is None:
                self.branch_if_false(stmt.condition, scope, done)
                self.compile_statement(stmt.then, _Scope(scope))
            else:
                els = self.label("else")
                self.branch_if_false(stmt.condition, scope, els)
                self.compile_statement(stmt.then, _Scope(scope))
                self.emit(f"jmp   {done}")
                self.emit_label(els)
                self.compile_statement(stmt.otherwise, _Scope(scope))
            self.emit_label(done)
        elif isinstance(stmt, ast.While):
            top = self.label("while")
            done = self.label("wend")
            self.emit_label(top)
            self.branch_if_false(stmt.condition, scope, done)
            self.loop_labels.append((top, done))
            self.compile_statement(stmt.body, _Scope(scope))
            self.loop_labels.pop()
            self.emit(f"jmp   {top}")
            self.emit_label(done)
        elif isinstance(stmt, ast.DoWhile):
            top = self.label("do")
            check = self.label("docheck")
            done = self.label("dend")
            self.emit_label(top)
            self.loop_labels.append((check, done))
            self.compile_statement(stmt.body, _Scope(scope))
            self.loop_labels.pop()
            self.emit_label(check)
            self.branch_if_true(stmt.condition, scope, top)
            self.emit_label(done)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self.compile_statement(stmt.init, inner)
            top = self.label("for")
            step = self.label("fstep")
            done = self.label("fend")
            self.emit_label(top)
            if stmt.condition is not None:
                self.branch_if_false(stmt.condition, inner, done)
            self.loop_labels.append((step, done))
            self.compile_statement(stmt.body, _Scope(inner))
            self.loop_labels.pop()
            self.emit_label(step)
            if stmt.step is not None:
                self.compile_statement(stmt.step, inner)
            self.emit(f"jmp   {top}")
            self.emit_label(done)
        elif isinstance(stmt, ast.Break):
            if not self.loop_labels:
                raise self.err(stmt, "'break' outside any loop")
            self.emit(f"jmp   {self.loop_labels[-1][1]}")
        elif isinstance(stmt, ast.Continue):
            if not self.loop_labels:
                raise self.err(stmt, "'continue' outside any loop")
            self.emit(f"jmp   {self.loop_labels[-1][0]}")
        elif isinstance(stmt, ast.Return):
            raise self.err(
                stmt, "return is only compilable as an inlined function's "
                "final statement (the entry point returns via globals)"
            )
        else:
            raise self.err(stmt, f"cannot compile statement {stmt!r}")

    def _compile_where(self, stmt: ast.Where, scope) -> None:
        mark = self.reg_top
        slot = self.alloc_mem(stmt)
        with self.unmasked():
            r, _ = self.compile_expr(stmt.condition, scope)
            self.emit(f"st    {slot}, r{r}")
            self.free_to(mark)
        r = self.alloc_reg(stmt)
        self.emit(f"ld    r{r}, {slot}")
        self.emit(f"pushm r{r}")
        self.free_to(mark)
        self.mask_slots.append(slot)
        self.compile_statement(stmt.then, _Scope(scope))
        self.emit("popm")
        self.mask_slots.pop()
        if stmt.otherwise is not None:
            inv = self.alloc_mem(stmt)
            with self.unmasked():
                r = self.alloc_reg(stmt)
                self.emit(f"ld    r{r}, {slot}")
                self.emit(f"not   r{r}, r{r}")
                self.emit(f"st    {inv}, r{r}")
                self.free_to(mark)
            r = self.alloc_reg(stmt)
            self.emit(f"ld    r{r}, {inv}")
            self.emit(f"pushm r{r}")
            self.free_to(mark)
            self.mask_slots.append(inv)
            self.compile_statement(stmt.otherwise, _Scope(scope))
            self.emit("popm")
            self.mask_slots.pop()

    def _compile_decl(self, decl: ast.VarDecl, scope, *, register_global: bool) -> None:
        for d in decl.declarators:
            if decl.type.parallel:
                slot = self.alloc_mem(decl)
                scope.names[d.name] = _Binding("pmem", slot, decl.type.base)
                if register_global:
                    self.layout[d.name] = f"m{slot}"
                    self.kinds[d.name] = decl.type.base
                    if d.init is not None:
                        self.initialised_globals.add(d.name)
                if d.init is not None:
                    mark = self.reg_top
                    with self.unmasked():
                        r, _ = self.compile_expr(d.init, scope)
                        self.emit(f"st    {slot}, r{r}")
                    self.free_to(mark)
            else:
                s = self.alloc_sreg(decl)
                scope.names[d.name] = _Binding("sreg", s)
                if register_global:
                    self.layout[d.name] = f"s{s}"
                    self.kinds[d.name] = decl.type.base
                    if d.init is not None:
                        self.initialised_globals.add(d.name)
                if d.init is not None:
                    init = self.const_eval(d.init, scope)
                    if not isinstance(init, int):
                        raise self.err(
                            decl, f"scalar initialiser of {d.name!r} must "
                            "be a compile-time constant"
                        )
                    self.emit(f"sldi  s{s}, {init}")
                # globals without an initialiser keep the host-injected
                # value (registers/memory power up as zero otherwise)

    def _compile_assign(self, stmt: ast.Assign, scope) -> None:
        b = scope.lookup(stmt.target)
        if b is None:
            raise self.err(stmt, f"assignment to undeclared {stmt.target!r}")
        if b.kind == "pmem":
            mark = self.reg_top
            value = stmt.value
            if stmt.op != "=":
                value = ast.Binary(
                    stmt.op[:-1],
                    ast.Identifier(stmt.target, stmt.line),
                    stmt.value,
                    stmt.line,
                )
            with self.unmasked():
                r, _ = self.compile_expr(value, scope)
            self.emit(f"st    {b.value}, r{r}")  # the one masked store
            self.free_to(mark)
            return
        if b.kind == "sreg":
            self._compile_scalar_assign(stmt, scope, int(b.value))
            return
        raise self.err(stmt, f"cannot assign to {stmt.target!r}")

    def _compile_scalar_assign(self, stmt: ast.Assign, scope, s: int) -> None:
        value = stmt.value
        if stmt.op != "=":
            value = ast.Binary(
                stmt.op[:-1],
                ast.Identifier(stmt.target, stmt.line),
                stmt.value,
                stmt.line,
            )
        const = self.const_eval(value, scope)
        if isinstance(const, int):
            self.emit(f"sldi  s{s}, {const}")
            return
        # var +/- const (loop-counter algebra), possibly self-referencing
        if isinstance(value, ast.Binary) and value.op in ("+", "-"):
            var = self._scalar_var(value.left, scope)
            delta = self.const_eval(value.right, scope)
            if var is not None and isinstance(delta, int):
                if value.op == "-":
                    delta = -delta
                if var != s:
                    self.emit(f"smov  s{s}, s{var}")
                self.emit(f"saddi s{s}, {delta}")
                return
        other = self._scalar_var(value, scope)
        if other is not None:
            self.emit(f"smov  s{s}, s{other}")
            return
        raise self.err(
            stmt,
            "scalar assignment must be a constant, a scalar variable, or "
            "var +/- constant",
        )

    # -- entry --------------------------------------------------------------

    def compile(self, entry: str) -> tuple[str, dict, dict, int]:
        for decl in self.program.globals:
            self._compile_decl(decl, self.globals_scope, register_global=True)
        fn = self.functions.get(entry)
        if fn is None:
            raise CodegenError(f"no function {entry!r} to compile")
        if fn.params:
            raise CodegenError(
                f"entry point {entry!r} must take no parameters "
                "(pass data through globals)"
            )
        scope = _Scope(self.globals_scope)
        for stmt in fn.body.statements:
            if isinstance(stmt, ast.Return) and stmt.value is None:
                break
            self.compile_statement(stmt, scope)
        self.emit("halt")
        header = (
            f"; compiled from PPC for n={self.n}, h={self.h} "
            f"(entry {entry})\n"
        )
        return (
            header + "\n".join(self.lines) + "\n",
            self.layout,
            self.kinds,
            self.next_mem,
            frozenset(self.initialised_globals),
        )


def _contains_return(stmt) -> bool:
    if isinstance(stmt, ast.Return):
        return True
    children = []
    if isinstance(stmt, ast.Block):
        children = list(stmt.statements)
    for attr in ("then", "otherwise", "body"):
        child = getattr(stmt, attr, None)
        if child is not None:
            children.append(child)
    return any(_contains_return(c) for c in children)


def compile_to_asm(
    source_or_ast, n: int, word_bits: int, entry: str = "main"
) -> CompiledProgram:
    """Compile PPC source (or a parsed program) for an ``n x n``, ``h``-bit
    machine. Returns a :class:`CompiledProgram` ready to ``run``."""
    program = (
        source_or_ast
        if isinstance(source_or_ast, ast.Program)
        else analyze(parse(source_or_ast))
    )
    compiler = _Compiler(program, n, word_bits)
    asm, layout, kinds, mem_words, initialised = compiler.compile(entry)
    return CompiledProgram(
        asm=asm,
        layout=layout,
        kinds=kinds,
        n=n,
        word_bits=word_bits,
        mem_words=max(mem_words, 1),
        instructions=assemble(asm),
        initialised_globals=initialised,
    )


def compile_ppc_to_program(source: str, machine: PPAMachine, entry: str = "main") -> CompiledProgram:
    """Convenience: compile *source* for *machine*'s geometry."""
    return compile_to_asm(source, machine.n, machine.word_bits, entry)
