"""AST node classes for the PPC subset.

Plain frozen dataclasses; every node carries its source ``line`` for
diagnostics. Types are represented by :class:`TypeSpec` — the cross product
of base type (``int``/``logical``/``void``) and the ``parallel`` storage
class. ``enum {...}`` parameter declarations (K&R style, as in the paper's
``min()``) degrade to scalar ``int``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TypeSpec",
    "Program",
    "FunctionDef",
    "Param",
    "VarDecl",
    "Declarator",
    "Block",
    "ExprStatement",
    "Assign",
    "Break",
    "Continue",
    "If",
    "Where",
    "DoWhile",
    "While",
    "For",
    "Return",
    "IntLiteral",
    "Identifier",
    "Unary",
    "Binary",
    "Call",
]


@dataclass(frozen=True)
class TypeSpec:
    base: str  # "int" | "logical" | "void"
    parallel: bool = False

    def __str__(self) -> str:
        return ("parallel " if self.parallel else "") + self.base


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntLiteral:
    value: int
    line: int = 0


@dataclass(frozen=True)
class Identifier:
    name: str
    line: int = 0


@dataclass(frozen=True)
class Unary:
    op: str  # "!", "~", "-"
    operand: object
    line: int = 0


@dataclass(frozen=True)
class Binary:
    op: str
    left: object
    right: object
    line: int = 0


@dataclass(frozen=True)
class Call:
    name: str
    args: tuple
    line: int = 0


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Declarator:
    name: str
    init: object | None = None  # expression or None


@dataclass(frozen=True)
class VarDecl:
    type: TypeSpec
    declarators: tuple[Declarator, ...]
    line: int = 0


@dataclass(frozen=True)
class Block:
    statements: tuple
    line: int = 0


@dataclass(frozen=True)
class ExprStatement:
    expr: object
    line: int = 0


@dataclass(frozen=True)
class Assign:
    target: str
    value: object
    op: str = "="  # "=" or a compound operator like "+="
    line: int = 0


@dataclass(frozen=True)
class Break:
    line: int = 0


@dataclass(frozen=True)
class Continue:
    line: int = 0


@dataclass(frozen=True)
class If:
    condition: object
    then: object
    otherwise: object | None = None
    line: int = 0


@dataclass(frozen=True)
class Where:
    condition: object
    then: object
    otherwise: object | None = None  # the elsewhere arm
    line: int = 0


@dataclass(frozen=True)
class DoWhile:
    body: object
    condition: object
    line: int = 0


@dataclass(frozen=True)
class While:
    condition: object
    body: object
    line: int = 0


@dataclass(frozen=True)
class For:
    init: object | None  # Assign or None
    condition: object | None
    step: object | None  # Assign or None
    body: object
    line: int = 0


@dataclass(frozen=True)
class Return:
    value: object | None
    line: int = 0


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    name: str
    type: TypeSpec


@dataclass(frozen=True)
class FunctionDef:
    name: str
    return_type: TypeSpec
    params: tuple[Param, ...]
    body: Block
    line: int = 0


@dataclass(frozen=True)
class Program:
    globals: tuple[VarDecl, ...] = field(default_factory=tuple)
    functions: tuple[FunctionDef, ...] = field(default_factory=tuple)

    def function(self, name: str) -> FunctionDef:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)
