"""Recursive-descent parser for the PPC subset.

Grammar (EBNF, ``[]`` optional, ``{}`` repetition)::

    program     = { top_item } ;
    top_item    = type_spec IDENT ( function | var_tail ) ;
    type_spec   = [ "parallel" ] ( "int" | "logical" | "void" ) ;
    var_tail    = [ "=" expr ] { "," declarator } ";" ;
    declarator  = IDENT [ "=" expr ] ;

    function    = "(" [ ansi_params | knr_names ] ")" { knr_decl } block ;
    ansi_params = param { "," param } ;
    param       = ( type_spec | enum_spec ) IDENT ;
    knr_names   = IDENT { "," IDENT } ;
    knr_decl    = ( type_spec | enum_spec ) IDENT { "," IDENT } ";" ;
    enum_spec   = "enum" "{" IDENT { "," IDENT } "}" ;

    statement   = block | var_decl | where | if | do_while | while | for
                | return | simple ";" ;
    where       = "where" "(" expr ")" statement [ "elsewhere" statement ] ;
    simple      = IDENT "=" expr | expr ;

Expressions use C precedence: ``||`` < ``&&`` < ``|`` < ``^`` < ``&`` <
``== !=`` < ``< <= > >=`` < ``<< >>`` < ``+ -`` < ``* / %`` < unary.

Both ANSI and K&R function definitions are accepted — the paper's ``min()``
listing is K&R style.
"""

from __future__ import annotations

from repro.errors import PPCSyntaxError
from repro.ppc.lang import ast_nodes as ast
from repro.ppc.lang.lexer import tokenize
from repro.ppc.lang.tokens import Token

__all__ = ["parse"]

_TYPE_KEYWORDS = ("parallel", "int", "logical", "void", "enum")

_BINARY_LEVELS: list[tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def error(self, msg: str, tok: Token | None = None) -> PPCSyntaxError:
        tok = tok or self.peek()
        return PPCSyntaxError(msg, tok.line, tok.column)

    def expect_symbol(self, sym: str) -> Token:
        tok = self.peek()
        if not tok.is_symbol(sym):
            raise self.error(f"expected {sym!r}, found {tok.text!r}")
        return self.advance()

    def expect_keyword(self, kw: str) -> Token:
        tok = self.peek()
        if not tok.is_keyword(kw):
            raise self.error(f"expected {kw!r}, found {tok.text!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != "ident":
            raise self.error(f"expected identifier, found {tok.text!r}")
        return self.advance()

    # -- types -----------------------------------------------------------

    def at_type(self) -> bool:
        return self.peek().is_keyword(*_TYPE_KEYWORDS)

    def parse_type(self) -> ast.TypeSpec:
        parallel = False
        if self.peek().is_keyword("parallel"):
            self.advance()
            parallel = True
        tok = self.peek()
        if tok.is_keyword("enum"):
            self.advance()
            self.expect_symbol("{")
            self.expect_ident()
            while self.peek().is_symbol(","):
                self.advance()
                self.expect_ident()
            self.expect_symbol("}")
            return ast.TypeSpec("int", parallel)
        if tok.is_keyword("int", "logical", "void"):
            self.advance()
            if tok.text == "void" and parallel:
                raise self.error("'parallel void' is not a type", tok)
            return ast.TypeSpec(tok.text, parallel)
        raise self.error(f"expected a type, found {tok.text!r}", tok)

    # -- top level ------------------------------------------------------

    def parse_program(self) -> ast.Program:
        globals_: list[ast.VarDecl] = []
        functions: list[ast.FunctionDef] = []
        while self.peek().kind != "eof":
            line = self.peek().line
            type_ = self.parse_type()
            name = self.expect_ident()
            if self.peek().is_symbol("("):
                functions.append(self.parse_function(type_, name))
            else:
                globals_.append(self.parse_var_tail(type_, name, line))
        return ast.Program(tuple(globals_), tuple(functions))

    def parse_var_tail(
        self, type_: ast.TypeSpec, first: Token, line: int
    ) -> ast.VarDecl:
        if type_.base == "void":
            raise self.error("variables cannot be 'void'", first)
        declarators = [self.parse_declarator_tail(first)]
        while self.peek().is_symbol(","):
            self.advance()
            declarators.append(self.parse_declarator_tail(self.expect_ident()))
        self.expect_symbol(";")
        return ast.VarDecl(type_, tuple(declarators), line)

    def parse_declarator_tail(self, name_tok: Token) -> ast.Declarator:
        init = None
        if self.peek().is_symbol("="):
            self.advance()
            init = self.parse_expr()
        return ast.Declarator(name_tok.text, init)

    def parse_function(
        self, return_type: ast.TypeSpec, name: Token
    ) -> ast.FunctionDef:
        self.expect_symbol("(")
        params: list[ast.Param] = []
        if self.peek().is_symbol(")"):
            self.advance()
        elif self.at_type():
            # ANSI parameter list.
            while True:
                ptype = self.parse_type()
                pname = self.expect_ident()
                params.append(ast.Param(pname.text, ptype))
                if self.peek().is_symbol(","):
                    self.advance()
                    continue
                break
            self.expect_symbol(")")
        else:
            # K&R: names first, declarations between ')' and '{'.
            names = [self.expect_ident().text]
            while self.peek().is_symbol(","):
                self.advance()
                names.append(self.expect_ident().text)
            self.expect_symbol(")")
            declared: dict[str, ast.TypeSpec] = {}
            while self.at_type():
                dtype = self.parse_type()
                declared[self.expect_ident().text] = dtype
                while self.peek().is_symbol(","):
                    self.advance()
                    declared[self.expect_ident().text] = dtype
                self.expect_symbol(";")
            for pname in names:
                if pname not in declared:
                    raise self.error(
                        f"K&R parameter {pname!r} of {name.text!r} lacks a "
                        "declaration",
                        name,
                    )
            extra = set(declared) - set(names)
            if extra:
                raise self.error(
                    f"K&R declarations for non-parameters {sorted(extra)}",
                    name,
                )
            params = [ast.Param(p, declared[p]) for p in names]
        body = self.parse_block()
        return ast.FunctionDef(
            name.text, return_type, tuple(params), body, name.line
        )

    # -- statements -------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect_symbol("{")
        statements = []
        while not self.peek().is_symbol("}"):
            if self.peek().kind == "eof":
                raise self.error("unterminated block", start)
            statements.append(self.parse_statement())
        self.advance()
        return ast.Block(tuple(statements), start.line)

    def parse_statement(self):
        tok = self.peek()
        if tok.is_symbol("{"):
            return self.parse_block()
        if self.at_type():
            line = tok.line
            type_ = self.parse_type()
            first = self.expect_ident()
            return self.parse_var_tail(type_, first, line)
        if tok.is_keyword("where"):
            return self.parse_where()
        if tok.is_keyword("if"):
            return self.parse_if()
        if tok.is_keyword("do"):
            return self.parse_do()
        if tok.is_keyword("while"):
            return self.parse_while()
        if tok.is_keyword("for"):
            return self.parse_for()
        if tok.is_keyword("break"):
            self.advance()
            self.expect_symbol(";")
            return ast.Break(tok.line)
        if tok.is_keyword("continue"):
            self.advance()
            self.expect_symbol(";")
            return ast.Continue(tok.line)
        if tok.is_keyword("return"):
            self.advance()
            value = None
            if not self.peek().is_symbol(";"):
                value = self.parse_expr()
            self.expect_symbol(";")
            return ast.Return(value, tok.line)
        stmt = self.parse_simple()
        self.expect_symbol(";")
        return stmt

    _ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=",
                   "&=", "|=", "^=", "<<=", ">>=")

    def parse_simple(self):
        """Assignment (plain or compound) or bare expression (no ';')."""
        tok = self.peek()
        if tok.kind == "ident" and self.peek(1).is_symbol(*self._ASSIGN_OPS):
            self.advance()
            op = self.advance().text
            value = self.parse_expr()
            return ast.Assign(tok.text, value, op, tok.line)
        return ast.ExprStatement(self.parse_expr(), tok.line)

    def parse_where(self) -> ast.Where:
        tok = self.expect_keyword("where")
        self.expect_symbol("(")
        cond = self.parse_expr()
        self.expect_symbol(")")
        then = self.parse_statement()
        otherwise = None
        if self.peek().is_keyword("elsewhere"):
            self.advance()
            otherwise = self.parse_statement()
        return ast.Where(cond, then, otherwise, tok.line)

    def parse_if(self) -> ast.If:
        tok = self.expect_keyword("if")
        self.expect_symbol("(")
        cond = self.parse_expr()
        self.expect_symbol(")")
        then = self.parse_statement()
        otherwise = None
        if self.peek().is_keyword("else"):
            self.advance()
            otherwise = self.parse_statement()
        return ast.If(cond, then, otherwise, tok.line)

    def parse_do(self) -> ast.DoWhile:
        tok = self.expect_keyword("do")
        body = self.parse_statement()
        self.expect_keyword("while")
        self.expect_symbol("(")
        cond = self.parse_expr()
        self.expect_symbol(")")
        self.expect_symbol(";")
        return ast.DoWhile(body, cond, tok.line)

    def parse_while(self) -> ast.While:
        tok = self.expect_keyword("while")
        self.expect_symbol("(")
        cond = self.parse_expr()
        self.expect_symbol(")")
        body = self.parse_statement()
        return ast.While(cond, body, tok.line)

    def parse_for(self) -> ast.For:
        tok = self.expect_keyword("for")
        self.expect_symbol("(")
        init = None if self.peek().is_symbol(";") else self.parse_simple()
        self.expect_symbol(";")
        cond = None if self.peek().is_symbol(";") else self.parse_expr()
        self.expect_symbol(";")
        step = None if self.peek().is_symbol(")") else self.parse_simple()
        self.expect_symbol(")")
        body = self.parse_statement()
        return ast.For(init, cond, step, body, tok.line)

    # -- expressions ------------------------------------------------------

    def parse_expr(self, level: int = 0):
        if level == len(_BINARY_LEVELS):
            return self.parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self.parse_expr(level + 1)
        while self.peek().is_symbol(*ops):
            op = self.advance()
            right = self.parse_expr(level + 1)
            left = ast.Binary(op.text, left, right, op.line)
        return left

    def parse_unary(self):
        tok = self.peek()
        if tok.is_symbol("!", "~", "-"):
            self.advance()
            return ast.Unary(tok.text, self.parse_unary(), tok.line)
        return self.parse_primary()

    def parse_primary(self):
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return ast.IntLiteral(int(tok.text, 0), tok.line)
        if tok.kind == "ident":
            self.advance()
            if self.peek().is_symbol("("):
                self.advance()
                args = []
                if not self.peek().is_symbol(")"):
                    args.append(self.parse_expr())
                    while self.peek().is_symbol(","):
                        self.advance()
                        args.append(self.parse_expr())
                self.expect_symbol(")")
                return ast.Call(tok.text, tuple(args), tok.line)
            return ast.Identifier(tok.text, tok.line)
        if tok.is_symbol("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_symbol(")")
            return inner
        raise self.error(f"expected an expression, found {tok.text!r}", tok)


def parse(source: str) -> ast.Program:
    """Parse *source* into a :class:`~repro.ppc.lang.ast_nodes.Program`."""
    parser = _Parser(tokenize(source))
    program = parser.parse_program()
    return program
