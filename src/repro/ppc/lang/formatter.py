"""PPC pretty-printer: AST back to canonical source.

``format_program(parse(src))`` produces normalised PPC text that parses
back to an identical AST (round-trip property-tested). Used by the CLI's
``ppc --format`` mode and by diagnostics that want to quote code.

The printer is fully parenthesis-safe the simple way: every binary and
unary sub-expression is wrapped, so precedence never needs re-deriving.
Statements are indented four spaces; K&R definitions are normalised to
ANSI parameter lists (the parser treats them identically).
"""

from __future__ import annotations

from repro.errors import PPCError
from repro.ppc.lang import ast_nodes as ast

__all__ = ["format_program", "format_statement", "format_expression"]

_INDENT = "    "


def format_expression(expr) -> str:
    """Render one expression (always unambiguous via explicit parens)."""
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{_sub(expr.operand)}"
    if isinstance(expr, ast.Binary):
        return f"{_sub(expr.left)} {expr.op} {_sub(expr.right)}"
    if isinstance(expr, ast.Call):
        args = ", ".join(format_expression(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise PPCError(f"cannot format expression node {expr!r}")


def _sub(expr) -> str:
    """Sub-expression: parenthesised unless atomic."""
    text = format_expression(expr)
    if isinstance(expr, (ast.IntLiteral, ast.Identifier, ast.Call)):
        return text
    return f"({text})"


def _decl_text(decl: ast.VarDecl) -> str:
    parts = []
    for d in decl.declarators:
        if d.init is None:
            parts.append(d.name)
        else:
            parts.append(f"{d.name} = {format_expression(d.init)}")
    return f"{decl.type} {', '.join(parts)};"


def format_statement(stmt, depth: int = 0) -> list[str]:
    """Render one statement as indented source lines."""
    pad = _INDENT * depth

    def nested(body) -> list[str]:
        if isinstance(body, ast.Block):
            lines = [pad + "{"]
            for s in body.statements:
                lines.extend(format_statement(s, depth + 1))
            lines.append(pad + "}")
            return lines
        return format_statement(body, depth + 1)

    if isinstance(stmt, ast.Block):
        return nested(stmt)
    if isinstance(stmt, ast.VarDecl):
        return [pad + _decl_text(stmt)]
    if isinstance(stmt, ast.Assign):
        return [pad + f"{stmt.target} {stmt.op} {format_expression(stmt.value)};"]
    if isinstance(stmt, ast.ExprStatement):
        return [pad + f"{format_expression(stmt.expr)};"]
    if isinstance(stmt, ast.Break):
        return [pad + "break;"]
    if isinstance(stmt, ast.Continue):
        return [pad + "continue;"]
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [pad + "return;"]
        return [pad + f"return {format_expression(stmt.value)};"]
    if isinstance(stmt, ast.Where):
        lines = [pad + f"where ({format_expression(stmt.condition)})"]
        lines.extend(nested(stmt.then))
        if stmt.otherwise is not None:
            lines.append(pad + "elsewhere")
            lines.extend(nested(stmt.otherwise))
        return lines
    if isinstance(stmt, ast.If):
        lines = [pad + f"if ({format_expression(stmt.condition)})"]
        lines.extend(nested(stmt.then))
        if stmt.otherwise is not None:
            lines.append(pad + "else")
            lines.extend(nested(stmt.otherwise))
        return lines
    if isinstance(stmt, ast.While):
        lines = [pad + f"while ({format_expression(stmt.condition)})"]
        lines.extend(nested(stmt.body))
        return lines
    if isinstance(stmt, ast.DoWhile):
        lines = [pad + "do"]
        lines.extend(nested(stmt.body))
        lines.append(pad + f"while ({format_expression(stmt.condition)});")
        return lines
    if isinstance(stmt, ast.For):
        init = "" if stmt.init is None else _simple_text(stmt.init)
        cond = "" if stmt.condition is None else format_expression(stmt.condition)
        step = "" if stmt.step is None else _simple_text(stmt.step)
        lines = [pad + f"for ({init}; {cond}; {step})"]
        lines.extend(nested(stmt.body))
        return lines
    raise PPCError(f"cannot format statement node {stmt!r}")


def _simple_text(stmt) -> str:
    """A for-clause (assignment or expression), without the semicolon."""
    if isinstance(stmt, ast.Assign):
        return f"{stmt.target} {stmt.op} {format_expression(stmt.value)}"
    if isinstance(stmt, ast.ExprStatement):
        return format_expression(stmt.expr)
    raise PPCError(f"invalid for-clause node {stmt!r}")


def format_program(program: ast.Program) -> str:
    """Render a whole program in canonical (ANSI-parameter) form."""
    chunks: list[str] = []
    for decl in program.globals:
        chunks.append(_decl_text(decl))
    if program.globals:
        chunks.append("")
    for fn in program.functions:
        params = ", ".join(f"{p.type} {p.name}" for p in fn.params)
        chunks.append(f"{fn.return_type} {fn.name}({params})")
        chunks.append("{")
        for s in fn.body.statements:
            chunks.extend(format_statement(s, 1))
        chunks.append("}")
        chunks.append("")
    return "\n".join(chunks).rstrip() + "\n"
