"""Static semantic checks for PPC programs.

Runs after parsing and before interpretation. Catches, with source line
numbers, the mistakes a PPC compiler would reject:

* duplicate/undeclared identifiers, duplicate function definitions;
* calls to unknown functions, wrong argument counts;
* assignment of a parallel value to a scalar variable;
* ``where`` conditions that are not parallel, ``if``/``while``/``do`` and
  ``for`` conditions that are not scalar (the controller cannot branch on a
  per-PE value — use ``any()``);
* ``return`` with/without value disagreeing with the function type.

The pass infers only the scalar/parallel *kind* of each expression (the
base int/logical distinction is coercible at runtime, as in the original
language where logicals are word-sized).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PPCTypeError
from repro.ppc.lang import ast_nodes as ast
from repro.ppc.lang.builtins import BUILTINS, CONSTANTS

__all__ = ["analyze"]


@dataclass(frozen=True)
class _Sym:
    kind: str  # "scalar" | "parallel"
    base: str  # "int" | "logical"


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.names: dict[str, _Sym] = {}

    def declare(self, name: str, sym: _Sym, line: int) -> None:
        if name in self.names:
            raise PPCTypeError(
                f"line {line}: redeclaration of {name!r} in the same scope"
            )
        self.names[name] = sym

    def lookup(self, name: str) -> _Sym | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _Analyzer:
    def __init__(self, program: ast.Program):
        self.program = program
        self.functions = {}
        for fn in program.functions:
            if fn.name in self.functions:
                raise PPCTypeError(
                    f"line {fn.line}: duplicate function {fn.name!r}"
                )
            self.functions[fn.name] = fn
        self.globals = _Scope()
        for name, (kind, base) in CONSTANTS.items():
            self.globals.names[name] = _Sym(kind, base)
        for decl in program.globals:
            self._declare_vars(decl, self.globals)

    # -- declarations ----------------------------------------------------

    def _declare_vars(self, decl: ast.VarDecl, scope: _Scope) -> None:
        kind = "parallel" if decl.type.parallel else "scalar"
        for d in decl.declarators:
            if d.init is not None:
                init_kind = self._expr_kind(d.init, scope, decl.line)
                if kind == "scalar" and init_kind == "parallel":
                    raise PPCTypeError(
                        f"line {decl.line}: cannot initialise scalar "
                        f"{d.name!r} from a parallel expression"
                    )
            scope.declare(d.name, _Sym(kind, decl.type.base), decl.line)

    # -- entry ------------------------------------------------------------

    def run(self) -> None:
        for fn in self.program.functions:
            self._check_function(fn)

    def _check_function(self, fn: ast.FunctionDef) -> None:
        scope = _Scope(self.globals)
        for p in fn.params:
            kind = "parallel" if p.type.parallel else "scalar"
            scope.declare(p.name, _Sym(kind, p.type.base), fn.line)
        self._loop_depth = 0
        self._check_block(fn.body, scope, fn)

    # -- statements ---------------------------------------------------------

    def _check_block(self, block: ast.Block, scope: _Scope, fn) -> None:
        inner = _Scope(scope)
        for stmt in block.statements:
            self._check_statement(stmt, inner, fn)

    def _check_statement(self, stmt, scope: _Scope, fn) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope, fn)
        elif isinstance(stmt, ast.VarDecl):
            self._declare_vars(stmt, scope)
        elif isinstance(stmt, ast.Assign):
            sym = scope.lookup(stmt.target)
            if sym is None:
                raise PPCTypeError(
                    f"line {stmt.line}: assignment to undeclared "
                    f"{stmt.target!r}"
                )
            if stmt.target in CONSTANTS:
                raise PPCTypeError(
                    f"line {stmt.line}: {stmt.target!r} is a predefined "
                    "constant"
                )
            value_kind = self._expr_kind(stmt.value, scope, stmt.line)
            if sym.kind == "scalar" and value_kind == "parallel":
                raise PPCTypeError(
                    f"line {stmt.line}: cannot assign a parallel value to "
                    f"scalar {stmt.target!r} (reduce it first, e.g. any())"
                )
        elif isinstance(stmt, ast.ExprStatement):
            self._expr_kind(stmt.expr, scope, stmt.line)
        elif isinstance(stmt, ast.Where):
            cond = self._expr_kind(stmt.condition, scope, stmt.line)
            if cond != "parallel":
                raise PPCTypeError(
                    f"line {stmt.line}: 'where' needs a parallel condition"
                )
            self._check_statement(stmt.then, _Scope(scope), fn)
            if stmt.otherwise is not None:
                self._check_statement(stmt.otherwise, _Scope(scope), fn)
        elif isinstance(stmt, ast.If):
            self._scalar_cond(stmt.condition, scope, stmt.line, "if")
            self._check_statement(stmt.then, _Scope(scope), fn)
            if stmt.otherwise is not None:
                self._check_statement(stmt.otherwise, _Scope(scope), fn)
        elif isinstance(stmt, ast.DoWhile):
            self._loop_depth += 1
            self._check_statement(stmt.body, _Scope(scope), fn)
            self._loop_depth -= 1
            self._scalar_cond(stmt.condition, scope, stmt.line, "do/while")
        elif isinstance(stmt, ast.While):
            self._scalar_cond(stmt.condition, scope, stmt.line, "while")
            self._loop_depth += 1
            self._check_statement(stmt.body, _Scope(scope), fn)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_statement(stmt.init, inner, fn)
            if stmt.condition is not None:
                self._scalar_cond(stmt.condition, inner, stmt.line, "for")
            if stmt.step is not None:
                self._check_statement(stmt.step, inner, fn)
            self._loop_depth += 1
            self._check_statement(stmt.body, inner, fn)
            self._loop_depth -= 1
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                word = "break" if isinstance(stmt, ast.Break) else "continue"
                raise PPCTypeError(
                    f"line {stmt.line}: {word!r} outside any loop"
                )
        elif isinstance(stmt, ast.Return):
            if fn.return_type.base == "void":
                if stmt.value is not None:
                    raise PPCTypeError(
                        f"line {stmt.line}: void function {fn.name!r} "
                        "returns a value"
                    )
            else:
                if stmt.value is None:
                    raise PPCTypeError(
                        f"line {stmt.line}: non-void function {fn.name!r} "
                        "returns nothing"
                    )
                kind = self._expr_kind(stmt.value, scope, stmt.line)
                if not fn.return_type.parallel and kind == "parallel":
                    raise PPCTypeError(
                        f"line {stmt.line}: {fn.name!r} declared scalar but "
                        "returns a parallel value"
                    )
        else:  # pragma: no cover - parser produces no other nodes
            raise PPCTypeError(f"unknown statement node {stmt!r}")

    def _scalar_cond(self, expr, scope, line, what) -> None:
        if self._expr_kind(expr, scope, line) == "parallel":
            raise PPCTypeError(
                f"line {line}: the controller cannot branch on a parallel "
                f"{what} condition; reduce it with any()"
            )

    # -- expressions ----------------------------------------------------

    def _expr_kind(self, expr, scope: _Scope, line: int) -> str:
        if isinstance(expr, ast.IntLiteral):
            return "scalar"
        if isinstance(expr, ast.Identifier):
            sym = scope.lookup(expr.name)
            if sym is None:
                raise PPCTypeError(
                    f"line {expr.line or line}: undeclared identifier "
                    f"{expr.name!r}"
                )
            return sym.kind
        if isinstance(expr, ast.Unary):
            return self._expr_kind(expr.operand, scope, expr.line or line)
        if isinstance(expr, ast.Binary):
            left = self._expr_kind(expr.left, scope, expr.line or line)
            right = self._expr_kind(expr.right, scope, expr.line or line)
            return "parallel" if "parallel" in (left, right) else "scalar"
        if isinstance(expr, ast.Call):
            return self._call_kind(expr, scope)
        raise PPCTypeError(f"line {line}: unknown expression node {expr!r}")

    def _call_kind(self, call: ast.Call, scope: _Scope) -> str:
        arg_kinds = [
            self._expr_kind(a, scope, call.line) for a in call.args
        ]
        fn = self.functions.get(call.name)
        if fn is not None:
            if len(call.args) != len(fn.params):
                raise PPCTypeError(
                    f"line {call.line}: {call.name}() takes "
                    f"{len(fn.params)} argument(s), got {len(call.args)}"
                )
            for p, kind in zip(fn.params, arg_kinds):
                if not p.type.parallel and kind == "parallel":
                    raise PPCTypeError(
                        f"line {call.line}: parameter {p.name!r} of "
                        f"{call.name}() is scalar but a parallel value was "
                        "passed"
                    )
            return "parallel" if fn.return_type.parallel else "scalar"
        spec = BUILTINS.get(call.name)
        if spec is None:
            raise PPCTypeError(
                f"line {call.line}: call to unknown function {call.name!r}"
            )
        if len(call.args) != spec.arity:
            raise PPCTypeError(
                f"line {call.line}: {call.name}() takes {spec.arity} "
                f"argument(s), got {len(call.args)}"
            )
        if spec.returns == "same-as-arg0":
            return arg_kinds[0] if arg_kinds else "scalar"
        return spec.returns[0]


def analyze(program: ast.Program) -> ast.Program:
    """Validate *program*; returns it unchanged on success.

    Raises :class:`~repro.errors.PPCTypeError` describing the first
    violation found.
    """
    _Analyzer(program).run()
    return program
