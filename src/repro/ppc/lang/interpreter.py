"""Tree-walking interpreter for the PPC subset.

Value model
-----------
* **scalar** values live in the controller: Python ``int``/``bool`` plus
  :class:`~repro.ppa.directions.Direction` constants;
* **parallel** values are numpy grids on the machine: ``int64`` for
  ``parallel int``, ``bool`` for ``parallel logical``.

Semantics mirrored from the machine model:

* assignments to ``parallel`` variables go through
  :meth:`PPAMachine.store`, so they honour the active ``where`` mask;
  declarations initialise unmasked (a fresh variable has no "old" value a
  mask could preserve);
* ``+`` between parallel ints is the machine's *saturating* word addition
  (``MAXINT`` absorbs); all other arithmetic is plain two's-complement on
  int64 controller words;
* scalar (controller) variables ignore ``where`` masks entirely;
* parameters pass by value — a ``parallel`` argument is copied, so the
  paper's ``min()`` mutating its ``src`` parameter stays local;
* every parallel operator charges one parallel ALU instruction on the
  machine counters, so interpreted programs and the native DSL produce
  comparable cycle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PPCRuntimeError
from repro.ppa.machine import PPAMachine
from repro.ppc.lang import ast_nodes as ast
from repro.ppc.lang.analyzer import analyze
from repro.ppc.lang.builtins import BUILTINS, constant_values
from repro.ppc.lang.parser import parse

__all__ = ["compile_ppc", "PPCProgram", "ExecutionResult"]

_MAX_CALL_DEPTH = 64


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


@dataclass
class _Cell:
    """One variable: kind + storage."""

    parallel: bool
    base: str  # "int" | "logical"
    value: object  # ndarray (parallel) or python scalar


class _Env:
    """Lexically scoped environment chain."""

    def __init__(self, parent: "_Env | None" = None):
        self.parent = parent
        self.cells: dict[str, _Cell] = {}

    def declare(self, name: str, cell: _Cell) -> None:
        self.cells[name] = cell

    def lookup(self, name: str) -> _Cell:
        env: _Env | None = self
        while env is not None:
            if name in env.cells:
                return env.cells[name]
            env = env.parent
        raise PPCRuntimeError(f"undeclared identifier {name!r}")


class _Lit:
    """Wrapper letting an already-evaluated value flow through _binary."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of running one PPC entry point."""

    value: object
    globals: dict[str, object] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)


#: memo of verifier reports keyed on (source, n, word_bits) — the static
#: passes are pure functions of the text and analysis geometry, and
#: callers routinely re-compile the same bundled listing.
_VERIFY_CACHE: dict[tuple[str, int, int], object] = {}
_VERIFY_CACHE_SIZE = 32


def compile_ppc(
    source: str,
    *,
    verify: str = "off",
    verify_n: int = 8,
    verify_word_bits: int = 16,
) -> "PPCProgram":
    """Parse + analyze *source* into a reusable :class:`PPCProgram`.

    ``verify`` selects the static-analysis policy (docs/static-analysis.md):

    * ``"off"`` (default) — parse and type-check only;
    * ``"warn"`` — run the :mod:`repro.verify` passes and attach the
      diagnostics as :attr:`PPCProgram.verify_report`, never raising;
    * ``"error"`` — additionally raise
      :class:`~repro.errors.PPCVerifyError` when any error-severity
      diagnostic is found (the report rides on the exception).

    ``verify_n``/``verify_word_bits`` set the sample grid geometry the
    abstract interpreter analyses concrete switch planes on. Reports are
    memoized per (source, n, h) — verification of a cached listing is
    free on re-compile.
    """
    if verify not in ("off", "warn", "error"):
        raise ValueError(
            f'verify must be "off", "warn" or "error", got {verify!r}'
        )
    program = PPCProgram(analyze(parse(source)))
    if verify == "off":
        return program
    from repro.errors import PPCVerifyError
    from repro.verify.ppc_checks import verify_ppc

    key = (source, verify_n, verify_word_bits)
    report = _VERIFY_CACHE.get(key)
    if report is None:
        report = verify_ppc(
            program.ast, n=verify_n, word_bits=verify_word_bits
        )
        if len(_VERIFY_CACHE) >= _VERIFY_CACHE_SIZE:
            _VERIFY_CACHE.pop(next(iter(_VERIFY_CACHE)))
        _VERIFY_CACHE[key] = report
    program.verify_report = report
    if verify == "error" and not report.ok:
        raise PPCVerifyError(
            f"static verification failed with {len(report.errors)} "
            f"error(s):\n{report.render()}",
            report=report,
        )
    return program


class PPCProgram:
    """A checked PPC program, runnable on any machine of any size.

    ``verify_report`` carries the :class:`repro.verify.Report` when the
    program was compiled with ``verify="warn"``/``"error"``; ``None``
    otherwise.
    """

    def __init__(self, program: ast.Program):
        self.ast = program
        self.functions = {f.name: f for f in program.functions}
        self.verify_report = None

    def run(
        self,
        machine: PPAMachine,
        entry: str = "main",
        args: tuple = (),
        globals: dict[str, object] | None = None,
    ) -> ExecutionResult:
        """Execute function *entry* on *machine*.

        Parameters
        ----------
        machine
            Target machine; also supplies ``N``, ``h``, ``ROW``, ``COL``...
        entry
            Name of the function to call.
        args
            Entry-point arguments (scalars or grids).
        globals
            Initial values for *declared* program globals, e.g.
            ``{"W": weight_matrix, "d": 3}``. Unknown names raise.

        Returns
        -------
        ExecutionResult
            The entry's return value, a snapshot of every global after the
            run, and the machine-counter deltas.
        """
        if entry not in self.functions:
            raise PPCRuntimeError(f"no function {entry!r} in program")
        before = machine.counters.snapshot()
        interp = _Interpreter(self, machine)
        if globals:
            for name, value in globals.items():
                interp.set_global(name, value)
        value = interp.call(entry, list(args))
        return ExecutionResult(
            value=value,
            globals=interp.global_snapshot(),
            counters=machine.counters.diff(before),
        )


class _Interpreter:
    def __init__(self, program: PPCProgram, machine: PPAMachine):
        self.program = program
        self.machine = machine
        self.constants = constant_values(machine)
        self.globals = _Env()
        self.depth = 0
        for decl in program.ast.globals:
            self._exec_decl(decl, self.globals)

    # -- global access ------------------------------------------------------

    def _global_cell(self, name: str) -> _Cell:
        if name not in self.globals.cells:
            raise PPCRuntimeError(f"program has no global {name!r}")
        return self.globals.cells[name]

    def set_global(self, name: str, value) -> None:
        cell = self._global_cell(name)
        if cell.parallel:
            cell.value = self._to_grid(value, cell.base)
        else:
            cell.value = self._to_scalar(value, name)

    def global_snapshot(self) -> dict[str, object]:
        out: dict[str, object] = {}
        for name, cell in self.globals.cells.items():
            v = cell.value
            out[name] = v.copy() if isinstance(v, np.ndarray) else v
        return out

    # -- coercion helpers ----------------------------------------------------

    def _to_grid(self, value, base: str) -> np.ndarray:
        dtype = bool if base == "logical" else np.int64
        if isinstance(value, np.ndarray):
            if value.shape != self.machine.shape:
                raise PPCRuntimeError(
                    f"grid of shape {value.shape} does not fit machine "
                    f"{self.machine.shape}"
                )
            return value.astype(dtype)
        if isinstance(value, (bool, np.bool_, int, np.integer)):
            return np.full(self.machine.shape, value, dtype=dtype)
        raise PPCRuntimeError(f"cannot place {value!r} in a parallel variable")

    @staticmethod
    def _to_scalar(value, name: str):
        if isinstance(value, np.ndarray):
            raise PPCRuntimeError(
                f"cannot store a parallel value in scalar {name!r}"
            )
        return value

    # -- declarations -------------------------------------------------------

    def _exec_decl(self, decl: ast.VarDecl, env: _Env) -> None:
        for d in decl.declarators:
            init = 0 if d.init is None else self._eval(d.init, env)
            if decl.type.parallel:
                cell = _Cell(True, decl.type.base, self._to_grid(init, decl.type.base))
            else:
                if isinstance(init, np.ndarray):
                    raise PPCRuntimeError(
                        f"scalar {d.name!r} initialised with a parallel value"
                    )
                cell = _Cell(False, decl.type.base, init)
            env.declare(d.name, cell)

    # -- calls ------------------------------------------------------------

    def call(self, name: str, args: list):
        fn = self.program.functions.get(name)
        if fn is None:
            spec = BUILTINS.get(name)
            if spec is None:
                raise PPCRuntimeError(f"call to unknown function {name!r}")
            if len(args) != spec.arity:
                raise PPCRuntimeError(
                    f"{name}() takes {spec.arity} argument(s), got {len(args)}"
                )
            return spec.apply(self.machine, args)
        if len(args) != len(fn.params):
            raise PPCRuntimeError(
                f"{name}() takes {len(fn.params)} argument(s), got {len(args)}"
            )
        self.depth += 1
        if self.depth > _MAX_CALL_DEPTH:
            raise PPCRuntimeError(
                f"call depth exceeded {_MAX_CALL_DEPTH} (runaway recursion?)"
            )
        try:
            env = _Env(self.globals)
            for p, a in zip(fn.params, args):
                if p.type.parallel:
                    cell = _Cell(True, p.type.base, self._to_grid(a, p.type.base))
                else:
                    cell = _Cell(False, p.type.base, self._to_scalar(a, p.name))
                env.declare(p.name, cell)
            try:
                self._exec(fn.body, env)
            except _ReturnSignal as ret:
                return ret.value
            return None
        finally:
            self.depth -= 1

    # -- statements ---------------------------------------------------------

    def _exec(self, stmt, env: _Env) -> None:
        if isinstance(stmt, ast.Block):
            inner = _Env(env)
            for s in stmt.statements:
                self._exec(s, inner)
        elif isinstance(stmt, ast.VarDecl):
            self._exec_decl(stmt, env)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt, env)
        elif isinstance(stmt, ast.ExprStatement):
            self._eval(stmt.expr, env)
        elif isinstance(stmt, ast.Where):
            cond = self._parallel_bool(self._eval(stmt.condition, env), stmt.line)
            with self.machine.where(cond):
                self._exec(stmt.then, _Env(env))
            if stmt.otherwise is not None:
                with self.machine.elsewhere(cond):
                    self._exec(stmt.otherwise, _Env(env))
        elif isinstance(stmt, ast.If):
            if self._scalar_bool(self._eval(stmt.condition, env), stmt.line):
                self._exec(stmt.then, _Env(env))
            elif stmt.otherwise is not None:
                self._exec(stmt.otherwise, _Env(env))
        elif isinstance(stmt, ast.DoWhile):
            while True:
                try:
                    self._exec(stmt.body, _Env(env))
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if not self._scalar_bool(self._eval(stmt.condition, env), stmt.line):
                    break
        elif isinstance(stmt, ast.While):
            while self._scalar_bool(self._eval(stmt.condition, env), stmt.line):
                try:
                    self._exec(stmt.body, _Env(env))
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, ast.For):
            inner = _Env(env)
            if stmt.init is not None:
                self._exec(stmt.init, inner)
            while (
                stmt.condition is None
                or self._scalar_bool(self._eval(stmt.condition, inner), stmt.line)
            ):
                try:
                    self._exec(stmt.body, _Env(inner))
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self._exec(stmt.step, inner)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.Return):
            raise _ReturnSignal(
                None if stmt.value is None else self._eval(stmt.value, env)
            )
        else:  # pragma: no cover - parser produces no other nodes
            raise PPCRuntimeError(f"unknown statement node {stmt!r}")

    def _assign(self, stmt: ast.Assign, env: _Env) -> None:
        cell = env.lookup(stmt.target)
        value = self._eval(stmt.value, env)
        if stmt.op != "=":
            # Compound assignment: target OP= value desugars to the binary
            # operator applied to the current contents (parallel + keeps
            # its saturating word semantics).
            current = cell.value
            value = self._binary(
                ast.Binary(stmt.op[:-1], _Lit(current), _Lit(value), stmt.line),
                env,
            )
        if cell.parallel:
            grid = self._to_grid(value, cell.base)
            self.machine.store(cell.value, grid)
        else:
            cell.value = self._to_scalar(value, stmt.target)

    # -- expressions ------------------------------------------------------

    def _eval(self, expr, env: _Env):
        if isinstance(expr, _Lit):
            return expr.value
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.Identifier):
            if expr.name in self.constants:
                return self.constants[expr.name]
            cell = env.lookup(expr.name)
            return cell.value
        if isinstance(expr, ast.Unary):
            return self._unary(expr, env)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, env)
        if isinstance(expr, ast.Call):
            args = [self._eval(a, env) for a in expr.args]
            return self.call(expr.name, args)
        raise PPCRuntimeError(f"unknown expression node {expr!r}")

    def _unary(self, expr: ast.Unary, env: _Env):
        v = self._eval(expr.operand, env)
        par = isinstance(v, np.ndarray)
        if par:
            self.machine.count_alu()
        if expr.op == "!":
            if par:
                return ~v.astype(bool)
            return not self._scalar_bool(v, expr.line)
        if expr.op == "~":
            if par:
                return ~v.astype(np.int64) & self.machine.maxint
            return ~int(v) & self.machine.maxint
        if expr.op == "-":
            if par:
                return -v.astype(np.int64)
            return -int(v)
        raise PPCRuntimeError(f"unknown unary operator {expr.op!r}")

    _CMP = {
        "==": np.equal,
        "!=": np.not_equal,
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
    }
    _ARITH = {
        ">>": np.right_shift,
        "&": np.bitwise_and,
        "|": np.bitwise_or,
        "^": np.bitwise_xor,
    }

    def _binary(self, expr: ast.Binary, env: _Env):
        op = expr.op
        left = self._eval(expr.left, env)
        # Scalar short-circuit for controller logic.
        if op in ("&&", "||") and not isinstance(left, np.ndarray):
            lb = self._scalar_bool(left, expr.line)
            if op == "&&" and not lb:
                return False
            if op == "||" and lb:
                return True
            right = self._eval(expr.right, env)
            if isinstance(right, np.ndarray):
                # scalar && parallel promotes to parallel
                return right.astype(bool)
            return self._scalar_bool(right, expr.line)
        right = self._eval(expr.right, env)
        par = isinstance(left, np.ndarray) or isinstance(right, np.ndarray)

        if op in ("&&", "||"):
            l = self._as_bool_operand(left)
            r = self._as_bool_operand(right)
            self.machine.count_alu()
            return (l & r) if op == "&&" else (l | r)

        if op in self._CMP:
            l, r = self._as_int_operand(left), self._as_int_operand(right)
            if par:
                self.machine.count_alu()
                return self._CMP[op](l, r)
            return bool(self._CMP[op](l, r))

        if op == "+":
            l, r = self._as_int_operand(left), self._as_int_operand(right)
            if par:
                return self.machine.sat_add(l, r)  # word semantics
            return int(l) + int(r)

        if op == "-":
            l, r = self._as_int_operand(left), self._as_int_operand(right)
            if par:
                # word semantics: unsigned subtraction clamps at 0
                self.machine.count_alu()
                return np.maximum(
                    np.asarray(l, dtype=np.int64) - np.asarray(r, dtype=np.int64),
                    0,
                )
            return int(l) - int(r)

        if op == "*":
            l, r = self._as_int_operand(left), self._as_int_operand(right)
            if par:
                # word semantics: multiplication saturates at MAXINT
                self.machine.count_alu()
                return np.minimum(
                    np.asarray(l, dtype=np.int64) * np.asarray(r, dtype=np.int64),
                    self.machine.maxint,
                )
            return int(l) * int(r)

        if op == "<<":
            l, r = self._as_int_operand(left), self._as_int_operand(right)
            if par:
                # word semantics: shifted-out high bits fall off the word
                self.machine.count_alu()
                return (
                    np.asarray(l, dtype=np.int64)
                    << np.asarray(r, dtype=np.int64)
                ) & self.machine.maxint
            return int(l) << int(r)

        if op in ("/", "%"):
            l, r = self._as_int_operand(left), self._as_int_operand(right)
            if par:
                rr = np.asarray(r)
                if (rr == 0).any():
                    raise PPCRuntimeError(f"line {expr.line}: division by zero")
                self.machine.count_alu()
                fn = np.floor_divide if op == "/" else np.mod
                return fn(l, rr).astype(np.int64)
            if int(r) == 0:
                raise PPCRuntimeError(f"line {expr.line}: division by zero")
            return int(l) // int(r) if op == "/" else int(l) % int(r)

        if op in self._ARITH:
            l, r = self._as_int_operand(left), self._as_int_operand(right)
            if par:
                self.machine.count_alu()
                return self._ARITH[op](
                    np.asarray(l, dtype=np.int64), np.asarray(r, dtype=np.int64)
                )
            return int(self._ARITH[op](np.int64(l), np.int64(r)))

        raise PPCRuntimeError(f"unknown binary operator {op!r}")

    # -- operand coercions ----------------------------------------------------

    @staticmethod
    def _as_bool_operand(v):
        if isinstance(v, np.ndarray):
            return v.astype(bool)
        return bool(v)

    @staticmethod
    def _as_int_operand(v):
        if isinstance(v, np.ndarray):
            return v.astype(np.int64) if v.dtype == np.bool_ else v
        if isinstance(v, bool):
            return int(v)
        return v

    def _parallel_bool(self, v, line: int) -> np.ndarray:
        if not isinstance(v, np.ndarray):
            raise PPCRuntimeError(
                f"line {line}: 'where' needs a parallel condition"
            )
        return v.astype(bool)

    @staticmethod
    def _scalar_bool(v, line: int) -> bool:
        if isinstance(v, np.ndarray):
            raise PPCRuntimeError(
                f"line {line}: controller condition must be scalar "
                "(use any())"
            )
        return bool(v)
