'''The paper's PPC sources, embedded as runnable programs.

Two deviations from the printed listings, both documented in DESIGN.md:

* **Init transposition** — the listing's ``SOW = W`` under
  ``where (ROW == d)`` loads the weights *from* ``d``; the DP needs the
  1-edge costs *to* ``d`` (column ``d``), so the initialisation transposes
  it onto row ``d`` with two broadcasts. (The printed statement is correct
  only for symmetric ``W``.)
* **Loop condition** — statement 20 is prose ("at least one SOW in row d
  has changed"); it is expressed with the controller reduction
  ``any(CHANGED && (ROW == d))``.

``MIN_CODE`` is the ``min()`` routine exactly as printed (K&R parameter
style and all), with the obvious typo fix ``j 0`` → ``j >= 0`` in the for
header. ``SELECTED_MIN_CODE`` is the routine the paper describes but does
not print ("the code for the selected_min routine is similar"): identical
except the elimination starts from the ``selected`` subset.
'''

from __future__ import annotations

__all__ = [
    "MIN_CODE",
    "SELECTED_MIN_CODE",
    "MCP_CODE",
    "MCP_WITH_LIBRARY_MIN",
    "DISTANCE_TRANSFORM_CODE",
]


MIN_CODE = """
parallel int min(src, orientation, L)
    parallel int src;
    enum {NORTH, EAST, SOUTH, WEST} orientation;
    parallel logical L;
{
    int j;
    parallel logical enable = 1;
    for (j = h - 1; j >= 0; j = j - 1)
        where (broadcast(or(!bit(src, j) && enable, orientation, L),
                         orientation, L) && bit(src, j))
            enable = 0;
    where (L)
        src = broadcast(src, opposite(orientation), enable);
    return broadcast(src, orientation, L);
}
"""


SELECTED_MIN_CODE = """
parallel int selected_min(src, orientation, L, selected)
    parallel int src;
    enum {NORTH, EAST, SOUTH, WEST} orientation;
    parallel logical L;
    parallel logical selected;
{
    int j;
    parallel logical enable = selected;
    for (j = h - 1; j >= 0; j = j - 1)
        where (broadcast(or(!bit(src, j) && enable, orientation, L),
                         orientation, L) && bit(src, j))
            enable = 0;
    where (L)
        src = broadcast(src, opposite(orientation), enable);
    return broadcast(src, orientation, L);
}
"""


_MCP_BODY = """
parallel int W;
parallel int SOW;
parallel int PTN;
parallel int MIN_SOW;
parallel logical CHANGED;
int d;

void minimum_cost_path()
{
    parallel int OLD_SOW;

    /* Statements 4-7 (init transposition: see module docstring). */
    where (ROW == d) {
        SOW = broadcast(broadcast(W, EAST, COL == d), SOUTH, ROW == COL);
        PTN = d;
    }
    MIN_SOW = 0;
    do {
        /* Statements 9-13. */
        where (ROW != d) {
            SOW = broadcast(SOW, SOUTH, ROW == d) + W;
            MIN_SOW = min(SOW, WEST, COL == (N - 1));
            PTN = selected_min(COL, WEST, COL == (N - 1), MIN_SOW == SOW);
        }
        /* Statements 14-19. */
        where (ROW == d) {
            OLD_SOW = SOW;
            SOW = broadcast(MIN_SOW, SOUTH, ROW == COL);
            CHANGED = SOW != OLD_SOW;
            where (SOW != OLD_SOW)
                PTN = broadcast(PTN, SOUTH, ROW == COL);
        }
        /* Statement 20. */
    } while (any(CHANGED && (ROW == d)));
}
"""

#: MCP with min/selected_min resolved from the paper's own PPC sources.
MCP_CODE = MIN_CODE + SELECTED_MIN_CODE + _MCP_BODY

#: MCP with min/selected_min resolved to the library's native builtins —
#: used to check the interpreted routines against the native ones.
MCP_WITH_LIBRARY_MIN = _MCP_BODY
'''Same program but without the PPC ``min``/``selected_min`` definitions,
so the calls fall through to the builtin (native) reductions.'''


DISTANCE_TRANSFORM_CODE = """
parallel logical IMG;
parallel int DIST;
parallel logical CHG;

void distance_transform()
{
    where (IMG)
        DIST = 0;
    elsewhere
        DIST = MAXINT;
    do {
        parallel int C;
        CHG = IMG && !IMG;                      /* all false */
        C = shift(DIST, SOUTH) + 1;             /* from the north */
        where ((ROW != 0) && (C < DIST)) {
            DIST = C;
            CHG = !CHG;                          /* true on updated PEs */
        }
        C = shift(DIST, NORTH) + 1;             /* from the south */
        where ((ROW != N - 1) && (C < DIST)) {
            DIST = C;
            CHG = !CHG;
        }
        C = shift(DIST, EAST) + 1;              /* from the west */
        where ((COL != 0) && (C < DIST)) {
            DIST = C;
            CHG = !CHG;
        }
        C = shift(DIST, WEST) + 1;              /* from the east */
        where ((COL != N - 1) && (C < DIST)) {
            DIST = C;
            CHG = !CHG;
        }
    } while (any(CHG));
}
"""
'''City-block distance transform in PPC — the EDT-style kernel the paper's
Section 2 says its primitives were designed for. The torus wrap of
``shift`` is suppressed by masking each direction's update off the image
border (``ROW != 0`` etc.), so opposite edges stay non-adjacent. Validated
against :func:`repro.apps.distance_transform` in the tests.'''
