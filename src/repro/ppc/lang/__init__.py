"""Mini Polymorphic Parallel C: a runnable subset of PPC.

The paper states the algorithm "has been implemented using the Polymorphic
Parallel C language"; this package recreates enough of PPC to execute the
paper's listings nearly verbatim against the simulator:

* C-like syntax with the ``parallel`` storage class, ``where``/``elsewhere``
  blocks, ``do``/``while``/``for`` loops and both ANSI and K&R function
  definitions (the paper's ``min()`` is written K&R style);
* the PPC builtins ``broadcast``, ``shift``, ``or``, ``bit``, ``opposite``,
  ``min``, ``selected_min``, ``any``, plus the constants ``NORTH``/``EAST``/
  ``SOUTH``/``WEST``, ``ROW``, ``COL``, ``N``, ``h`` and ``MAXINT``;
* pass-by-value parameters (a ``parallel`` argument is copied, so the
  listing's in-place update of ``src`` is local, as in C).

Pipeline: :mod:`lexer` → :mod:`parser` → :mod:`analyzer` (static checks) →
:mod:`interpreter` (evaluation against a :class:`~repro.ppa.PPAMachine`).
:mod:`programs` embeds the paper's sources.
"""

from repro.ppc.lang.parser import parse
from repro.ppc.lang.analyzer import analyze
from repro.ppc.lang.interpreter import PPCProgram, compile_ppc
from repro.ppc.lang.codegen import (
    CodegenError,
    CompiledProgram,
    compile_to_asm,
)
from repro.ppc.lang import programs

__all__ = [
    "parse",
    "analyze",
    "compile_ppc",
    "PPCProgram",
    "CodegenError",
    "CompiledProgram",
    "compile_to_asm",
    "programs",
]
