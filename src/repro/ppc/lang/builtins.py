"""PPC builtin functions and predefined constants.

Each builtin is described by a :class:`BuiltinSpec` carrying its arity, the
kind of value it returns (for the static analyzer) and its evaluation
function (for the interpreter). User-defined functions of the same name
shadow builtins — the paper's ``min()`` listing can be either run from its
own PPC source or resolved to the library's native routine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import PPCRuntimeError
from repro.ppa.directions import Direction, opposite
from repro.ppc import reductions

__all__ = ["BuiltinSpec", "BUILTINS", "CONSTANTS", "constant_values"]


@dataclass(frozen=True)
class BuiltinSpec:
    """Static + dynamic description of one builtin."""

    name: str
    arity: int
    #: ("scalar"|"parallel", "int"|"logical") or "same-as-arg0"
    returns: object
    apply: Callable


def _require_direction(value, name: str, pos: int) -> Direction:
    if not isinstance(value, Direction):
        raise PPCRuntimeError(
            f"argument {pos} of {name}() must be a direction "
            f"(NORTH/EAST/SOUTH/WEST), got {value!r}"
        )
    return value


def _as_parallel(machine, value, dtype):
    if isinstance(value, np.ndarray):
        return value.astype(dtype, copy=False)
    return np.full(machine.shape, value, dtype=dtype)


def _bi_broadcast(machine, args):
    src, direction, L = args
    direction = _require_direction(direction, "broadcast", 2)
    src = _as_parallel(machine, src, np.int64 if not _is_bool(src) else bool)
    return machine.broadcast(src, direction, _as_parallel(machine, L, bool))


def _is_bool(value) -> bool:
    return (
        isinstance(value, (bool, np.bool_))
        or (isinstance(value, np.ndarray) and value.dtype == np.bool_)
    )


def _bi_shift(machine, args):
    src, direction = args
    direction = _require_direction(direction, "shift", 2)
    src = _as_parallel(machine, src, np.int64 if not _is_bool(src) else bool)
    return machine.shift(src, direction)


def _bi_or(machine, args):
    bits, direction, L = args
    direction = _require_direction(direction, "or", 2)
    return machine.bus_or(
        _as_parallel(machine, bits, bool),
        direction,
        _as_parallel(machine, L, bool),
    )


def _bi_bit(machine, args):
    src, j = args
    if isinstance(j, np.ndarray):
        raise PPCRuntimeError("bit(): the bit index must be a scalar")
    return machine.bit(_as_parallel(machine, src, np.int64), int(j))


def _bi_opposite(machine, args):
    return opposite(_require_direction(args[0], "opposite", 1))


def _bi_min(machine, args):
    src, direction, L = args
    direction = _require_direction(direction, "min", 2)
    return reductions.ppa_min(
        machine,
        _as_parallel(machine, src, np.int64),
        direction,
        _as_parallel(machine, L, bool),
    )


def _bi_selected_min(machine, args):
    src, direction, L, selected = args
    direction = _require_direction(direction, "selected_min", 2)
    return reductions.ppa_selected_min(
        machine,
        _as_parallel(machine, src, np.int64),
        direction,
        _as_parallel(machine, L, bool),
        _as_parallel(machine, selected, bool),
    )


def _bi_any(machine, args):
    return machine.global_or(_as_parallel(machine, args[0], bool))


BUILTINS: dict[str, BuiltinSpec] = {
    spec.name: spec
    for spec in (
        # Both return a full grid even when fed a scalar (which is first
        # replicated into every PE), hence unconditionally parallel. The
        # runtime preserves the operand's int/logical base.
        BuiltinSpec("broadcast", 3, ("parallel", "int"), _bi_broadcast),
        BuiltinSpec("shift", 2, ("parallel", "int"), _bi_shift),
        BuiltinSpec("or", 3, ("parallel", "logical"), _bi_or),
        BuiltinSpec("bit", 2, ("parallel", "logical"), _bi_bit),
        BuiltinSpec("opposite", 1, ("scalar", "int"), _bi_opposite),
        BuiltinSpec("min", 3, ("parallel", "int"), _bi_min),
        BuiltinSpec("selected_min", 4, ("parallel", "int"), _bi_selected_min),
        BuiltinSpec("any", 1, ("scalar", "logical"), _bi_any),
    )
}

#: Predefined identifiers: name -> ("scalar"|"parallel", base kind).
CONSTANTS: dict[str, tuple[str, str]] = {
    "NORTH": ("scalar", "int"),
    "EAST": ("scalar", "int"),
    "SOUTH": ("scalar", "int"),
    "WEST": ("scalar", "int"),
    "ROW": ("parallel", "int"),
    "COL": ("parallel", "int"),
    "N": ("scalar", "int"),
    "h": ("scalar", "int"),
    "MAXINT": ("scalar", "int"),
}


def constant_values(machine) -> dict[str, object]:
    """Concrete values of the predefined identifiers on *machine*."""
    return {
        "NORTH": Direction.NORTH,
        "EAST": Direction.EAST,
        "SOUTH": Direction.SOUTH,
        "WEST": Direction.WEST,
        "ROW": machine.row_index,
        "COL": machine.col_index,
        "N": machine.n,
        "h": machine.word_bits,
        "MAXINT": machine.maxint,
    }
