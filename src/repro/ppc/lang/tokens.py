"""Token definitions for the PPC subset."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "KEYWORDS", "SYMBOLS"]

KEYWORDS = frozenset(
    {
        "parallel",
        "int",
        "logical",
        "void",
        "enum",
        "where",
        "elsewhere",
        "if",
        "else",
        "do",
        "while",
        "for",
        "return",
        "break",
        "continue",
    }
)

# Longest-match-first symbol table.
SYMBOLS = (
    "<<=",
    ">>=",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "(",
    ")",
    "{",
    "}",
    ",",
    ";",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "~",
    "&",
    "|",
    "^",
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``"keyword"``, ``"ident"``, ``"number"``, ``"symbol"``
    or ``"eof"``; ``text`` is the matched source text (symbol/keyword
    spelling, identifier name, or digit string).
    """

    kind: str
    text: str
    line: int
    column: int

    def is_symbol(self, *texts: str) -> bool:
        return self.kind == "symbol" and self.text in texts

    def is_keyword(self, *texts: str) -> bool:
        return self.kind == "keyword" and self.text in texts

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"
