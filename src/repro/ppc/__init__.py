"""Polymorphic Parallel C (PPC) programming layer.

Two ways to program the PPA, both lowering to the same machine primitives:

* :mod:`repro.ppc.dsl` — a Python-embedded DSL: ``parallel`` variables with
  overloaded word arithmetic, ``where``/``elsewhere`` masking, and the PPC
  communication primitives as methods.
* :mod:`repro.ppc.lang` — an interpreter for a mini-PPC language (lexer,
  parser, AST, evaluator) able to run the paper's ``minimum_cost_path()``
  listing nearly verbatim.

Shared building blocks live in :mod:`repro.ppc.bitplane` (bit-serial word
helpers) and :mod:`repro.ppc.reductions` (the paper's ``min()`` and
``selected_min()`` routines).
"""

from repro.ppc.dsl import PPCEnvironment, ParallelInt, ParallelLogical
from repro.ppc.reductions import (
    ppa_min,
    ppa_selected_min,
    ppa_max,
    word_parallel_min,
)

__all__ = [
    "PPCEnvironment",
    "ParallelInt",
    "ParallelLogical",
    "ppa_min",
    "ppa_selected_min",
    "ppa_max",
    "word_parallel_min",
]
