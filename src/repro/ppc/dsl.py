"""Python-embedded Polymorphic Parallel C DSL.

Mirrors the PPC programming model on top of :class:`PPAMachine`:

* ``parallel`` variables (:class:`ParallelInt`, :class:`ParallelLogical`)
  with overloaded word arithmetic — each operator charges one parallel ALU
  instruction, so DSL programs produce the same cycle accounting a PPC
  compiler would;
* ``where``/``elsewhere`` blocks as context managers gating assignment;
* the communication primitives ``shift``, ``broadcast``, ``min``,
  ``selected_min`` and the controller-level ``any`` test.

Example
-------
>>> from repro.ppa import PPAMachine
>>> from repro.ppc.dsl import PPCEnvironment
>>> env = PPCEnvironment(PPAMachine(4))
>>> a = env.parallel_int(init=env.machine.row_index)
>>> with env.where(a == 2):
...     a.assign(99)
>>> int(a.value[2, 0]), int(a.value[1, 0])
(99, 1)
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import VariableError
from repro.ppa.directions import Direction
from repro.ppa.machine import PPAMachine
from repro.ppc import reductions

__all__ = ["PPCEnvironment", "ParallelInt", "ParallelLogical"]

Operand = Union["ParallelInt", "ParallelLogical", int, bool, np.ndarray]


def _raw(x) -> np.ndarray | int:
    """Unwrap a DSL operand to its numpy payload (or scalar)."""
    if isinstance(x, (ParallelInt, ParallelLogical)):
        return x.data
    return x


class _ParallelBase:
    """Shared mechanics of parallel variables: storage + masked assignment."""

    __slots__ = ("env", "data")

    def __init__(self, env: "PPCEnvironment", data: np.ndarray):
        self.env = env
        self.data = data

    @property
    def value(self) -> np.ndarray:
        """Copy of the variable's grid contents."""
        return self.data.copy()

    def assign(self, value: Operand) -> "_ParallelBase":
        """PPC assignment: store under the current ``where`` mask."""
        self.env.machine.store(self.data, _raw(value))
        return self

    def _binary(self, other: Operand, op, result_logical: bool):
        m = self.env.machine
        m.count_alu()
        out = op(self.data, _raw(other))
        cls = ParallelLogical if result_logical else ParallelInt
        return cls(self.env, np.asarray(out))


class ParallelInt(_ParallelBase):
    """A ``parallel int``: one machine word per PE."""

    def __init__(self, env: "PPCEnvironment", data):
        data = np.array(np.broadcast_to(data, env.machine.shape), dtype=np.int64)
        super().__init__(env, data)

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: Operand):
        return self._binary(other, np.add, False)

    __radd__ = __add__

    def __sub__(self, other: Operand):
        return self._binary(other, np.subtract, False)

    def __rsub__(self, other: Operand):
        m = self.env.machine
        m.count_alu()
        return ParallelInt(self.env, np.subtract(_raw(other), self.data))

    def __mul__(self, other: Operand):
        return self._binary(other, np.multiply, False)

    __rmul__ = __mul__

    def __floordiv__(self, other: Operand):
        return self._binary(other, np.floor_divide, False)

    def __mod__(self, other: Operand):
        return self._binary(other, np.mod, False)

    def __and__(self, other: Operand):
        return self._binary(other, np.bitwise_and, False)

    def __or__(self, other: Operand):
        return self._binary(other, np.bitwise_or, False)

    def __xor__(self, other: Operand):
        return self._binary(other, np.bitwise_xor, False)

    def __lshift__(self, other: Operand):
        return self._binary(other, np.left_shift, False)

    def __rshift__(self, other: Operand):
        return self._binary(other, np.right_shift, False)

    def sat_add(self, other: Operand) -> "ParallelInt":
        """Saturating word addition (MAXINT absorbs)."""
        out = self.env.machine.sat_add(self.data, _raw(other))
        return ParallelInt(self.env, out)

    # -- comparisons ---------------------------------------------------
    def __eq__(self, other: Operand):  # type: ignore[override]
        return self._binary(other, np.equal, True)

    def __ne__(self, other: Operand):  # type: ignore[override]
        return self._binary(other, np.not_equal, True)

    def __lt__(self, other: Operand):
        return self._binary(other, np.less, True)

    def __le__(self, other: Operand):
        return self._binary(other, np.less_equal, True)

    def __gt__(self, other: Operand):
        return self._binary(other, np.greater, True)

    def __ge__(self, other: Operand):
        return self._binary(other, np.greater_equal, True)

    __hash__ = None  # mutable, == overloaded

    def bit(self, j: int) -> "ParallelLogical":
        """Parallel ``bit(x, j)``: boolean plane of bit *j*."""
        return ParallelLogical(self.env, self.env.machine.bit(self.data, j))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelInt({self.data!r})"


class ParallelLogical(_ParallelBase):
    """A ``parallel logical``: one boolean flag per PE."""

    def __init__(self, env: "PPCEnvironment", data):
        data = np.array(np.broadcast_to(data, env.machine.shape), dtype=bool)
        super().__init__(env, data)

    def __and__(self, other: Operand):
        return self._binary(other, np.logical_and, True)

    __rand__ = __and__

    def __or__(self, other: Operand):
        return self._binary(other, np.logical_or, True)

    __ror__ = __or__

    def __xor__(self, other: Operand):
        return self._binary(other, np.logical_xor, True)

    def __invert__(self):
        self.env.machine.count_alu()
        return ParallelLogical(self.env, ~self.data)

    def __eq__(self, other: Operand):  # type: ignore[override]
        return self._binary(other, np.equal, True)

    def __ne__(self, other: Operand):  # type: ignore[override]
        return self._binary(other, np.not_equal, True)

    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelLogical({self.data!r})"


class PPCEnvironment:
    """Execution environment binding the DSL to one machine."""

    def __init__(self, machine: PPAMachine):
        self.machine = machine

    # -- declarations ---------------------------------------------------
    def parallel_int(self, name: str | None = None, init=0) -> ParallelInt:
        """Declare a ``parallel int`` (optionally registered by *name*)."""
        pv = ParallelInt(self, init)
        if name is not None:
            self._register(name, pv, "int")
        return pv

    def parallel_logical(
        self, name: str | None = None, init=False
    ) -> ParallelLogical:
        """Declare a ``parallel logical`` (optionally registered by *name*)."""
        pv = ParallelLogical(self, init)
        if name is not None:
            self._register(name, pv, "logical")
        return pv

    def _register(self, name: str, pv: _ParallelBase, kind: str) -> None:
        # Register the DSL array as the backing store in machine memory so
        # interpreter-level and DSL-level views of a variable coincide.
        mem = self.machine.memory
        if name in mem:
            raise VariableError(f"parallel variable {name!r} already declared")
        mem.declare(name, kind)
        mem._vars[name] = pv.data  # share storage

    # -- index planes / constants ----------------------------------------
    @property
    def ROW(self) -> ParallelInt:
        """The ``ROW`` index plane as a parallel int."""
        return ParallelInt(self, self.machine.row_index)

    @property
    def COL(self) -> ParallelInt:
        """The ``COL`` index plane as a parallel int."""
        return ParallelInt(self, self.machine.col_index)

    @property
    def MAXINT(self) -> int:
        return self.machine.maxint

    # -- control flow ------------------------------------------------------
    def where(self, condition):
        """``where (condition) { ... }`` block (context manager)."""
        return self.machine.where(_raw(condition))

    def elsewhere(self, condition):
        """``elsewhere`` arm for *condition* (complement under parent mask)."""
        return self.machine.elsewhere(_raw(condition))

    def any(self, flags) -> bool:
        """Controller-level "at least one PE satisfies" test (global OR)."""
        return self.machine.global_or(_raw(flags))

    # -- communication -------------------------------------------------
    def shift(self, src, direction: Direction, *, fill=0) -> ParallelInt:
        """``shift(src, dir)``: nearest-neighbour move downstream."""
        return ParallelInt(self, self.machine.shift(_raw(src), direction, fill=fill))

    def broadcast(self, src, direction: Direction, L):
        """``broadcast(src, dir, L)``: segmented bus broadcast."""
        out = self.machine.broadcast(_raw(src), direction, _raw(L))
        if out.dtype == np.bool_:
            return ParallelLogical(self, out)
        return ParallelInt(self, out)

    def min(self, src, orientation: Direction, L) -> ParallelInt:
        """Paper's bit-serial cluster ``min()``."""
        return ParallelInt(
            self, reductions.ppa_min(self.machine, _raw(src), orientation, _raw(L))
        )

    def selected_min(
        self, src, orientation: Direction, L, selected
    ) -> ParallelInt:
        """Paper's ``selected_min()``."""
        return ParallelInt(
            self,
            reductions.ppa_selected_min(
                self.machine, _raw(src), orientation, _raw(L), _raw(selected)
            ),
        )

    def max(self, src, orientation: Direction, L) -> ParallelInt:
        """Cluster maximum (complement trick over :meth:`min`)."""
        return ParallelInt(
            self, reductions.ppa_max(self.machine, _raw(src), orientation, _raw(L))
        )
