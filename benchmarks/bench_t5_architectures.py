"""T5 — the paper's closing claim: PPA vs GCN vs CM hypercube vs mesh."""

from repro.analysis.experiments import run_t5
from repro.baselines import GCNMachine, HypercubeMachine, MeshMachine
from repro.core import minimum_cost_path
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1
_W = gnp_digraph(16, 0.3, seed=4, weights=WeightSpec(1, 9), inf_value=INF16)


def test_t5_table(benchmark, report):
    table = benchmark.pedantic(run_t5, rounds=1, iterations=1)
    assert all(row[5] for row in table.rows)
    report(table)


def test_t5_ppa(benchmark, bench_profile):
    benchmark(lambda: minimum_cost_path(PPAMachine(PPAConfig(n=16)), _W, 1))
    machine = PPAMachine(PPAConfig(n=16))
    bench_profile(
        "t5_ppa", machine, lambda: minimum_cost_path(machine, _W, 1),
        command="bench", arch="ppa", n=16, d=1,
    )


def test_t5_gcn(benchmark, bench_profile):
    benchmark(lambda: GCNMachine(16).mcp(_W, 1))
    machine = GCNMachine(16)
    bench_profile(
        "t5_gcn", machine, lambda: machine.mcp(_W, 1),
        command="bench", arch="gcn", n=16, d=1,
    )


def test_t5_hypercube(benchmark, bench_profile):
    benchmark(lambda: HypercubeMachine(16).mcp(_W, 1))
    machine = HypercubeMachine(16)
    bench_profile(
        "t5_hypercube", machine, lambda: machine.mcp(_W, 1),
        command="bench", arch="hypercube", n=16, d=1,
    )


def test_t5_mesh(benchmark, bench_profile):
    benchmark(lambda: MeshMachine(16).mcp(_W, 1))
    machine = MeshMachine(16)
    bench_profile(
        "t5_mesh", machine, lambda: machine.mcp(_W, 1),
        command="bench", arch="mesh", n=16, d=1,
    )
