"""P13 — instruction-level executor throughput.

Engineering benchmark: assembling and executing the full MCP instruction
stream, plus the interpretation overhead per instruction relative to the
native implementation.
"""

from repro.core import minimum_cost_path, minimum_cost_path_asm
from repro.core.asm_mcp import mcp_assembly
from repro.ppa import PPAConfig, PPAMachine
from repro.ppa.assembler import assemble
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1
_W = gnp_digraph(16, 0.3, seed=4, weights=WeightSpec(1, 9), inf_value=INF16)


def test_p13_assemble(benchmark):
    program = benchmark(lambda: assemble(mcp_assembly(16, 16)))
    assert len(program) > 40


def test_p13_execute_asm_mcp(benchmark):
    result = benchmark(
        lambda: minimum_cost_path_asm(
            PPAMachine(PPAConfig(n=16, word_bits=16)), _W, 1
        )
    )
    assert result.iterations >= 1


def test_p13_native_reference(benchmark):
    benchmark(
        lambda: minimum_cost_path(
            PPAMachine(PPAConfig(n=16, word_bits=16)), _W, 1
        )
    )
