"""F3 — bus cycles vs word width h (linear, settling the paper's log-h claim)."""

from repro.analysis.experiments import run_f3
from repro.core import minimum_cost_path
from repro.metrics import linear_fit
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, gnp_digraph


def test_f3_series(benchmark, report):
    series = benchmark.pedantic(run_f3, rounds=1, iterations=1)
    fit = linear_fit(series.x, series.ys["bus_per_iter"])
    assert fit.r2 > 0.999 and 1.8 < fit.slope < 2.3
    report(series)


def test_f3_mcp_h32(benchmark):
    inf = (1 << 32) - 1
    W = gnp_digraph(16, 0.35, seed=1, weights=WeightSpec(1, 7), inf_value=inf)
    benchmark(
        lambda: minimum_cost_path(
            PPAMachine(PPAConfig(n=16, word_bits=32)), W, 3
        )
    )


def test_f3_mcp_h32_batched(benchmark, lanes):
    """Batched driver: the h=32 workload, all destinations lane-parallel."""
    import numpy as np

    from repro.core import batched_mcp_on_new_machine

    inf = (1 << 32) - 1
    W = gnp_digraph(16, 0.35, seed=1, weights=WeightSpec(1, 7), inf_value=inf)
    dests = np.arange(16)[: lanes or 16]
    res = benchmark(
        lambda: batched_mcp_on_new_machine(W, dests, word_bits=32)
    )
    serial = minimum_cost_path(
        PPAMachine(PPAConfig(n=16, word_bits=32)), W, 3
    )
    assert np.array_equal(res.lane(3).sow, serial.sow)
    assert res.lane(3).counters == serial.counters
