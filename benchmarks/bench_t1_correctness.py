"""T1 — correctness sweep ("validated through simulation").

Regenerates the full T1 table and benchmarks one representative MCP run on
the simulator (wall-clock of the PPA model itself).
"""

from repro.analysis.experiments import run_t1
from repro.core import minimum_cost_path
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1


def test_t1_table(benchmark, report):
    table = benchmark.pedantic(run_t1, rounds=1, iterations=1)
    assert all(row[4] and row[5] and row[6] and row[7] for row in table.rows)
    report(table)


def test_t1_single_mcp_run(benchmark, bench_profile):
    W = gnp_digraph(16, 0.3, seed=1, weights=WeightSpec(1, 9), inf_value=INF16)

    def run():
        return minimum_cost_path(PPAMachine(PPAConfig(n=16)), W, 3)

    result = benchmark(run)
    assert result.iterations >= 1

    # One extra traced run emits the acceptance-workload span profile
    # (per-iteration / per-bit-slice attribution) as BENCH_t1_mcp.json.
    machine = PPAMachine(PPAConfig(n=16))
    profiled = bench_profile(
        "t1_mcp", machine, lambda: minimum_cost_path(machine, W, 3),
        command="bench", arch="ppa", n=16, d=3,
    )
    assert profiled.iterations == result.iterations
