"""A12 — row sorting: shift network vs bit-serial bus."""

import numpy as np

from repro.analysis.experiments import run_a12
from repro.apps.sorting import extract_min_sort_rows, odd_even_sort_rows
from repro.ppa import PPAConfig, PPAMachine

_VALS = np.random.default_rng(3).integers(0, 60000, size=(16, 16))


def _machine():
    return PPAMachine(PPAConfig(n=16, word_bits=16))


def test_a12_table(benchmark, report):
    table = benchmark.pedantic(run_a12, rounds=1, iterations=1)
    assert all(row[5] for row in table.rows)
    report(table)


def test_a12_odd_even(benchmark):
    benchmark(lambda: odd_even_sort_rows(_machine(), _VALS))


def test_a12_extract_min(benchmark):
    benchmark(lambda: extract_min_sort_rows(_machine(), _VALS))
