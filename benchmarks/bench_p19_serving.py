"""P19 — serving SLOs: 10k concurrent queries, healthy vs chaos.

The fault-tolerant path-query service's headline artefact
(docs/robustness.md, "Serving and failure handling"). Four measurements
over the in-process service (``repro.serve``), all seeded:

* **healthy** — 12 000 queries at 10 000 concurrent against a warmed
  service: the pure serving path (admission, cache, transport), p50/p99
  latency and zero shed;
* **chaos** — the same storm against a service whose every machine
  carries a stuck-open bus fault: the analytic engine tiers refuse it,
  the cycle tier computes garbage the Bellman verifier rejects, and the
  degradation ladder must walk down to the resilient rung before any
  ``ok`` is served. Independently validated answers must still all be
  right and the tail must stay bounded by the deadline;
* **campaign** — the full 50-run chaos campaign mixing all four
  injection kinds (worker kill / worker slow / overload / bus fault)
  plus healthy controls: 0 silent-wrong, 0 leaked ``/dev/shm`` segments;
* **determinism** — a smaller campaign over the timing-independent
  kinds whose oracle digest must regenerate bit-for-bit; this is the
  slice ``benchmarks/check_drift.py`` re-runs in CI.

``BENCH_p19_serving.json`` records all four. Latency / throughput /
wall-clock fields are host-dependent and never drift-guarded; the
determinism digest, validation counts and the committed invariants
(``wrong == 0``, ``silent_wrong == 0``, ``leaked_shm == []``) are.
"""

import asyncio
import json
from pathlib import Path

import numpy as np

from repro.engine.shard import clear_shard_chaos
from repro.ppa import FaultKind, FaultPlan
from repro.serve.chaos import run_chaos_campaign
from repro.serve.loadgen import random_graph, run_loadgen
from repro.serve.service import (
    PathQueryService,
    ServiceConfig,
    default_machine_factory,
)

SEED = 0
GRAPH_N = 24
DENSITY = 0.35
REQUESTS = 12_000
CONCURRENCY = 10_000
CONNECTIONS = 8
DEADLINE_MS = 10_000.0

CAMPAIGN_RUNS = 50
CAMPAIGN_N = 10
CAMPAIGN_REQUESTS = 12

#: The digest-guarded campaign runs only the kinds whose ok-answer set
#: is independent of host timing (overload shedding is load-dependent
#: by design, so it is exercised in the big campaign but not guarded).
DETERMINISTIC_KINDS = ("healthy", "worker-kill", "worker-slow",
                       "bus-fault")
DETERMINISM_RUNS = 8
DETERMINISM_SEED = 7
DETERMINISM_N = 8
DETERMINISM_REQUESTS = 8

_ARTIFACT = Path(__file__).parent / "profiles" / "BENCH_p19_serving.json"


def _service_config() -> ServiceConfig:
    return ServiceConfig(
        max_inflight=8,
        max_queue=2048,
        workers=1,
        default_deadline_ms=DEADLINE_MS,
        seed=SEED,
    )


def _faulty_factory(n: int, word_bits: int):
    machine = default_machine_factory(n, word_bits)
    machine.inject_faults(
        FaultPlan().add(3, 5, FaultKind.STUCK_OPEN, axis=0)
    )
    return machine


async def _storm(machine_factory, *, warm: bool) -> dict:
    """One 10k-concurrent load-generation run against a fresh service."""
    service = PathQueryService(_service_config(),
                               machine_factory=machine_factory)
    server = await service.start("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        if warm:
            # pre-register the exact graph the generator will send (same
            # seed, same stream) and cache its APSP so the storm hits the
            # pure serving path instead of 24 column computes
            rng = np.random.default_rng(SEED)
            wire = random_graph(GRAPH_N, DENSITY, rng)
            put = await service.handle_request({
                "id": "warm-put", "op": "put_graph", "graph": "loadgen",
                "weights": wire,
            })
            assert put.status == "ok", put.error
            apsp = await service.handle_request({
                "id": "warm-apsp", "op": "apsp", "graph": "loadgen",
            })
            assert apsp.status == "ok", apsp.error
        result = await run_loadgen(
            "127.0.0.1", port,
            requests=REQUESTS, concurrency=CONCURRENCY,
            connections=CONNECTIONS, graph="loadgen", n=GRAPH_N,
            density=DENSITY, deadline_ms=DEADLINE_MS, seed=SEED,
            register_graph=not warm,
        )
    finally:
        await service.stop()
    out = result.to_dict()
    out["concurrency"] = CONCURRENCY
    out["warm"] = warm
    return out


def _campaign_record(report: dict) -> dict:
    return {k: report[k] for k in (
        "seed", "runs", "kinds", "by_kind", "by_status", "silent_wrong",
        "validated", "degraded_responses", "verify_rejections",
        "breaker_trips", "ladder_downgrades", "leaked_shm", "latency_ms",
        "wall_s", "digest",
    )}


def test_p19_serving(benchmark, report):
    healthy = benchmark.pedantic(
        lambda: asyncio.run(_storm(default_machine_factory, warm=True)),
        rounds=1, iterations=1,
    )
    assert healthy["wrong"] == 0
    assert healthy["by_status"].get("ok", 0) == REQUESTS
    assert healthy["latency_ms"]["p99"] <= DEADLINE_MS

    clear_shard_chaos()
    chaos = asyncio.run(_storm(_faulty_factory, warm=False))
    assert chaos["wrong"] == 0
    assert chaos["degraded"] > 0
    # bounded tail: nothing outlives its deadline by more than slack
    assert chaos["latency_ms"]["max"] <= DEADLINE_MS * 1.5

    campaign = run_chaos_campaign(
        runs=CAMPAIGN_RUNS, seed=SEED, n=CAMPAIGN_N,
        requests_per_run=CAMPAIGN_REQUESTS,
    )
    assert campaign["silent_wrong"] == 0
    assert campaign["leaked_shm"] == []
    assert set(campaign["by_kind"]) == {
        "healthy", "worker-kill", "worker-slow", "overload", "bus-fault",
        "update-storm",
    }

    determinism = run_chaos_campaign(
        runs=DETERMINISM_RUNS, seed=DETERMINISM_SEED, n=DETERMINISM_N,
        requests_per_run=DETERMINISM_REQUESTS, kinds=DETERMINISTIC_KINDS,
    )
    assert determinism["silent_wrong"] == 0
    assert determinism["leaked_shm"] == []

    _ARTIFACT.parent.mkdir(exist_ok=True)
    _ARTIFACT.write_text(json.dumps({
        "schema": "repro-bench-p19-v1",
        "workload": {
            "graph_n": GRAPH_N, "density": DENSITY, "seed": SEED,
            "requests": REQUESTS, "concurrency": CONCURRENCY,
            "connections": CONNECTIONS, "deadline_ms": DEADLINE_MS,
        },
        "healthy": healthy,
        "chaos": chaos,
        "campaign": _campaign_record(campaign),
        "determinism": {
            "runs": DETERMINISM_RUNS, "seed": DETERMINISM_SEED,
            "n": DETERMINISM_N,
            "requests_per_run": DETERMINISM_REQUESTS,
            "kinds": list(DETERMINISTIC_KINDS),
            "digest": determinism["digest"],
            "silent_wrong": determinism["silent_wrong"],
            "validated": determinism["validated"],
        },
    }, indent=2, sort_keys=True) + "\n")

    from repro.metrics import Table

    table = Table(
        "P19 - serving SLOs: 10k concurrent queries, healthy vs chaos",
        ["section", "requests", "ok", "shed", "degraded", "wrong",
         "p50 ms", "p99 ms"],
    )
    for label, r in (("healthy", healthy), ("bus-fault chaos", chaos)):
        table.add_row(
            label, r["requests"], r["by_status"].get("ok", 0),
            r["by_status"].get("shed", 0), r["degraded"], r["wrong"],
            f"{r['latency_ms']['p50']:.2f}",
            f"{r['latency_ms']['p99']:.2f}",
        )
    table.add_row(
        f"campaign ({CAMPAIGN_RUNS} runs)",
        sum(campaign["by_status"].values()),
        campaign["by_status"].get("ok", 0),
        campaign["by_status"].get("shed", 0),
        campaign["degraded_responses"], campaign["silent_wrong"],
        f"{campaign['latency_ms']['p50']:.2f}",
        f"{campaign['latency_ms']['p99']:.2f}",
    )
    table.note(
        "healthy storm runs against a warmed cache (the pure serving "
        "path); the chaos storm's machines all carry a stuck-open bus "
        "fault, so every answer is served from the resilient rung with "
        "a machine-readable downgrade record; the campaign mixes worker "
        "kill / slow / overload / bus faults - 'wrong' counts "
        "independently validated answers that disagreed with a numpy "
        "Bellman solve and must be 0; latency is host-dependent and "
        "not drift-guarded"
    )
    report(table)
