"""Deterministic counter drift guard over the committed BENCH_*.json files.

The simulator's cost model is deterministic: re-running the exact workload
behind each committed benchmark artefact must reproduce every bus-cycle /
ALU / transaction counter bit-for-bit. This script regenerates each
artefact in-process and fails (exit 1) on any counter difference —
**wall-clock fields are explicitly excluded** (they are host-dependent and
never guarded).

Run it from the repository root:

    PYTHONPATH=src python benchmarks/check_drift.py

CI runs it as the ``perf-regression-guard`` job (see
``.github/workflows/ci.yml``); docs/performance.md explains how to
regenerate the artefacts intentionally after a cost-model change.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

PROFILE_DIR = Path(__file__).parent / "profiles"

INF16 = (1 << 16) - 1


def _mcp_profile(n: int, d: int, seed: int, arch: str):
    """Regenerate one of the T1/T5 MCP span profiles in-process."""
    from repro.baselines import GCNMachine, HypercubeMachine, MeshMachine
    from repro.core import minimum_cost_path
    from repro.ppa import PPAConfig, PPAMachine
    from repro.telemetry import RunProfile
    from repro.workloads import WeightSpec, gnp_digraph

    W = gnp_digraph(n, 0.3, seed=seed, weights=WeightSpec(1, 9),
                    inf_value=INF16)
    if arch == "ppa":
        machine = PPAMachine(PPAConfig(n=n))
        run = lambda: minimum_cost_path(machine, W, d)  # noqa: E731
    else:
        machine = {"gcn": GCNMachine, "hypercube": HypercubeMachine,
                   "mesh": MeshMachine}[arch](n)
        run = lambda: machine.mcp(W, d)  # noqa: E731
    with machine.telemetry.capture():
        run()
    return RunProfile.from_tracer(machine.telemetry)


def _regen_t1_mcp():
    return _mcp_profile(16, 3, 1, "ppa")


def _regen_t5(arch: str):
    return lambda: _mcp_profile(16, 1, 4, arch)


def _check_profile(path: Path, regen) -> list[str]:
    """Per-phase + total counter comparison (compare_profiles semantics)."""
    from repro.telemetry import compare_profiles, load_profile

    return compare_profiles(load_profile(path), regen())


def _check_p2(path: Path, regen_unused=None) -> list[str]:
    """Exact counter comparison for the P2 batching artefact.

    Only the batched pass is re-run (fast); its lane-summed
    serial-equivalent counters stand in for the serial sweep by
    construction — the equivalence itself is asserted by
    ``bench_p2_batching.py``.
    """
    from repro.core import all_pairs_minimum_cost
    from repro.ppa import PPAConfig, PPAMachine
    from repro.workloads import WeightSpec, gnp_digraph

    committed = json.loads(path.read_text())
    wl = committed["workload"]
    W = gnp_digraph(wl["n"], wl["density"], seed=wl["seed"],
                    weights=WeightSpec(1, 9),
                    inf_value=(1 << wl["word_bits"]) - 1)
    machine = PPAMachine(PPAConfig(n=wl["n"], word_bits=wl["word_bits"]))
    res = all_pairs_minimum_cost(machine, W)

    diffs: list[str] = []
    if committed["iterations"] != [int(i) for i in res.iterations]:
        diffs.append("iterations: per-destination counts drifted")
    for field, fresh in (
        ("counters_serial_equivalent", res.counters),
        ("machine_counters_batched", res.machine_counters),
    ):
        old = committed[field]
        for k in sorted(set(old) | set(fresh)):
            va, vb = old.get(k, 0), int(fresh.get(k, 0))
            if va != vb:
                diffs.append(f"{field}.{k}: {va} -> {vb}")
    return diffs


def _check_p17(path: Path) -> list[str]:
    """Exact counter comparison for the P17 engine artefact.

    Both sections regenerate through the *fused* engine (fast); fused ==
    cycle bit-for-bit is asserted by ``bench_p17_engines.py`` and the
    ``tests/engine/`` differential suite, so any drift caught here is a
    genuine cost-model change.
    """
    from repro.core import all_pairs_minimum_cost, minimum_cost_path
    from repro.ppa import PPAConfig, PPAMachine
    from repro.workloads import WeightSpec, gnp_digraph

    committed = json.loads(path.read_text())
    diffs: list[str] = []

    def _graph(wl):
        return gnp_digraph(wl["n"], wl["density"], seed=wl["seed"],
                           weights=WeightSpec(1, 9),
                           inf_value=(1 << wl["word_bits"]) - 1)

    def _compare(section, field, old, fresh):
        for k in sorted(set(old) | set(fresh)):
            va, vb = old.get(k, 0), int(fresh.get(k, 0))
            if va != vb:
                diffs.append(f"{section}.{field}.{k}: {va} -> {vb}")

    apsp = committed["apsp"]
    wl = apsp["workload"]
    res = all_pairs_minimum_cost(
        PPAMachine(PPAConfig(n=wl["n"], word_bits=wl["word_bits"])),
        _graph(wl), engine="fused",
    )
    if apsp["iterations"] != [int(i) for i in res.iterations]:
        diffs.append("apsp.iterations: per-destination counts drifted")
    _compare("apsp", "counters_serial_equivalent",
             apsp["counters_serial_equivalent"], res.counters)
    _compare("apsp", "machine_counters_batched",
             apsp["machine_counters_batched"], res.machine_counters)

    mcp = committed["mcp_n512"]
    wl = mcp["workload"]
    res = minimum_cost_path(
        PPAMachine(PPAConfig(n=wl["n"], word_bits=wl["word_bits"])),
        _graph(wl), wl["destination"], engine="fused",
    )
    if mcp["iterations"] != int(res.iterations):
        diffs.append(f"mcp_n512.iterations: {mcp['iterations']} -> "
                     f"{int(res.iterations)}")
    _compare("mcp_n512", "counters", mcp["counters"], res.counters)
    return diffs


def _check_t16(path: Path) -> list[str]:
    """Exact re-run of the T16 resilience campaign.

    Everything in the artefact is deterministic — the stochastic fault
    sweeps draw from per-run seeded RNGs — so every status tally,
    recovery action, counter total and overhead bucket must regenerate
    bit-for-bit. (A resilience-disabled corollary is guarded by the
    profile checks above: none of their counters may move either.)
    """
    from repro.analysis.experiments import run_t16_campaign

    committed = json.loads(path.read_text())
    fresh = run_t16_campaign()

    diffs: list[str] = []
    if committed["workload"] != fresh["workload"]:
        diffs.append("workload: parameters drifted")
    old_sc = {sc["label"]: sc for sc in committed["scenarios"]}
    new_sc = {sc["label"]: sc for sc in fresh["scenarios"]}
    for label in sorted(set(old_sc) | set(new_sc)):
        if label not in old_sc or label not in new_sc:
            diffs.append(f"scenario set changed: {label}")
            continue
        a, b = old_sc[label], new_sc[label]
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                diffs.append(f"{label}.{key}: {a.get(key)} -> {b.get(key)}")
    return diffs


def _check_p18(path: Path) -> list[str]:
    """Exact counter comparison for the P18 compiled/roofline artefact.

    Regenerates through the *compiled* engine (the fastest tier; compiled
    == fused == cycle bit-for-bit is asserted by ``bench_p18_compiled.py``
    and the ``tests/engine/`` differential suites). Full-sweep roofline
    entries up to the artefact's ``drift_guard_max_n`` are re-run — the
    larger entries' counters are pinned inside the benchmark itself,
    where the in-run equality assertions make a CI-sized re-run
    redundant. Wall-time and kernel-backend fields are host-dependent and
    never guarded.
    """
    from repro.core import all_pairs_minimum_cost
    from repro.ppa import PPAConfig, PPAMachine
    from repro.workloads import WeightSpec, gnp_digraph

    committed = json.loads(path.read_text())
    wl = committed["workload"]
    guard_max = int(committed["drift_guard_max_n"])
    diffs: list[str] = []

    def _graph(n):
        lo, hi = wl["weights"]
        return gnp_digraph(n, wl["degree"] / n, seed=wl["seed"],
                           weights=WeightSpec(lo, hi),
                           inf_value=(1 << wl["word_bits"]) - 1)

    def _sweep(n, lanes):
        return all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=n, word_bits=wl["word_bits"])),
            _graph(n), engine="compiled", lanes=lanes,
        )

    def _compare(section, field, old, fresh):
        for k in sorted(set(old) | set(fresh)):
            va, vb = old.get(k, 0), int(fresh.get(k, 0))
            if va != vb:
                diffs.append(f"{section}.{field}.{k}: {va} -> {vb}")

    for entry in committed["roofline"]:
        n = int(entry["n"])
        if n > guard_max or entry["destinations"] != n:
            continue  # pinned by the benchmark's own equality assertions
        res = _sweep(n, int(entry["lanes"]))
        section = f"roofline[n={n}]"
        if entry["iterations_total"] != int(res.iterations.sum()):
            diffs.append(f"{section}.iterations_total: "
                         f"{entry['iterations_total']} -> "
                         f"{int(res.iterations.sum())}")
        _compare(section, "counters_serial_equivalent",
                 entry["counters_serial_equivalent"], res.counters)

    eq = committed["equivalence"]
    res = _sweep(int(eq["n"]), int(eq["lanes"]))
    if eq["iterations"] != [int(i) for i in res.iterations]:
        diffs.append("equivalence.iterations: per-destination counts "
                     "drifted")
    _compare("equivalence", "counters_serial_equivalent",
             eq["counters_serial_equivalent"], res.counters)
    _compare("equivalence", "machine_counters_batched",
             eq["machine_counters_batched"], res.machine_counters)
    return diffs


def _check_p19(path: Path) -> list[str]:
    """Invariant + digest guard for the P19 serving artefact.

    The committed robustness invariants (``wrong == 0``,
    ``silent_wrong == 0``, ``leaked_shm == []``) are validated statically,
    and the determinism campaign — the chaos slice whose ok-answer set is
    independent of host timing — is re-run in-process: its oracle digest
    and validation count must regenerate bit-for-bit. Latency, throughput
    and wall-clock fields are host-dependent and never guarded.
    """
    from repro.serve.chaos import run_chaos_campaign

    committed = json.loads(path.read_text())
    diffs: list[str] = []
    for section in ("healthy", "chaos"):
        wrong = committed[section]["wrong"]
        if wrong != 0:
            diffs.append(f"{section}.wrong: {wrong} independently "
                         "validated answers disagreed")
    if committed["campaign"]["silent_wrong"] != 0:
        diffs.append("campaign.silent_wrong: "
                     f"{committed['campaign']['silent_wrong']}")
    if committed["campaign"]["leaked_shm"]:
        diffs.append("campaign.leaked_shm: "
                     f"{committed['campaign']['leaked_shm']}")

    det = committed["determinism"]
    fresh = run_chaos_campaign(
        runs=int(det["runs"]), seed=int(det["seed"]), n=int(det["n"]),
        requests_per_run=int(det["requests_per_run"]),
        kinds=tuple(det["kinds"]),
    )
    for key in ("digest", "silent_wrong", "validated"):
        if det[key] != fresh[key]:
            diffs.append(f"determinism.{key}: {det[key]} -> {fresh[key]}")
    return diffs


def _check_p20(path: Path) -> list[str]:
    """Invariant + digest guard for the P20 coalescing artefact.

    The committed robustness invariants (``wrong == 0`` on every storm
    arm, ``silent_wrong == 0``, ``leaked_shm == []``) are validated
    statically, and the invariance campaign — the timing-independent
    chaos slice including ``update-storm`` — is re-run twice, with
    coalescing on and off: both fresh digests must match the committed
    one bit-for-bit (coalescing is a throughput optimisation, never an
    answer change). Throughput, speedup and latency fields are
    host-dependent and never guarded.
    """
    from repro.serve.chaos import run_chaos_campaign

    committed = json.loads(path.read_text())
    diffs: list[str] = []
    for section in ("coalesced", "uncoalesced", "update_storm"):
        wrong = committed[section]["wrong"]
        if wrong != 0:
            diffs.append(f"{section}.wrong: {wrong} independently "
                         "validated answers disagreed")
    if committed["campaign"]["silent_wrong"] != 0:
        diffs.append("campaign.silent_wrong: "
                     f"{committed['campaign']['silent_wrong']}")
    if committed["campaign"]["leaked_shm"]:
        diffs.append("campaign.leaked_shm: "
                     f"{committed['campaign']['leaked_shm']}")

    inv = committed["invariance"]
    for arm in (True, False):
        fresh = run_chaos_campaign(
            runs=int(inv["runs"]), seed=int(inv["seed"]),
            n=int(inv["n"]),
            requests_per_run=int(inv["requests_per_run"]),
            kinds=tuple(inv["kinds"]), coalesce=arm,
        )
        label = "on" if arm else "off"
        for key in ("digest", "silent_wrong", "validated"):
            if inv[key] != fresh[key]:
                diffs.append(f"invariance.{key} (coalesce {label}): "
                             f"{inv[key]} -> {fresh[key]}")
    return diffs


# Committed artefact -> regenerating callable returning drift lines.
CHECKS = {
    "BENCH_t1_mcp.json": lambda p: _check_profile(p, _regen_t1_mcp),
    "BENCH_t5_ppa.json": lambda p: _check_profile(p, _regen_t5("ppa")),
    "BENCH_t5_gcn.json": lambda p: _check_profile(p, _regen_t5("gcn")),
    "BENCH_t5_hypercube.json": lambda p: _check_profile(
        p, _regen_t5("hypercube")),
    "BENCH_t5_mesh.json": lambda p: _check_profile(p, _regen_t5("mesh")),
    "BENCH_p2_batching.json": _check_p2,
    "BENCH_p17_engines.json": _check_p17,
    "BENCH_p18_compiled.json": _check_p18,
    "BENCH_p19_serving.json": _check_p19,
    "BENCH_p20_coalescing.json": _check_p20,
    "BENCH_t16_resilience.json": _check_t16,
}

# The serialisation each artefact must declare before its check runs.
# Span-profile exports carry ``format``; bench artefacts carry ``schema``.
EXPECTED_SCHEMAS = {
    "BENCH_t1_mcp.json": ("format", "repro-profile-v1"),
    "BENCH_t5_ppa.json": ("format", "repro-profile-v1"),
    "BENCH_t5_gcn.json": ("format", "repro-profile-v1"),
    "BENCH_t5_hypercube.json": ("format", "repro-profile-v1"),
    "BENCH_t5_mesh.json": ("format", "repro-profile-v1"),
    "BENCH_p2_batching.json": ("schema", "repro-bench-p2-v1"),
    "BENCH_p17_engines.json": ("schema", "repro-bench-p17-v1"),
    "BENCH_p18_compiled.json": ("schema", "repro-bench-p18-v1"),
    "BENCH_p19_serving.json": ("schema", "repro-bench-p19-v1"),
    "BENCH_p20_coalescing.json": ("schema", "repro-bench-p20-v1"),
    "BENCH_t16_resilience.json": ("schema", "repro-bench-t16-v1"),
}


def _validate_artifact(path: Path) -> list[str]:
    """Pre-flight: the artefact must exist, parse, and declare the schema
    this checker understands. Returns failure lines (empty = proceed)."""
    if not path.exists():
        return [
            "registered artefact is missing — every name in CHECKS must "
            "be committed; regenerate it with `pytest benchmarks/` or "
            "remove the registration"
        ]
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"unreadable JSON: {exc}"]
    if not isinstance(payload, dict):
        return [f"expected a JSON object, found {type(payload).__name__}"]
    key, want = EXPECTED_SCHEMAS[path.name]
    got = payload.get(key)
    if got != want:
        return [
            f"unknown {key}: {got!r} (this checker understands {want!r}) "
            "— regenerate the artefact or update check_drift.py in the "
            "same change that bumped the schema"
        ]
    return []


def main() -> int:
    failed = False
    missing_checks = sorted(
        f.name for f in PROFILE_DIR.glob("BENCH_*.json")
        if f.name not in CHECKS
    )
    if missing_checks:
        print(f"error: committed artefacts without a drift check: "
              f"{missing_checks}", file=sys.stderr)
        failed = True
    if set(CHECKS) != set(EXPECTED_SCHEMAS):
        print("error: CHECKS and EXPECTED_SCHEMAS disagree: "
              f"{sorted(set(CHECKS) ^ set(EXPECTED_SCHEMAS))}",
              file=sys.stderr)
        failed = True
    for name, check in CHECKS.items():
        path = PROFILE_DIR / name
        diffs = _validate_artifact(path)
        if not diffs:
            try:
                diffs = check(path)
            except KeyError as exc:
                diffs = [
                    f"artefact is missing key {exc} — its schema version "
                    "matches but the layout does not; regenerate it with "
                    "`pytest benchmarks/`"
                ]
        if diffs:
            failed = True
            print(f"  FAIL {name}:")
            for line in diffs:
                print(f"       {line}")
        else:
            print(f"  OK   {name}")
    if failed:
        print("\ncounter drift detected — if intentional, regenerate the "
              "artefacts with `pytest benchmarks/` and commit them "
              "(see docs/performance.md)", file=sys.stderr)
        return 1
    print("no counter drift")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
