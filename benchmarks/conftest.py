"""Benchmark plumbing.

Each ``bench_*`` module regenerates one evaluation artefact (table/figure
of DESIGN.md's experiment index). The ``report`` fixture prints the
artefact's rows once per session — running

    pytest benchmarks/ --benchmark-only

therefore both times the harness *and* emits the same rows EXPERIMENTS.md
records.
"""

from __future__ import annotations

import pytest


_printed: set[str] = set()


@pytest.fixture
def report(capsys):
    """Print a Table/Series once per session, outside capture."""

    def _print(result) -> None:
        title = getattr(result, "title", repr(result))
        if title in _printed:
            return
        _printed.add(title)
        with capsys.disabled():
            print()
            print(result.render())

    return _print
