"""Benchmark plumbing.

Each ``bench_*`` module regenerates one evaluation artefact (table/figure
of DESIGN.md's experiment index). The ``report`` fixture prints the
artefact's rows once per session — running

    pytest benchmarks/ --benchmark-only

therefore both times the harness *and* emits the same rows EXPERIMENTS.md
records.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.telemetry import RunProfile, save_profile

_printed: set[str] = set()
_PROFILE_DIR = Path(__file__).parent / "profiles"


def pytest_addoption(parser):
    parser.addoption(
        "--lanes",
        action="store",
        type=int,
        default=None,
        metavar="B",
        help="lane batch size for the batched benchmark drivers "
        "(default: pack all same-size cases / destinations into one stack)",
    )


@pytest.fixture
def lanes(request):
    """The ``--lanes`` knob: destinations/cases per batched kernel pass."""
    return request.config.getoption("--lanes")


@pytest.fixture
def report(capsys):
    """Print a Table/Series once per session, outside capture."""

    def _print(result) -> None:
        title = getattr(result, "title", repr(result))
        if title in _printed:
            return
        _printed.add(title)
        with capsys.disabled():
            print()
            print(result.render())

    return _print


@pytest.fixture
def bench_profile():
    """Run a traced workload once and save its span profile.

    ``bench_profile(name, machine, fn, **meta)`` enables ``machine``'s
    span tracer, calls ``fn()``, and writes the resulting
    :class:`~repro.telemetry.RunProfile` (native ``repro-profile-v1``
    schema) to ``benchmarks/profiles/BENCH_<name>.json``.  The profiled
    run is separate from the wall-clock ``benchmark`` rounds so timing
    numbers stay tracer-free; counters are identical either way (the
    zero-overhead guarantee).  Returns ``fn``'s result.
    """

    def _run(name: str, machine, fn, **meta):
        with machine.telemetry.capture():
            result = fn()
        profile = RunProfile.from_tracer(machine.telemetry, **meta)
        _PROFILE_DIR.mkdir(exist_ok=True)
        save_profile(profile, _PROFILE_DIR / f"BENCH_{name}.json")
        return result

    return _run
