"""T16 — resilient execution campaign: coverage + recovery overhead.

Runs the deterministic detect/diagnose/recover campaign behind the T16
table (:func:`repro.analysis.experiments.run_t16_campaign`): one
fault-free baseline, one mid-run permanent, one screen-time permanent,
and three stochastic sweeps (intermittent stuck-ats, transient
bit-flips, a mixed plan) with seeded activation RNGs. Asserts the
acceptance bar — **zero silent corruption** and at least 95 % of runs
detected-or-benign — and writes ``BENCH_t16_resilience.json``.

All counter fields in the artefact are deterministic (the stochastic
sweeps draw from per-run seeded RNGs) and are drift-guarded by
``benchmarks/check_drift.py`` / the CI perf-regression job. The artefact
holds no wall-clock fields.
"""

import json
from pathlib import Path

from repro.analysis.experiments import run_t16_campaign

_ARTIFACT = Path(__file__).parent / "profiles" / "BENCH_t16_resilience.json"


def _acceptance(campaign: dict) -> None:
    total = sum(sc["runs"] for sc in campaign["scenarios"])
    silent = sum(sc["silent_wrong"] for sc in campaign["scenarios"])
    # detected-or-benign = every run that is either correct (trustworthy
    # and bit-identical) or honestly FAILED; silent-wrong is the only
    # other bucket.
    assert silent == 0, f"{silent} silently corrupted run(s)"
    detected_or_benign = total - silent
    assert detected_or_benign / total >= 0.95
    baseline = campaign["scenarios"][0]
    assert baseline["label"] == "fault-free"
    assert baseline["status"]["clean"] == baseline["runs"]
    assert baseline["rollbacks"] == 0 and baseline["remaps"] == 0


def test_t16_campaign(benchmark, report):
    campaign = benchmark.pedantic(run_t16_campaign, rounds=1, iterations=1)
    _acceptance(campaign)

    _ARTIFACT.parent.mkdir(exist_ok=True)
    _ARTIFACT.write_text(json.dumps({
        "schema": "repro-bench-t16-v1",
        "workload": campaign["workload"],
        "scenarios": campaign["scenarios"],
    }, indent=2, sort_keys=True) + "\n")

    from repro.analysis.experiments import run_t16

    report(run_t16(campaign=campaign))
