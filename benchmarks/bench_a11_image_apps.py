"""A11 — image kernels: bus acceleration on the PE grid."""

from repro.analysis.experiments import run_a11
from repro.apps import connected_components, distance_transform, random_blobs
from repro.ppa import PPAConfig, PPAMachine

_IMG = random_blobs(24, blobs=4, radius=2, seed=1)


def _machine():
    return PPAMachine(PPAConfig(n=24, word_bits=16))


def test_a11_table(benchmark, report):
    table = benchmark.pedantic(run_a11, rounds=1, iterations=1)
    assert all(row[5] for row in table.rows)
    report(table)


def test_a11_distance_transform(benchmark):
    benchmark(lambda: distance_transform(_machine(), _IMG))


def test_a11_components_buses(benchmark):
    benchmark(lambda: connected_components(_machine(), _IMG, use_buses=True))


def test_a11_components_shift_only(benchmark):
    benchmark(lambda: connected_components(_machine(), _IMG, use_buses=False))
