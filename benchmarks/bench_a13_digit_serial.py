"""A13 — digit-serial min(): the wired-OR lane trade-off."""

import numpy as np

from repro.analysis.experiments import run_a13
from repro.ppa import Direction, PPAConfig, PPAMachine
from repro.ppc.reductions import ppa_min_digit_serial

_VALS = np.random.default_rng(2).integers(0, 60000, size=(16, 16))


def test_a13_table(benchmark, report):
    table = benchmark.pedantic(run_a13, rounds=1, iterations=1)
    assert all(row[4] for row in table.rows)
    report(table)


def test_a13_radix4_min(benchmark):
    machine = PPAMachine(PPAConfig(n=16, word_bits=16))
    L = machine.col_index == 15
    benchmark(
        lambda: ppa_min_digit_serial(machine, _VALS, Direction.WEST, L, 2)
    )
