"""F4 — iterations and total cycles vs maximum MCP length p."""

from repro.analysis.experiments import run_f4
from repro.core import minimum_cost_path
from repro.metrics import linear_fit
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, layered_graph

INF16 = (1 << 16) - 1


def test_f4_series(benchmark, report):
    series = benchmark.pedantic(run_f4, rounds=1, iterations=1)
    assert series.ys["iterations"] == list(series.x)
    assert linear_fit(series.x, series.ys["total_bus"]).r2 > 0.999
    report(series)


def test_f4_deep_dag(benchmark):
    W, d = layered_graph(16, 2, seed=0, weights=WeightSpec(1, 5), inf_value=INF16)
    n = W.shape[0]
    benchmark(lambda: minimum_cost_path(PPAMachine(PPAConfig(n=n)), W, d))


def test_f4_deep_dag_batched(benchmark, lanes):
    """Batched driver: the deep DAG, all destinations lane-parallel.

    Per-lane convergence masking is exercised hard here — destinations in
    shallow layers converge in 1-2 iterations while the deepest needs p.
    """
    import numpy as np

    from repro.core import batched_mcp_on_new_machine

    W, d = layered_graph(16, 2, seed=0, weights=WeightSpec(1, 5), inf_value=INF16)
    n = W.shape[0]
    dests = np.arange(n)[: lanes or n]
    res = benchmark(lambda: batched_mcp_on_new_machine(W, dests))
    serial = minimum_cost_path(PPAMachine(PPAConfig(n=n)), W, d)
    if d < dests.size:
        assert res.lane(d).iterations == serial.iterations
        assert np.array_equal(res.lane(d).sow, serial.sow)
        assert res.lane(d).counters == serial.counters
