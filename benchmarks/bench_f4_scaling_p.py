"""F4 — iterations and total cycles vs maximum MCP length p."""

from repro.analysis.experiments import run_f4
from repro.core import minimum_cost_path
from repro.metrics import linear_fit
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, layered_graph

INF16 = (1 << 16) - 1


def test_f4_series(benchmark, report):
    series = benchmark.pedantic(run_f4, rounds=1, iterations=1)
    assert series.ys["iterations"] == list(series.x)
    assert linear_fit(series.x, series.ys["total_bus"]).r2 > 0.999
    report(series)


def test_f4_deep_dag(benchmark):
    W, d = layered_graph(16, 2, seed=0, weights=WeightSpec(1, 5), inf_value=INF16)
    n = W.shape[0]
    benchmark(lambda: minimum_cost_path(PPAMachine(PPAConfig(n=n)), W, d))
