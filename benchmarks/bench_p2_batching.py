"""P2 — batched lane execution: one-kernel APSP vs the serial sweep.

The headline artefact of the lane axis (docs/performance.md): all 64
destinations of an n=64 APSP advanced by ONE batched SIMD kernel per
iteration instead of 64 serial machine passes. The batched run must be

* **bit-identical** — per-destination distances, successors, iteration
  counts and summed counter deltas equal to the serial sweep's, and
* **>= 5x faster** wall-clock (the per-transaction host cost is paid once
  per lane *stack*, not once per lane).

``BENCH_p2_batching.json`` records the measurement. Counter fields are
deterministic and drift-guarded by ``benchmarks/check_drift.py`` /
the CI perf-regression job; wall-times are environment-dependent and
excluded from the guard.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core import all_pairs_minimum_cost
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, gnp_digraph, suite_cases
from repro.workloads.suites import run_batched_suite

N = 64
SEED = 4
DENSITY = 0.12
WORD_BITS = 16
INF16 = (1 << WORD_BITS) - 1
ROUNDS = 3
MIN_SPEEDUP = 5.0

_ARTIFACT = Path(__file__).parent / "profiles" / "BENCH_p2_batching.json"


def _workload() -> np.ndarray:
    return gnp_digraph(N, DENSITY, seed=SEED, weights=WeightSpec(1, 9),
                       inf_value=INF16)


def _timed(fn, rounds: int = ROUNDS):
    """Best-of-*rounds* wall time (noise floor) plus the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_p2_apsp_n64_headline(report):
    W = _workload()

    def batched():
        return all_pairs_minimum_cost(PPAMachine(PPAConfig(n=N)), W)

    def serial():
        return all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=N)), W, serial=True
        )

    batched()  # warm the plan caches for both paths alike
    t_batched, res_b = _timed(batched)
    t_serial, res_s = _timed(serial)

    # Bit-identical results AND cost model.
    assert np.array_equal(res_b.dist, res_s.dist)
    assert np.array_equal(res_b.succ, res_s.succ)
    assert np.array_equal(res_b.iterations, res_s.iterations)
    assert res_b.counters == res_s.counters
    # Per-lane deltas partition the serial totals exactly.
    summed = {
        k: int(v.sum()) for k, v in res_b.lane_counters.items()
    }
    assert summed == res_s.counters

    speedup = t_serial / t_batched
    assert speedup >= MIN_SPEEDUP, (
        f"batched APSP speedup {speedup:.2f}x below the {MIN_SPEEDUP}x bar "
        f"(serial {t_serial:.3f}s, batched {t_batched:.3f}s)"
    )

    _ARTIFACT.parent.mkdir(exist_ok=True)
    _ARTIFACT.write_text(json.dumps({
        "schema": "repro-bench-p2-v1",
        "workload": {
            "family": "gnp", "n": N, "seed": SEED, "density": DENSITY,
            "word_bits": WORD_BITS,
        },
        "rounds": ROUNDS,
        "serial_seconds": round(t_serial, 4),
        "batched_seconds": round(t_batched, 4),
        "speedup": round(speedup, 2),
        "iterations": [int(i) for i in res_b.iterations],
        "counters_serial_equivalent": {
            k: int(v) for k, v in res_b.counters.items()
        },
        "machine_counters_batched": {
            k: int(v) for k, v in res_b.machine_counters.items()
        },
    }, indent=2) + "\n")


def test_p2_lanes_knob_suite(lanes):
    """The correctness suite through the batched driver, any ``--lanes``."""
    cases = suite_cases("correctness", inf_value=INF16)[:24]
    from repro.core import minimum_cost_path

    batched = run_batched_suite(cases, lanes=lanes)
    assert set(batched) == {c.name for c in cases}
    for case in cases[:6]:  # spot-check lane-for-lane against serial runs
        serial = minimum_cost_path(
            PPAMachine(PPAConfig(n=case.n)), case.W, case.destination
        )
        res = batched[case.name]
        assert np.array_equal(res.sow, serial.sow)
        assert np.array_equal(res.ptn, serial.ptn)
        assert res.iterations == serial.iterations
        assert res.counters == serial.counters


def test_p2_apsp_n64_batched(benchmark, lanes):
    W = _workload()
    benchmark.pedantic(
        lambda: all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=N)), W, lanes=lanes
        ),
        rounds=3, iterations=1,
    )


def test_p2_apsp_n64_serial(benchmark):
    W = _workload()
    benchmark.pedantic(
        lambda: all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=N)), W, serial=True
        ),
        rounds=1, iterations=1,
    )
