"""F2 — per-iteration communication cost vs array size (PPA flat, mesh Θ(n))."""

from repro.analysis.experiments import run_f2
from repro.baselines import MeshMachine
from repro.core import minimum_cost_path
from repro.metrics import loglog_slope
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, complete_graph

INF16 = (1 << 16) - 1


def test_f2_series(benchmark, report):
    series = benchmark.pedantic(run_f2, rounds=1, iterations=1)
    assert abs(loglog_slope(series.x, series.ys["ppa_bus_per_iter"])) < 0.15
    assert loglog_slope(series.x, series.ys["mesh_bus_per_iter"]) > 0.8
    report(series)


def _workload(n):
    return complete_graph(n, seed=2, weights=WeightSpec(1, 9), inf_value=INF16)


def test_f2_ppa_n32(benchmark):
    W = _workload(32)
    benchmark(lambda: minimum_cost_path(PPAMachine(PPAConfig(n=32)), W, 16))


def test_f2_mesh_n32(benchmark):
    W = _workload(32)
    benchmark(lambda: MeshMachine(32).mcp(W, 16))
