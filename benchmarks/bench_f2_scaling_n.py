"""F2 — per-iteration communication cost vs array size (PPA flat, mesh Θ(n))."""

import numpy as np

from repro.analysis.experiments import run_f2
from repro.baselines import MeshMachine
from repro.core import batched_mcp_on_new_machine, minimum_cost_path
from repro.metrics import loglog_slope
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, complete_graph

INF16 = (1 << 16) - 1


def test_f2_series(benchmark, report):
    series = benchmark.pedantic(run_f2, rounds=1, iterations=1)
    assert abs(loglog_slope(series.x, series.ys["ppa_bus_per_iter"])) < 0.15
    assert loglog_slope(series.x, series.ys["mesh_bus_per_iter"]) > 0.8
    report(series)


def _workload(n):
    return complete_graph(n, seed=2, weights=WeightSpec(1, 9), inf_value=INF16)


def test_f2_ppa_n32(benchmark):
    W = _workload(32)
    benchmark(lambda: minimum_cost_path(PPAMachine(PPAConfig(n=32)), W, 16))


def test_f2_mesh_n32(benchmark):
    W = _workload(32)
    benchmark(lambda: MeshMachine(32).mcp(W, 16))


def test_f2_ppa_n32_batched(benchmark, lanes):
    """Batched driver: every destination of the n=32 workload as one stack."""
    W = _workload(32)
    dests = np.arange(32)[: lanes or 32]
    res = benchmark(lambda: batched_mcp_on_new_machine(W, dests))
    serial = minimum_cost_path(PPAMachine(PPAConfig(n=32)), W, 16)
    lane = res.lane(int(np.flatnonzero(dests == 16)[0])) if 16 in dests \
        else res.lane(0)
    if lane.destination == 16:
        assert np.array_equal(lane.sow, serial.sow)
        assert lane.counters == serial.counters
