"""T13 — PPA vs RMESH power separation, plus RMESH resolution throughput."""

import numpy as np

from repro.analysis.experiments import run_t13
from repro.rmesh import RMeshMachine, count_ones


def test_t13_table(benchmark, report):
    table = benchmark.pedantic(run_t13, rounds=1, iterations=1)
    assert all(row[4] for row in table.rows)
    report(table)


def test_t13_staircase_count(benchmark):
    bits = np.random.default_rng(0).random(31) < 0.5

    def run():
        return count_ones(RMeshMachine(32), bits)

    assert benchmark(run) == int(bits.sum())


def test_t13_bus_resolution_n32(benchmark):
    rng = np.random.default_rng(1)
    machine = RMeshMachine(32)
    ids = rng.integers(0, 15, size=(32, 32))

    def run():
        machine.set_config(ids)
        return machine.bus_labels()

    labels = benchmark(run)
    assert labels.shape == (32, 32, 4)
