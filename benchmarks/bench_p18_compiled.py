"""P18 — compiled tier + sharded workers vs fused, with a native roofline.

The compiled engine's headline artefact (docs/performance.md, "The
compiled tier and the native roofline"): cache-blocked min-plus kernels
(:mod:`repro.engine.compiled`) driven through process-sharded APSP
(``all_pairs_minimum_cost(workers=...)``), judged two ways on the same
instances:

* **against our own engines** — bit-identical to ``fused`` (and, through
  the differential suite, to ``cycle``) on every ledger, and at least
  ``MIN_SPEEDUP``x faster on the batched n=1024 APSP with ``workers > 1``;
* **against a native CPU baseline** — Δ-stepping
  (:mod:`repro.baselines.delta_stepping`), the standard parallel
  shortest-path algorithm, sharded over the same worker processes. This
  is the *roofline*: the gap between ``compiled_workers_seconds`` and
  ``delta_seconds`` is the price of faithful PPA counter semantics, and
  the curve out to n=2048 shows how that price scales.

``BENCH_p18_compiled.json`` records the measurement. Counter fields are
deterministic and drift-guarded by ``benchmarks/check_drift.py`` (entries
with ``n <= DRIFT_GUARD_MAX_N`` — the larger entries' counters are
pinned by the in-run equality assertions instead, to keep the CI guard
fast); wall-times are environment-dependent and excluded. The full
artefact run takes several minutes — the n=1024 fused reference sweep
dominates, which is precisely the point being measured.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.baselines import delta_stepping, delta_stepping_all_pairs
from repro.core import all_pairs_minimum_cost
from repro.core.batched import batched_minimum_cost_path
from repro.engine import compiled_kernel_info
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, gnp_digraph

WORD_BITS = 16
INF16 = (1 << WORD_BITS) - 1
SEED = 5
DEGREE = 16  # gnp density DEGREE / n: constant average degree across sizes
WORKERS = 2
LANES = 16

#: Full-sweep roofline sizes. n=1024 is the acceptance point; 2048 is
#: measured on a destination subset (a full fused sweep there would take
#: an hour for no extra information).
FULL_SIZES = (256, 512, 1024)
SUBSET_N = 2048
SUBSET_DESTS = 32

EQUIV_N = 128  # cheap drift-guarded equivalence instance
DRIFT_GUARD_MAX_N = 512

MIN_SPEEDUP = 3.0
SPEEDUP_AT_N = 1024

_ARTIFACT = Path(__file__).parent / "profiles" / "BENCH_p18_compiled.json"


def _workload(n: int) -> np.ndarray:
    return gnp_digraph(n, DEGREE / n, seed=SEED, weights=WeightSpec(1, 9),
                       inf_value=INF16)


def _timed(fn, rounds: int):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _assert_apsp_equal(a, b, context: str) -> None:
    assert np.array_equal(a.dist, b.dist), context
    assert np.array_equal(a.succ, b.succ), context
    assert np.array_equal(a.iterations, b.iterations), context
    assert a.counters == b.counters, context
    for name in a.lane_counters:
        assert np.array_equal(
            a.lane_counters[name], b.lane_counters[name]
        ), f"{context}: {name}"


def test_p18_compiled_headline():
    entries = []
    for n in FULL_SIZES:
        W = _workload(n)
        rounds = 2 if n <= 512 else 1

        def sweep(engine, workers=None):
            return lambda: all_pairs_minimum_cost(
                PPAMachine(PPAConfig(n=n, word_bits=WORD_BITS)), W,
                engine=engine, lanes=LANES, workers=workers,
            )

        sweep("compiled")()  # warm cost-vector probe + allocator
        t_fused, res_fused = _timed(sweep("fused"), rounds)
        t_compiled, res_compiled = _timed(sweep("compiled"), rounds)
        t_workers, res_workers = _timed(
            sweep("compiled", workers=WORKERS), rounds
        )
        t_delta, res_delta = _timed(
            lambda: delta_stepping_all_pairs(W, maxint=INF16,
                                             workers=WORKERS),
            rounds,
        )

        _assert_apsp_equal(res_compiled, res_fused, f"compiled@{n}")
        _assert_apsp_equal(res_workers, res_fused, f"workers@{n}")
        assert res_workers.shard_report["workers"] == WORKERS
        assert np.array_equal(res_delta.dist, res_compiled.dist), n

        entries.append({
            "n": n,
            "destinations": n,
            "lanes": LANES,
            "workers": WORKERS,
            "rounds": rounds,
            "fused_seconds": round(t_fused, 4),
            "compiled_seconds": round(t_compiled, 4),
            "compiled_workers_seconds": round(t_workers, 4),
            "delta_seconds": round(t_delta, 4),
            "speedup_workers_vs_fused": round(t_fused / t_workers, 2),
            "iterations_total": int(res_fused.iterations.sum()),
            "counters_serial_equivalent": {
                k: int(v) for k, v in res_fused.counters.items()
            },
        })

    at = {e["n"]: e for e in entries}[SPEEDUP_AT_N]
    assert at["speedup_workers_vs_fused"] >= MIN_SPEEDUP, (
        f"compiled+workers speedup {at['speedup_workers_vs_fused']}x at "
        f"n={SPEEDUP_AT_N} below the {MIN_SPEEDUP}x bar "
        f"(fused {at['fused_seconds']}s, "
        f"workers {at['compiled_workers_seconds']}s)"
    )

    # --- n=2048: destination subset, compiled vs the native baseline ---
    W = _workload(SUBSET_N)
    dests_all = np.arange(SUBSET_DESTS)

    def compiled_subset():
        machine = PPAMachine(PPAConfig(n=SUBSET_N, word_bits=WORD_BITS))
        dist = np.empty((SUBSET_N, SUBSET_DESTS), dtype=np.int64)
        for start in range(0, SUBSET_DESTS, LANES):
            dests = dests_all[start:start + LANES]
            res = batched_minimum_cost_path(
                machine.lanes(int(dests.size)), W, dests, engine="compiled"
            )
            dist[:, dests] = res.sow.T
        return dist

    def delta_subset():
        cols = [
            delta_stepping(W, int(d), maxint=INF16).sow for d in dests_all
        ]
        return np.stack(cols, axis=1)

    compiled_subset()  # warm the n=2048 cost-vector probe
    t_compiled_sub, dist_compiled = _timed(compiled_subset, 1)
    t_delta_sub, dist_delta = _timed(delta_subset, 1)
    assert np.array_equal(dist_compiled, dist_delta)

    subset_entry = {
        "n": SUBSET_N,
        "destinations": SUBSET_DESTS,
        "lanes": LANES,
        "workers": 1,
        "rounds": 1,
        "fused_seconds": None,
        "compiled_seconds": round(t_compiled_sub, 4),
        "delta_seconds": round(t_delta_sub, 4),
        "note": "destination subset; fused omitted (a full fused sweep "
                "at n=2048 adds nothing but hours)",
    }

    # --- cheap equivalence instance for the CI drift guard -------------
    W_eq = _workload(EQUIV_N)
    res_eq = all_pairs_minimum_cost(
        PPAMachine(PPAConfig(n=EQUIV_N, word_bits=WORD_BITS)), W_eq,
        engine="compiled", lanes=LANES,
    )
    res_eq_fused = all_pairs_minimum_cost(
        PPAMachine(PPAConfig(n=EQUIV_N, word_bits=WORD_BITS)), W_eq,
        engine="fused", lanes=LANES,
    )
    _assert_apsp_equal(res_eq, res_eq_fused, "equivalence")

    _ARTIFACT.parent.mkdir(exist_ok=True)
    _ARTIFACT.write_text(json.dumps({
        "schema": "repro-bench-p18-v1",
        "workload": {
            "family": "gnp", "seed": SEED, "degree": DEGREE,
            "word_bits": WORD_BITS, "weights": [1, 9],
        },
        "drift_guard_max_n": DRIFT_GUARD_MAX_N,
        "kernel": compiled_kernel_info(),  # informational; host-dependent
        "roofline": entries + [subset_entry],
        "equivalence": {
            "n": EQUIV_N,
            "lanes": LANES,
            "iterations": [int(i) for i in res_eq.iterations],
            "counters_serial_equivalent": {
                k: int(v) for k, v in res_eq.counters.items()
            },
            "machine_counters_batched": {
                k: int(v) for k, v in res_eq.machine_counters.items()
            },
        },
    }, indent=2) + "\n")


def test_p18_worker_counter_invariance():
    """Serial-equivalent counters are invariant across worker counts."""
    W = _workload(EQUIV_N)
    base = all_pairs_minimum_cost(
        PPAMachine(PPAConfig(n=EQUIV_N)), W, engine="compiled", lanes=LANES,
    )
    for workers in (2, 3):
        res = all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=EQUIV_N)), W, engine="compiled",
            lanes=LANES, workers=workers,
        )
        _assert_apsp_equal(res, base, f"workers={workers}")


def test_p18_apsp_n256_compiled_workers(benchmark):
    W = _workload(256)
    benchmark.pedantic(
        lambda: all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=256)), W, engine="compiled",
            lanes=LANES, workers=WORKERS,
        ),
        rounds=2, iterations=1,
    )


def test_p18_delta_stepping_n256(benchmark):
    W = _workload(256)
    benchmark.pedantic(
        lambda: delta_stepping_all_pairs(W, maxint=INF16, workers=WORKERS),
        rounds=2, iterations=1,
    )
