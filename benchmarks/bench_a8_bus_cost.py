"""A8 — unit-cost vs distance-proportional bus pricing."""

from repro.analysis.experiments import run_a8
from repro.metrics import loglog_slope


def test_a8_series(benchmark, report):
    series = benchmark.pedantic(run_a8, rounds=1, iterations=1)
    assert abs(loglog_slope(series.x, series.ys["unit_bus"])) < 0.15
    assert loglog_slope(series.x, series.ys["linear_bus"]) > 0.9
    report(series)
