"""T9 — transitive closure and all-pairs extensions."""

from repro.analysis.experiments import run_t9
from repro.core import all_pairs_minimum_cost, transitive_closure
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, gnp_digraph, unit_weights

INF16 = (1 << 16) - 1


def test_t9_table(benchmark, report):
    table = benchmark.pedantic(run_t9, rounds=1, iterations=1)
    assert all(row[2] and row[3] for row in table.rows)
    report(table)


def test_t9_closure_n16(benchmark):
    adj = gnp_digraph(16, 0.15, seed=2, weights=unit_weights(),
                      inf_value=INF16) == 1

    def run():
        return transitive_closure(PPAMachine(PPAConfig(n=16)), adj)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_t9_apsp_n16(benchmark):
    W = gnp_digraph(16, 0.3, seed=2, weights=WeightSpec(1, 9), inf_value=INF16)

    def run():
        return all_pairs_minimum_cost(PPAMachine(PPAConfig(n=16)), W)

    benchmark.pedantic(run, rounds=3, iterations=1)
