"""T15 — Borůvka MST over the bus primitives."""

import numpy as np

from repro.analysis.experiments import run_t15
from repro.core.mst import boruvka_mst
from repro.ppa import PPAConfig, PPAMachine


def _graph(n, seed=7):
    rng = np.random.default_rng(seed)
    inf = (1 << 16) - 1
    W = np.full((n, n), inf, dtype=np.int64)
    np.fill_diagonal(W, 0)
    weights = rng.permutation(n * n) + 1
    k = 0
    for i in range(n):
        for j in range(i + 1, n):
            if j == i + 1 or rng.random() < 0.4:
                W[i, j] = W[j, i] = int(weights[k])
                k += 1
    return W


def test_t15_table(benchmark, report):
    table = benchmark.pedantic(run_t15, rounds=1, iterations=1)
    assert all(row[4] for row in table.rows)
    report(table)


def test_t15_mst_n16(benchmark):
    W = _graph(16)

    def run():
        return boruvka_mst(PPAMachine(PPAConfig(n=16)), W)

    res = benchmark(run)
    assert res.is_spanning_tree
