"""T6 — PPC interpreter parity and its interpretation overhead."""

from repro.analysis.experiments import run_t6
from repro.core import minimum_cost_path, normalize_weights
from repro.ppa import PPAConfig, PPAMachine
from repro.ppc.lang import compile_ppc, programs
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1
_W = gnp_digraph(8, 0.3, seed=0, weights=WeightSpec(1, 9), inf_value=INF16)


def test_t6_table(benchmark, report):
    table = benchmark.pedantic(run_t6, rounds=1, iterations=1)
    assert all(row[1] and row[2] for row in table.rows)
    report(table)


def test_t6_compile(benchmark):
    program = benchmark(lambda: compile_ppc(programs.MCP_CODE))
    assert "minimum_cost_path" in program.functions


def test_t6_interpret_paper_listing(benchmark):
    program = compile_ppc(programs.MCP_CODE)

    def run():
        m = PPAMachine(PPAConfig(n=8, word_bits=16))
        return program.run(
            m, "minimum_cost_path",
            globals={"W": normalize_weights(_W, m), "d": 2},
        )

    benchmark(run)


def test_t6_native_equivalent(benchmark):
    benchmark(
        lambda: minimum_cost_path(PPAMachine(PPAConfig(n=8)), _W, 2)
    )
