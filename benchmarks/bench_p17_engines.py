"""P17 — fused analytic-cost engine vs the cycle engine.

The headline artefact of the engine axis (docs/performance.md, "Choosing
an engine"): whole MCP relaxation rounds computed as one numpy kernel with
the counter book replayed from the analytic per-iteration cost vector.
The fused engine must be

* **bit-identical** — SOW/PTN (dist/succ), iteration counts, the scalar
  counter book and every per-lane serial-equivalent ledger equal to the
  cycle engine's, at every size measured, and
* **>= 10x faster** wall-clock on the batched n=64 APSP, and
* able to complete a single-destination n=512 MCP (out of reach for
  interactive use of the cycle engine's per-transaction simulation).

``BENCH_p17_engines.json`` records the measurement. Counter fields are
deterministic and drift-guarded by ``benchmarks/check_drift.py``;
wall-times are environment-dependent and excluded from the guard.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core import all_pairs_minimum_cost, minimum_cost_path
from repro.engine import mcp_cost_vector
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, gnp_digraph

WORD_BITS = 16
INF16 = (1 << WORD_BITS) - 1

APSP_N = 64
APSP_SEED = 4
APSP_DENSITY = 0.12

MCP_N = 512
MCP_SEED = 7
MCP_DENSITY = 0.02
MCP_DEST = 0

ROUNDS = 3
MIN_SPEEDUP = 10.0

_ARTIFACT = Path(__file__).parent / "profiles" / "BENCH_p17_engines.json"


def _apsp_workload() -> np.ndarray:
    return gnp_digraph(APSP_N, APSP_DENSITY, seed=APSP_SEED,
                       weights=WeightSpec(1, 9), inf_value=INF16)


def _mcp_workload() -> np.ndarray:
    return gnp_digraph(MCP_N, MCP_DENSITY, seed=MCP_SEED,
                       weights=WeightSpec(1, 9), inf_value=INF16)


def _timed(fn, rounds: int = ROUNDS):
    """Best-of-*rounds* wall time (noise floor) plus the last result."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_p17_engines_headline():
    # --- batched APSP, n=64: fused vs cycle, every ledger compared -----
    W = _apsp_workload()

    def cycle():
        return all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=APSP_N)), W, engine="cycle"
        )

    def fused():
        return all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=APSP_N)), W, engine="fused"
        )

    fused()  # warm the cost-vector probe and plan caches
    cycle()  # warm the bus-plan caches for the cycle side alike
    t_fused, res_f = _timed(fused)
    t_cycle, res_c = _timed(cycle)

    assert np.array_equal(res_f.dist, res_c.dist)
    assert np.array_equal(res_f.succ, res_c.succ)
    assert np.array_equal(res_f.iterations, res_c.iterations)
    assert res_f.counters == res_c.counters
    assert res_f.machine_counters == res_c.machine_counters
    for name in res_c.lane_counters:
        assert np.array_equal(
            res_f.lane_counters[name], res_c.lane_counters[name]
        ), name

    speedup = t_cycle / t_fused
    assert speedup >= MIN_SPEEDUP, (
        f"fused APSP speedup {speedup:.2f}x below the {MIN_SPEEDUP}x bar "
        f"(cycle {t_cycle:.3f}s, fused {t_fused:.3f}s)"
    )

    # --- single-destination MCP, n=512: fused completes, and is still
    # bit-identical to one (slow) cycle reference run ------------------
    W512 = _mcp_workload()
    t_fused512, res_f512 = _timed(
        lambda: minimum_cost_path(
            PPAMachine(PPAConfig(n=MCP_N)), W512, MCP_DEST, engine="fused"
        )
    )
    res_c512 = minimum_cost_path(
        PPAMachine(PPAConfig(n=MCP_N)), W512, MCP_DEST, engine="cycle"
    )
    assert np.array_equal(res_f512.sow, res_c512.sow)
    assert np.array_equal(res_f512.ptn, res_c512.ptn)
    assert res_f512.iterations == res_c512.iterations
    assert res_f512.counters == res_c512.counters

    _ARTIFACT.parent.mkdir(exist_ok=True)
    _ARTIFACT.write_text(json.dumps({
        "schema": "repro-bench-p17-v1",
        "apsp": {
            "workload": {
                "family": "gnp", "n": APSP_N, "seed": APSP_SEED,
                "density": APSP_DENSITY, "word_bits": WORD_BITS,
            },
            "rounds": ROUNDS,
            "cycle_seconds": round(t_cycle, 4),
            "fused_seconds": round(t_fused, 4),
            "speedup": round(speedup, 2),
            "iterations": [int(i) for i in res_f.iterations],
            "counters_serial_equivalent": {
                k: int(v) for k, v in res_f.counters.items()
            },
            "machine_counters_batched": {
                k: int(v) for k, v in res_f.machine_counters.items()
            },
        },
        "mcp_n512": {
            "workload": {
                "family": "gnp", "n": MCP_N, "seed": MCP_SEED,
                "density": MCP_DENSITY, "word_bits": WORD_BITS,
                "destination": MCP_DEST,
            },
            "fused_seconds": round(t_fused512, 4),
            "iterations": int(res_f512.iterations),
            "counters": {k: int(v) for k, v in res_f512.counters.items()},
        },
    }, indent=2) + "\n")


def test_p17_counter_replay_exact_across_sizes():
    """Fused counters == analytic cost vector replay, n up to 512."""
    for n, density, seed in ((16, 0.3, 1), (64, 0.12, 4), (128, 0.06, 2),
                             (512, 0.02, 7)):
        config = PPAConfig(n=n, word_bits=WORD_BITS)
        W = gnp_digraph(n, density, seed=seed, weights=WeightSpec(1, 9),
                        inf_value=INF16)
        res = minimum_cost_path(PPAMachine(config), W, 0, engine="fused")
        assert res.counters == mcp_cost_vector(config).total(res.iterations)


def test_p17_apsp_n64_fused(benchmark):
    W = _apsp_workload()
    benchmark.pedantic(
        lambda: all_pairs_minimum_cost(
            PPAMachine(PPAConfig(n=APSP_N)), W, engine="fused"
        ),
        rounds=3, iterations=1,
    )


def test_p17_mcp_n512_fused(benchmark):
    W = _mcp_workload()
    benchmark.pedantic(
        lambda: minimum_cost_path(
            PPAMachine(PPAConfig(n=MCP_N)), W, MCP_DEST, engine="fused"
        ),
        rounds=3, iterations=1,
    )
