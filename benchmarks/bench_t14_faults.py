"""T14 — single stuck-at fault campaign + self-test throughput."""

from repro.analysis.experiments import run_t14
from repro.ppa import FaultKind, FaultPlan, PPAConfig, PPAMachine
from repro.ppa.selftest import diagnose_switches


def test_t14_table(benchmark, report):
    table = benchmark.pedantic(run_t14, rounds=1, iterations=1)
    for row in table.rows:
        injections = row[1]
        assert row[5] == f"{injections}/{injections}"
    report(table)


def test_t14_selftest_n16(benchmark):
    machine = PPAMachine(PPAConfig(n=16))
    machine.inject_faults(
        FaultPlan()
        .add(3, 7, FaultKind.STUCK_OPEN, axis=1)
        .add(9, 2, FaultKind.STUCK_SHORT, axis=0)
    )
    report = benchmark(lambda: diagnose_switches(machine))
    assert len(report.faults) == 2


def test_t14_faulty_mcp_batched(benchmark, lanes):
    """Batched driver on a faulty machine: a fault hits the same physical
    switch in every lane, so batched per-lane results still equal the
    serial runs on the same faulted machine — fault campaigns can sweep
    all destinations in one pass."""
    import numpy as np

    from repro.core import batched_minimum_cost_path, minimum_cost_path
    from repro.workloads import WeightSpec, gnp_digraph

    inf = (1 << 16) - 1
    n = 8
    W = gnp_digraph(n, 0.4, seed=3, weights=WeightSpec(1, 9), inf_value=inf)
    plan = FaultPlan().add(2, 5, FaultKind.STUCK_SHORT, axis=1)
    dests = np.arange(n)[: lanes or n]

    def run():
        machine = PPAMachine(PPAConfig(n=n))
        machine.inject_faults(plan)
        return batched_minimum_cost_path(machine, W, dests)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    for d in dests:
        serial_machine = PPAMachine(PPAConfig(n=n))
        serial_machine.inject_faults(plan)
        serial = minimum_cost_path(serial_machine, W, int(d))
        assert np.array_equal(res.lane(int(d)).sow, serial.sow)
        assert np.array_equal(res.lane(int(d)).ptn, serial.ptn)
        assert res.lane(int(d)).counters == serial.counters
