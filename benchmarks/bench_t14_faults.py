"""T14 — single stuck-at fault campaign + self-test throughput."""

from repro.analysis.experiments import run_t14
from repro.ppa import FaultKind, FaultPlan, PPAConfig, PPAMachine
from repro.ppa.selftest import diagnose_switches


def test_t14_table(benchmark, report):
    table = benchmark.pedantic(run_t14, rounds=1, iterations=1)
    for row in table.rows:
        injections = row[1]
        assert row[5] == f"{injections}/{injections}"
    report(table)


def test_t14_selftest_n16(benchmark):
    machine = PPAMachine(PPAConfig(n=16))
    machine.inject_faults(
        FaultPlan()
        .add(3, 7, FaultKind.STUCK_OPEN, axis=1)
        .add(9, 2, FaultKind.STUCK_SHORT, axis=0)
    )
    report = benchmark(lambda: diagnose_switches(machine))
    assert len(report.faults) == 2
