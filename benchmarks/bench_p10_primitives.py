"""P10 — simulator throughput on the machine primitives.

Engineering benchmark (not a paper artefact): wall-clock of one simulated
bus transaction / reduction / bit-serial min at several array sizes, to
keep the simulator's own performance from regressing.
"""

import numpy as np
import pytest

from repro.ppa import Direction, PPAConfig, PPAMachine
from repro.ppc.reductions import ppa_min


@pytest.fixture(params=[16, 64, 256], ids=lambda n: f"n={n}")
def machine(request):
    return PPAMachine(PPAConfig(n=request.param, word_bits=16))


def test_p10_broadcast(benchmark, machine):
    src = machine.new_parallel(7)
    L = machine.row_index == 0
    benchmark(lambda: machine.broadcast(src, Direction.SOUTH, L))


def test_p10_wired_or(benchmark, machine):
    bits = machine.bit(machine.col_index, 0)
    L = machine.col_index == 0
    benchmark(lambda: machine.bus_or(bits, Direction.EAST, L))


def test_p10_shift(benchmark, machine):
    src = machine.new_parallel(3)
    benchmark(lambda: machine.shift(src, Direction.EAST))


def test_p10_bit_serial_min(benchmark, machine):
    rng = np.random.default_rng(0)
    vals = rng.integers(0, machine.maxint, size=machine.shape)
    L = machine.col_index == machine.n - 1
    benchmark(lambda: ppa_min(machine, vals, Direction.WEST, L))
