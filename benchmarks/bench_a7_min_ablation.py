"""A7 — bit-serial vs word-parallel bus minimum."""

from repro.analysis.experiments import run_a7
from repro.core import minimum_cost_path, minimum_cost_path_word
from repro.ppa import PPAConfig, PPAMachine
from repro.workloads import WeightSpec, gnp_digraph

INF16 = (1 << 16) - 1
_W = gnp_digraph(16, 0.3, seed=7, weights=WeightSpec(1, 7), inf_value=INF16)


def test_a7_table(benchmark, report):
    table = benchmark.pedantic(run_a7, rounds=1, iterations=1)
    assert all(row[5] for row in table.rows)
    report(table)


def test_a7_bit_serial(benchmark):
    benchmark(lambda: minimum_cost_path(PPAMachine(PPAConfig(n=16)), _W, 0))


def test_a7_word_parallel(benchmark):
    benchmark(
        lambda: minimum_cost_path_word(PPAMachine(PPAConfig(n=16)), _W, 0)
    )
