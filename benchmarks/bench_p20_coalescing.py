"""P20 — request coalescing: throughput with bit-identical answers.

The serving tier's micro-batching artefact (docs/performance.md,
"Request coalescing and warm-started re-solves"). Four measurements
over the in-process service (``repro.serve``), all seeded:

* **zipf storm, coalesce on vs off** — the same Zipf-skewed
  destination workload (hot keys, concurrent bursts) against two
  services whose only difference is the coalescer, with the column
  cache disabled so every answer is a real engine run. Coalescing must
  deliver >= 3x the completed-request throughput at an unchanged
  deadline-miss rate (both arms: zero), with every validated answer
  right in both arms;
* **update storm** — Zipf workload with periodic sparse edge deltas
  through the incremental ``put_graph`` path (caches on, the realistic
  shape): served versions and costs validate against a local reference
  at every graph version — a stale column counts as wrong and must
  never appear;
* **campaign** — the full 50-run chaos campaign over all six injection
  kinds (now including ``update-storm``): 0 silent-wrong, 0 leaked
  ``/dev/shm`` segments;
* **invariance** — the digest-guarded determinism slice run twice,
  coalescing on and off: both campaigns' oracle digests must be
  bit-identical (coalescing is a pure throughput optimisation, never
  an answer change). ``benchmarks/check_drift.py`` re-runs both in CI.

``BENCH_p20_coalescing.json`` records all four. Latency / throughput /
wall-clock fields are host-dependent and never drift-guarded; the
invariance digests, validation counts and the committed invariants
(``wrong == 0``, ``silent_wrong == 0``, ``leaked_shm == []``) are.
"""

import asyncio
import json
from pathlib import Path

from repro.serve.chaos import run_chaos_campaign
from repro.serve.loadgen import run_loadgen
from repro.serve.service import PathQueryService, ServiceConfig

SEED = 0
GRAPH_N = 32
DENSITY = 0.35
REQUESTS = 800
CONCURRENCY = 400
CONNECTIONS = 8
DEADLINE_MS = 30_000.0
ZIPF = 1.1
#: acceptance bar: coalescing on must complete >= this multiple of the
#: uncoalesced arm's requests per second on the same workload.
SPEEDUP_BAR = 3.0

UPDATE_REQUESTS = 600
UPDATE_EVERY = 100

CAMPAIGN_RUNS = 50
CAMPAIGN_N = 10
CAMPAIGN_REQUESTS = 12

#: The digest-guarded invariance slice runs only the kinds whose
#: ok-answer set is independent of host timing (``update-storm``
#: issues its deltas strictly sequentially, so it qualifies).
DETERMINISTIC_KINDS = ("healthy", "bus-fault", "update-storm")
INVARIANCE_RUNS = 9
INVARIANCE_SEED = 7
INVARIANCE_N = 8
INVARIANCE_REQUESTS = 8

_ARTIFACT = (Path(__file__).parent / "profiles"
             / "BENCH_p20_coalescing.json")


def _storm_config(coalesce: bool) -> ServiceConfig:
    """Compute-bound serving: the column/APSP caches are disabled so
    every request is an engine run and the two arms differ *only* in
    the coalescer."""
    return ServiceConfig(
        max_inflight=8,
        max_queue=4096,
        workers=1,
        default_deadline_ms=DEADLINE_MS,
        seed=SEED,
        coalesce=coalesce,
        column_cache=0,
        apsp_cache=0,
    )


async def _zipf_storm(coalesce: bool) -> dict:
    """One Zipf-skewed destination storm against a fresh service."""
    service = PathQueryService(_storm_config(coalesce))
    server = await service.start("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        result = await run_loadgen(
            "127.0.0.1", port,
            requests=REQUESTS, concurrency=CONCURRENCY,
            connections=CONNECTIONS, graph="loadgen", n=GRAPH_N,
            density=DENSITY, deadline_ms=DEADLINE_MS, seed=SEED,
            zipf=ZIPF, apsp_every=0, dest_every=1,
        )
        stats = service.stats()
    finally:
        await service.stop()
    out = result.to_dict()
    out["concurrency"] = CONCURRENCY
    out["coalesce"] = coalesce
    out["coalescer"] = stats["coalescer"]
    out["admission"] = {k: stats["admission"][k]
                       for k in ("admitted", "admitted_weight")}
    return out


async def _update_storm() -> dict:
    """Zipf workload with periodic sparse edge deltas (caches on)."""
    service = PathQueryService(ServiceConfig(
        max_inflight=8, max_queue=4096, workers=1,
        default_deadline_ms=DEADLINE_MS, seed=SEED,
    ))
    server = await service.start("127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        result = await run_loadgen(
            "127.0.0.1", port,
            requests=UPDATE_REQUESTS, concurrency=CONCURRENCY,
            connections=CONNECTIONS, graph="loadgen", n=GRAPH_N,
            density=DENSITY, deadline_ms=DEADLINE_MS, seed=SEED,
            zipf=ZIPF, update_every=UPDATE_EVERY,
        )
    finally:
        await service.stop()
    out = result.to_dict()
    out["concurrency"] = CONCURRENCY
    return out


def _campaign_record(report: dict) -> dict:
    return {k: report[k] for k in (
        "seed", "runs", "kinds", "by_kind", "by_status", "silent_wrong",
        "validated", "updates", "degraded_responses",
        "verify_rejections", "breaker_trips", "ladder_downgrades",
        "leaked_shm", "latency_ms", "wall_s", "digest",
    )}


def _invariance_campaign(coalesce: bool) -> dict:
    return run_chaos_campaign(
        runs=INVARIANCE_RUNS, seed=INVARIANCE_SEED, n=INVARIANCE_N,
        requests_per_run=INVARIANCE_REQUESTS, kinds=DETERMINISTIC_KINDS,
        coalesce=coalesce,
    )


def test_p20_coalescing(benchmark, report):
    coalesced = benchmark.pedantic(
        lambda: asyncio.run(_zipf_storm(True)),
        rounds=1, iterations=1,
    )
    uncoalesced = asyncio.run(_zipf_storm(False))
    for arm in (coalesced, uncoalesced):
        assert arm["wrong"] == 0
        assert arm["by_status"].get("ok", 0) == REQUESTS
        # unchanged deadline-miss rate: zero on both arms
        assert arm["by_status"].get("deadline", 0) == 0
        assert arm["latency_ms"]["p99"] <= DEADLINE_MS
    speedup = (coalesced["throughput_rps"]
               / uncoalesced["throughput_rps"])
    assert speedup >= SPEEDUP_BAR, (
        f"coalescing speedup {speedup:.2f}x below the "
        f"{SPEEDUP_BAR:.0f}x bar"
    )
    # the batches were real: fewer engine dispatches than requests
    snap = coalesced["coalescer"]
    assert snap["batches"] + snap["single_flight_hits"] > 0
    assert coalesced["admission"]["admitted"] \
        < uncoalesced["admission"]["admitted"]

    updates = asyncio.run(_update_storm())
    assert updates["wrong"] == 0
    assert updates["updates"] == UPDATE_REQUESTS // UPDATE_EVERY - 1
    assert updates["by_status"].get("ok", 0) == UPDATE_REQUESTS

    campaign = run_chaos_campaign(
        runs=CAMPAIGN_RUNS, seed=SEED, n=CAMPAIGN_N,
        requests_per_run=CAMPAIGN_REQUESTS,
    )
    assert campaign["silent_wrong"] == 0
    assert campaign["leaked_shm"] == []
    assert set(campaign["by_kind"]) == {
        "healthy", "worker-kill", "worker-slow", "overload",
        "bus-fault", "update-storm",
    }
    assert campaign["updates"] > 0

    inv_on = _invariance_campaign(True)
    inv_off = _invariance_campaign(False)
    for inv in (inv_on, inv_off):
        assert inv["silent_wrong"] == 0
        assert inv["leaked_shm"] == []
    assert inv_on["digest"] == inv_off["digest"]
    assert inv_on["validated"] == inv_off["validated"]

    _ARTIFACT.parent.mkdir(exist_ok=True)
    _ARTIFACT.write_text(json.dumps({
        "schema": "repro-bench-p20-v1",
        "workload": {
            "graph_n": GRAPH_N, "density": DENSITY, "seed": SEED,
            "requests": REQUESTS, "concurrency": CONCURRENCY,
            "connections": CONNECTIONS, "deadline_ms": DEADLINE_MS,
            "zipf": ZIPF, "speedup_bar": SPEEDUP_BAR,
        },
        "coalesced": coalesced,
        "uncoalesced": uncoalesced,
        "speedup": round(speedup, 2),
        "update_storm": {
            "requests": UPDATE_REQUESTS, "update_every": UPDATE_EVERY,
            **updates,
        },
        "campaign": _campaign_record(campaign),
        "invariance": {
            "runs": INVARIANCE_RUNS, "seed": INVARIANCE_SEED,
            "n": INVARIANCE_N,
            "requests_per_run": INVARIANCE_REQUESTS,
            "kinds": list(DETERMINISTIC_KINDS),
            "digest": inv_on["digest"],
            "silent_wrong": inv_on["silent_wrong"],
            "validated": inv_on["validated"],
        },
    }, indent=2, sort_keys=True) + "\n")

    from repro.metrics import Table

    table = Table(
        "P20 - request coalescing: Zipf storm, coalesce on vs off",
        ["section", "requests", "ok", "wrong", "rps", "p99 ms",
         "engine runs"],
    )
    for label, r in (("coalesce on", coalesced),
                     ("coalesce off", uncoalesced)):
        table.add_row(
            label, r["requests"], r["by_status"].get("ok", 0),
            r["wrong"], f"{r['throughput_rps']:.0f}",
            f"{r['latency_ms']['p99']:.2f}",
            r["admission"]["admitted"],
        )
    table.add_row(
        f"update storm ({updates['updates']} deltas)",
        UPDATE_REQUESTS, updates["by_status"].get("ok", 0),
        updates["wrong"], f"{updates['throughput_rps']:.0f}",
        f"{updates['latency_ms']['p99']:.2f}", "-",
    )
    table.add_row(
        f"campaign ({CAMPAIGN_RUNS} runs)",
        sum(campaign["by_status"].values()),
        campaign["by_status"].get("ok", 0),
        campaign["silent_wrong"], "-",
        f"{campaign['latency_ms']['p99']:.2f}", "-",
    )
    table.note(
        f"speedup {speedup:.1f}x (bar {SPEEDUP_BAR:.0f}x) on the same "
        "seeded Zipf workload with the column cache disabled, so both "
        "arms compute every answer - the coalesced arm folds "
        "concurrent distinct-destination misses into lane-batched "
        "engine runs and dedups hot keys via single-flight; 'wrong' "
        "counts independently validated answers (stale versions "
        "included) and must be 0; the invariance digests (coalesce on "
        "== off, bit-identical) are the drift-guarded slice; latency "
        "and rps are host-dependent and not guarded"
    )
    report(table)
