"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` (legacy editable install) works on
offline hosts that lack the ``wheel`` package required by PEP 660 builds.
"""

from setuptools import setup

setup()
